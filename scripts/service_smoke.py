#!/usr/bin/env python
"""Smoke the HTTP mapping service end to end, as CI does.

Boots ``python -m repro serve`` as a real subprocess on an ephemeral
port, then drives the full register → transform → observe loop from
the outside:

1.  register the Figure 3 and Figure 6 mappings (expect 201, cache
    miss) and re-register one (expect 200, cache *hit*);
2.  transform the paper's source instance through each and compare the
    response **byte for byte** against what ``python -m repro run``
    writes for the same inputs;
3.  round-trip a batch request and compare each document the same way;
4.  edit the source and ``POST /transform/delta`` against the step-2
    request: the incremental response must be byte-identical to a full
    transform of the edited document;
5.  ``GET /health`` and ``GET /metrics`` (expect 200; the metrics text
    must show the plan-cache hit from step 1, the latency histogram
    buckets, and the incremental hit/fallback counters) — through real
    ``curl`` when it's on PATH, urllib otherwise, so the CI leg
    exercises an independent HTTP client.

Exit status: 0 on success, 1 on any mismatch, with a line per check.
Stdlib only; run from the repository root::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

sys.path.insert(0, str(SRC))

from repro.io import dumps  # noqa: E402
from repro.scenarios import deptstore  # noqa: E402
from repro.xml.serialize import to_xml  # noqa: E402

FIGURES = {"fig3": deptstore.mapping_fig3, "fig6": deptstore.mapping_fig6}

_failures = 0


def check(name: str, ok: bool, detail: str = "") -> None:
    global _failures
    status = "ok" if ok else "FAIL"
    suffix = f" ({detail})" if detail and not ok else ""
    print(f"  [{status}] {name}{suffix}")
    if not ok:
        _failures += 1


def http(method: str, url: str, body: bytes = b"",
         content_type: str = "") -> tuple[int, bytes]:
    status, _, body = http_full(method, url, body, content_type)
    return status, body


def http_full(method: str, url: str, body: bytes = b"",
              content_type: str = "") -> tuple[int, dict, bytes]:
    """Like :func:`http` but also returns the response headers."""
    request = urllib.request.Request(url, data=body or None, method=method)
    if content_type:
        request.add_header("Content-Type", content_type)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers or {}), error.read()


def curl_get(url: str) -> tuple[int, bytes]:
    """GET via real curl when available (an independent HTTP client),
    urllib otherwise."""
    curl = shutil.which("curl")
    if curl is None:
        return http("GET", url)
    result = subprocess.run(
        [curl, "--silent", "--show-error", "--max-time", "60",
         "--write-out", "%{http_code}", "--output", "-", url],
        capture_output=True, check=False,
    )
    if result.returncode != 0:
        return 0, result.stderr
    body, status = result.stdout[:-3], int(result.stdout[-3:])
    return status, body


def cli_run(tmp: Path, figure: str, *flags: str) -> bytes:
    """The byte-identity reference: what the CLI writes for the same
    mapping and source."""
    mapping_path = tmp / f"{figure}.json"
    source_path = tmp / "source.xml"
    out_path = tmp / f"{figure}.out.xml"
    mapping_path.write_text(dumps(FIGURES[figure]()), encoding="utf-8")
    source_path.write_text(to_xml(deptstore.source_instance()),
                           encoding="utf-8")
    subprocess.run(
        [sys.executable, "-m", "repro", "run", str(mapping_path),
         str(source_path), "-o", str(out_path), *flags],
        check=True, env={"PYTHONPATH": str(SRC)}, cwd=REPO,
        capture_output=True,
    )
    return out_path.read_bytes()


def main() -> int:
    print("service smoke: booting `python -m repro serve --port 0`")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={"PYTHONPATH": str(SRC)}, cwd=REPO,
    )
    try:
        banner = server.stdout.readline().strip()
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        if not match:
            print(f"  [FAIL] could not parse banner: {banner!r}")
            return 1
        base = f"http://{match.group(1)}:{match.group(2)}"
        print(f"  listening at {base}")
        source = to_xml(deptstore.source_instance()).encode("utf-8")

        fingerprints = {}
        for figure, make_mapping in sorted(FIGURES.items()):
            status, body = http(
                "POST", f"{base}/mappings",
                dumps(make_mapping()).encode("utf-8"),
            )
            doc = json.loads(body)
            check(f"register {figure}", status == 201
                  and doc.get("cache") == "miss", f"{status} {body[:120]!r}")
            fingerprints[figure] = doc.get("fingerprint", "")

        status, body = http(
            "POST", f"{base}/mappings",
            dumps(FIGURES["fig3"]()).encode("utf-8"),
        )
        check("re-register fig3 is a plan-cache hit",
              status == 200 and json.loads(body).get("cache") == "hit",
              f"{status} {body[:120]!r}")

        delta_base_request = ""
        with tempfile.TemporaryDirectory() as tmp:
            for figure in sorted(FIGURES):
                expected = cli_run(Path(tmp), figure)
                status, headers, body = http_full(
                    "POST",
                    f"{base}/transform?mapping={fingerprints[figure]}",
                    source,
                )
                check(f"transform {figure} == CLI run output",
                      status == 200 and body == expected,
                      f"{status}, {len(body)} vs {len(expected)} bytes")
                if figure == "fig3":
                    delta_base_request = headers.get("X-Clip-Request", "")

            expected = cli_run(Path(tmp), "fig6")
            status, body = http(
                "POST", f"{base}/transform/batch",
                json.dumps({
                    "mapping": fingerprints["fig6"],
                    "documents": [source.decode("utf-8")] * 2,
                }).encode("utf-8"),
                content_type="application/json",
            )
            doc = json.loads(body) if status == 200 else {}
            check("batch transform == CLI run output",
                  status == 200
                  and doc.get("succeeded") == 2
                  and all(entry["xml"].encode("utf-8") == expected
                          for entry in doc.get("results", [])),
                  f"{status} {body[:160]!r}")

        edited_instance = deptstore.source_instance()
        for node in edited_instance.iter():
            if node.tag == "ename":
                node.clear_text()
                node.set_text("Edited Name")
                break
        edited = to_xml(edited_instance).encode("utf-8")
        status, expected = http(
            "POST", f"{base}/transform?mapping={fingerprints['fig3']}",
            edited,
        )
        check("transform of edited source (delta reference)", status == 200,
              f"{status}")
        status, headers, body = http_full(
            "POST", f"{base}/transform/delta",
            json.dumps({
                "request": delta_base_request,
                "document": edited.decode("utf-8"),
            }).encode("utf-8"),
            content_type="application/json",
        )
        check("delta transform == full transform of edited source",
              status == 200
              and body == expected
              and headers.get("X-Clip-Incremental", "")
              in ("unchanged", "scoped", "fallback"),
              f"{status}, {len(body)} vs {len(expected)} bytes, "
              f"mode={headers.get('X-Clip-Incremental')!r}")

        status, body = curl_get(f"{base}/health")
        check("GET /health", status == 200
              and json.loads(body).get("status") == "ok",
              f"{status} {body[:120]!r}")

        status, body = curl_get(f"{base}/metrics")
        text = body.decode("utf-8", "replace")
        check("GET /metrics", status == 200
              and "clip_service_requests_total" in text,
              f"{status} {text[:120]!r}")
        match = re.search(
            r"^clip_service_plan_cache_hits_total (\d+)$", text, re.M
        )
        check("plan-cache hits visible in /metrics",
              match is not None and int(match.group(1)) >= 1,
              text[:200])
        match = re.search(
            r'^clip_service_request_seconds_bucket\{endpoint="transform",'
            r'le="\+Inf"\} (\d+)$', text, re.M,
        )
        check("latency histogram buckets visible in /metrics",
              "# TYPE clip_service_request_seconds histogram" in text
              and match is not None and int(match.group(1)) >= 1,
              text[:200])
        hits = re.search(
            r"^clip_service_incremental_hits_total (\d+)$", text, re.M
        )
        fallbacks = re.search(
            r"^clip_service_incremental_fallbacks_total (\d+)$", text, re.M
        )
        check("incremental counters visible in /metrics",
              hits is not None and fallbacks is not None
              and int(hits.group(1)) + int(fallbacks.group(1)) >= 1,
              text[:200])

        if _failures:
            print(f"service smoke: {_failures} check(s) FAILED")
            return 1
        print("service smoke: all checks passed")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    raise SystemExit(main())
