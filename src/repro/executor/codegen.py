"""Compiled-plan codegen: emit specialized Python per :class:`PlannedTgd`.

The third execution mode (``exec_mode="codegen"``).  The interpreted
optimized engine (:mod:`repro.executor.planner`) still walks the plan
per tuple: every generator binding goes through ``_eval``'s
isinstance dispatch, every condition through ``_condition_holds``,
every join probe through ``_probe``'s generic loop.  This module
removes that dispatch by *generating Python source* for each plan —
one enumeration function per tgd level with the generator loops
unrolled, path accessors pre-resolved against the per-document child
index, condition checks and membership tests inlined, and hash-join
build/probe emitted as plain dict code — then materializing the
source with ``compile()``/``exec`` into closures an engine subclass
dispatches to.

Contracts:

* **Byte-identity** — the environments a generated level function
  produces (content *and* order), the target instances, and the plan
  counters are exactly the interpreted engine's.  The differential
  suite and the fuzz farm enforce this against both reference oracles
  (interpreted-optimized and naive).
* **Deterministic emission** — identical plans produce byte-identical
  source: symbol names and memo-key strings come from emission-order
  counters, never from ``id()`` or hashes of runtime objects.  The
  source therefore pickles (it is a plain string) and pool workers
  rebuild the closures from the cached source
  (:mod:`repro.runtime.batch`); :func:`build_program` re-emits and
  cross-checks when handed a cached source.
* **Counter parity** — generated functions accumulate plain local
  ints and flush them into :class:`~repro.executor.planner.PlanCounters`
  on exit, so ``plan``/``level[i]`` trace spans and ``explain``
  counters match the interpreted mode exactly while the hot loops
  never touch a counter object.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

from ..core.tgd import (
    AggregateApp,
    Assignment,
    Constant,
    FunctionApp,
    Membership,
    Proj,
    SchemaRoot,
    TgdComparison,
    TgdExpr,
    Var,
    expr_labels,
    expr_root,
)
from ..errors import ExecModeError, ExecutionError
from .engine import Env, GroupBinding, TgdMapping
from .planner import LevelPlan, PlannedTgd, _OptimizedEngine

#: Environment toggle: ``CLIP_EXEC_MODE=codegen`` makes the generated
#: backend the default for optimized tgd plans; ``interp`` (the
#: default) keeps the interpreted planner path.
EXEC_MODE_ENV = "CLIP_EXEC_MODE"

#: The execution modes ``prepare``/``fingerprint``/CLI accept.
EXEC_MODES = ("interp", "codegen")

#: The pseudo-filename compiled sources carry in tracebacks.
SOURCE_FILENAME = "<clip-codegen>"


def resolve_exec_mode(exec_mode: Optional[str]) -> str:
    """Resolve an ``exec_mode`` tri-state: explicit value wins,
    ``None`` falls back to the :data:`EXEC_MODE_ENV` environment
    default (``interp``)."""
    if exec_mode is None:
        exec_mode = os.environ.get(EXEC_MODE_ENV, "").strip().lower() or "interp"
    if exec_mode not in EXEC_MODES:
        raise ExecModeError(
            f"unknown exec mode {exec_mode!r}; use one of {EXEC_MODES}"
        )
    return exec_mode


# -- source emission ---------------------------------------------------------

_OPS = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: Local aliases every generated level function opens with.
_LEVEL_PROLOGUE = (
    "_sr = E.source",
    "_ch = E.index.children",
    "_seqs = E._sequences",
    "_tabs = E._tables",
    "_amemo = E._atoms",
    "_pins = E._pins",
    "_isets = E._identity_sets",
    "_ipins = E._identity_pins",
)

_COUNTER_LOCALS = (
    "_c_bind = _c_drop = _c_hit = _c_miss = 0",
    "_c_jb = _c_jbr = _c_jbk = _c_jp = _c_jpm = 0",
)


def _lit(value: Any) -> str:
    """A deterministic Python literal for an atomic constant."""
    if isinstance(value, float) and not isinstance(value, bool):
        if value != value:
            return 'float("nan")'
        if value == float("inf"):
            return 'float("inf")'
        if value == float("-inf"):
            return 'float("-inf")'
    return repr(value)


class _Emitter:
    """Line buffer with indentation and an emission-order symbol
    counter — the only source of generated names and memo-key strings,
    which is what makes emission deterministic."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0
        self._n = 0
        #: Namespace constants the source refers to (function objects,
        #: residual condition tuples), keyed by generated name.
        self.consts: dict[str, Any] = {}

    def fresh(self, stem: str) -> str:
        self._n += 1
        return f"_{stem}{self._n}"

    def tag(self, stem: str) -> str:
        """A fresh memo-key tag (embedded as a string literal)."""
        self._n += 1
        return f"{stem}{self._n}"

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text if text else "")

    def push(self) -> None:
        self.depth += 1

    def pop(self) -> None:
        self.depth -= 1

    def const(self, stem: str, value: Any) -> str:
        name = self.fresh(stem)
        self.consts[name] = value
        return name


def _emit_items(
    em: _Emitter,
    expr: Union[TgdExpr, Constant],
    env_var: str,
    bound: Optional[dict[str, str]] = None,
) -> tuple[str, str]:
    """Emit code evaluating ``expr`` to a list of items; returns
    ``(items var, kind)`` with ``kind`` in ``{"elements", "atoms"}`` —
    statically known from the projection labels, which is what lets
    the callers skip the interpreter's per-item isinstance checks.

    Mirrors :meth:`_OptimizedEngine._eval` exactly: child steps served
    by the document index, ``@attr``/``value`` leaves, GroupBinding
    roots iterating their members, and the interpreter's own error
    messages for unbound variables and atomic-value projection.
    ``bound`` maps variable names to local variables already holding
    their binding (join build loops, sequence filters)."""
    assert not isinstance(expr, Constant)
    root = expr_root(expr)
    labels = expr_labels(expr)
    kind = "elements"
    single: Optional[str] = None  # expression string for a known singleton
    cur = ""
    if isinstance(root, SchemaRoot):
        single = "_sr"
    else:
        base = (bound or {}).get(root.name)
        if base is None:
            base = em.fresh("b")
            em.line("try:")
            em.line(f"    {base} = {env_var}[{root.name!r}]")
            em.line("except KeyError:")
            msg = f"unbound variable {root.name!r}"
            em.line(f"    raise ExecutionError({msg!r}) from None")
        cur = em.fresh("t")
        em.line(f"if {base}.__class__ is GroupBinding:")
        em.line(f"    {cur} = {base}.members")
        em.line("else:")
        em.line(f"    {cur} = ({base},)")
    for label in labels:
        nxt = em.fresh("t")
        if kind == "atoms":
            it = em.fresh("i")
            msg = f"projection .{label} applied to atomic value "
            em.line(f"for {it} in {cur}:")
            em.line(f"    raise ExecutionError({msg!r} + repr({it}))")
            em.line(f"{nxt} = []")
            cur, single = nxt, None
            continue
        if label.startswith("@"):
            name = label[1:]
            if single is not None:
                at = em.fresh("a")
                em.line(f"{at} = {single}._attributes")
                em.line(
                    f"{nxt} = [{at}[{name!r}]] if {name!r} in {at} else []"
                )
            else:
                it, at = em.fresh("i"), em.fresh("a")
                em.line(f"{nxt} = []")
                em.line(f"for {it} in {cur}:")
                em.line(f"    {at} = {it}._attributes")
                em.line(f"    if {name!r} in {at}:")
                em.line(f"        {nxt}.append({at}[{name!r}])")
            kind = "atoms"
        elif label == "value":
            if single is not None:
                v = em.fresh("v")
                em.line(f"{v} = {single}._text")
                em.line(f"{nxt} = [] if {v} is None else [{v}]")
            else:
                it, v = em.fresh("i"), em.fresh("v")
                em.line(f"{nxt} = []")
                em.line(f"for {it} in {cur}:")
                em.line(f"    {v} = {it}._text")
                em.line(f"    if {v} is not None:")
                em.line(f"        {nxt}.append({v})")
            kind = "atoms"
        else:
            if single is not None:
                em.line(f"{nxt} = _ch({single}, {label!r})")
            else:
                it = em.fresh("i")
                em.line(f"{nxt} = []")
                em.line(f"for {it} in {cur}:")
                em.line(f"    {nxt}.extend(_ch({it}, {label!r}))")
        cur, single = nxt, None
    if single is not None:  # bare schema root
        cur = em.fresh("t")
        em.line(f"{cur} = [{single}]")
    return cur, kind


def _emit_atoms(
    em: _Emitter,
    operand: Union[TgdExpr, Constant],
    env_var: str,
    bound: Optional[dict[str, str]] = None,
    memo: bool = False,
) -> str:
    """Emit code evaluating an operand to its atom list (mirrors
    :meth:`_Engine._eval_atoms`: element items contribute their text
    when present, atomic items pass through).  ``memo=True`` adds the
    loop-invariant per-root-binding memoization the interpreted engine
    applies — used only where repeated evaluation against one binding
    is the common case (grouping keys)."""
    if isinstance(operand, Constant):
        v = em.fresh("k")
        em.line(f"{v} = ({_lit(operand.value)},)")
        return v
    root = expr_root(operand)
    prefetched: Optional[str] = None
    if memo and isinstance(root, Var) and (bound or {}).get(root.name) is None:
        prefetched = em.fresh("b")
        em.line("try:")
        em.line(f"    {prefetched} = {env_var}[{root.name!r}]")
        em.line("except KeyError:")
        msg = f"unbound variable {root.name!r}"
        em.line(f"    raise ExecutionError({msg!r}) from None")
        bound = dict(bound or {})
        bound[root.name] = prefetched
    out = em.fresh("at")
    if memo:
        tag = em.tag("A")
        if isinstance(root, Var):
            dep = (bound or {})[root.name]
            mk = f"({tag!r}, id({dep}))"
        else:
            dep = None
            mk = repr(tag)
        mkv = em.fresh("mk")
        em.line(f"{mkv} = {mk}")
        em.line(f"{out} = _amemo.get({mkv})")
        em.line(f"if {out} is None:")
        em.push()
    items, kind = _emit_items(em, operand, env_var, bound)
    if kind == "elements":
        it, v = em.fresh("i"), em.fresh("v")
        em.line(f"{out} = []")
        em.line(f"for {it} in {items}:")
        em.line(f"    {v} = {it}._text")
        em.line(f"    if {v} is not None:")
        em.line(f"        {out}.append({v})")
    else:
        em.line(f"{out} = {items}")
    if memo:
        em.line(f"_amemo[{mkv}] = {out}")
        if isinstance(root, Var):
            em.line(f"_pins.append({(bound or {})[root.name]})")
        em.pop()
    return out


def _emit_condition(
    em: _Emitter,
    condition: Any,
    env_var: str,
    fail: tuple[str, ...],
    bound: Optional[dict[str, str]] = None,
) -> None:
    """Emit an inlined condition check executing ``fail`` (one
    statement per line) when the condition does not hold.  Comparisons
    keep the interpreter's existential any-over-product semantics;
    memberships keep its node-identity semantics with the identity set
    cached per collection root binding (`_collection_identities`)."""
    if isinstance(condition, TgdComparison):
        _emit_comparison(em, condition, env_var, fail, bound)
    elif isinstance(condition, Membership):
        _emit_membership(em, condition, env_var, fail, bound)
    else:
        msg = f"unsupported condition {condition!r}"
        em.line(f"raise ExecutionError({msg!r})")


def _emit_comparison(
    em: _Emitter,
    condition: TgdComparison,
    env_var: str,
    fail: tuple[str, ...],
    bound: Optional[dict[str, str]],
) -> None:
    op = _OPS.get(condition.op)
    lefts = _emit_atoms(em, condition.left, env_var, bound)
    rights = _emit_atoms(em, condition.right, env_var, bound)
    if op is None:
        # Mirror TgdComparison.holds: the error fires only when a pair
        # of operand values actually reaches the operator.
        lv, rv = em.fresh("l"), em.fresh("r")
        msg = f"unknown comparison operator {condition.op!r}"
        em.line(f"for {lv} in {lefts}:")
        em.line(f"    for {rv} in {rights}:")
        em.line(f"        raise ValueError({msg!r})")
        for stmt in fail:
            em.line(stmt)
        return
    ok = em.fresh("ok")
    em.line(f"{ok} = False")
    if isinstance(condition.right, Constant):
        lv = em.fresh("l")
        em.line(f"for {lv} in {lefts}:")
        em.line(f"    if {lv} {op} {_lit(condition.right.value)}:")
        em.line(f"        {ok} = True")
        em.line("        break")
    elif isinstance(condition.left, Constant):
        rv = em.fresh("r")
        em.line(f"for {rv} in {rights}:")
        em.line(f"    if {_lit(condition.left.value)} {op} {rv}:")
        em.line(f"        {ok} = True")
        em.line("        break")
    else:
        lv, rv = em.fresh("l"), em.fresh("r")
        em.line(f"for {lv} in {lefts}:")
        em.line(f"    for {rv} in {rights}:")
        em.line(f"        if {lv} {op} {rv}:")
        em.line(f"            {ok} = True")
        em.line("            break")
        em.line(f"    if {ok}:")
        em.line("        break")
    em.line(f"if not {ok}:")
    em.push()
    for stmt in fail:
        em.line(stmt)
    em.pop()


def _emit_membership(
    em: _Emitter,
    condition: Membership,
    env_var: str,
    fail: tuple[str, ...],
    bound: Optional[dict[str, str]],
) -> None:
    members, _ = _emit_items(em, condition.member, env_var, bound)
    root = expr_root(condition.collection)
    tag = em.tag("M")
    coll_bound = dict(bound or {})
    if isinstance(root, Var) and coll_bound.get(root.name) is None:
        dep = em.fresh("b")
        em.line("try:")
        em.line(f"    {dep} = {env_var}[{root.name!r}]")
        em.line("except KeyError:")
        msg = f"unbound variable {root.name!r}"
        em.line(f"    raise ExecutionError({msg!r}) from None")
        coll_bound[root.name] = dep
    if isinstance(root, Var):
        dep = coll_bound[root.name]
        mk = f"({tag!r}, id({dep}))"
    else:
        dep = ""
        mk = repr(tag)
    ids, mkv = em.fresh("ids"), em.fresh("mk")
    em.line(f"{mkv} = {mk}")
    em.line(f"{ids} = _isets.get({mkv})")
    em.line(f"if {ids} is None:")
    em.push()
    coll, _ = _emit_items(em, condition.collection, env_var, coll_bound)
    e = em.fresh("e")
    em.line(f"{ids} = set()")
    em.line(f"for {e} in {coll}:")
    em.line(f"    {ids}.add(id({e}))")
    em.line(f"_isets[{mkv}] = {ids}")
    if dep:
        em.line(f"_ipins.append({dep})")
    em.pop()
    ok, m = em.fresh("ok"), em.fresh("m")
    em.line(f"{ok} = False")
    em.line(f"for {m} in {members}:")
    em.line(f"    if id({m}) in {ids}:")
    em.line(f"        {ok} = True")
    em.line("        break")
    em.line(f"if not {ok}:")
    em.push()
    for stmt in fail:
        em.line(stmt)
    em.pop()


def _emit_level(em: _Emitter, plan: LevelPlan, li: int) -> None:
    """Emit the enumeration function for one level: DFS-nested
    generator loops (same environment order as the interpreter's
    breadth-first expansion), sequence memoization, inlined joins and
    filters, ordinal tracking for reordered plans, and a single
    counter flush on exit."""
    em.line(f"def _level_{li}(E, env, C):")
    em.push()
    for alias in _LEVEL_PROLOGUE:
        em.line(alias)
    for counters in _COUNTER_LOCALS:
        em.line(counters)
    for condition in plan.pre_conditions:
        _emit_condition(
            em, condition, "env",
            fail=(
                "if C is not None:",
                "    C.invocations += 1",
                "    C.filter_drops += 1",
                "return []",
            ),
        )
    track = plan.reordered
    em.line("_out = []")
    em.line("for _cur in (dict(env),):")
    em.push()
    if plan.slots:
        _emit_slot(em, plan, li, 0)
    else:
        em.line("_out.append(dict(_cur))")
    em.pop()
    if track:
        em.line("if len(_out) > 1:")
        em.line("    _out.sort()")
        em.line("_out = [_s[1] for _s in _out]")
    if plan.residual:  # pragma: no cover - classifier safety net
        res = em.const("RES", plan.residual)
        em.line(
            f"_kept = [_e for _e in _out if all("
            f"E._condition_holds(_c, _e) for _c in {res})]"
        )
        em.line("_c_drop += len(_out) - len(_kept)")
        em.line("_out = _kept")
    em.line("if C is not None:")
    em.line("    C.invocations += 1")
    em.line("    C.bindings_enumerated += _c_bind")
    em.line("    C.envs_produced += len(_out)")
    em.line("    C.filter_drops += _c_drop")
    em.line("    C.join_builds += _c_jb")
    em.line("    C.join_build_rows += _c_jbr")
    em.line("    C.join_build_keys += _c_jbk")
    em.line("    C.join_probes += _c_jp")
    em.line("    C.join_probe_matches += _c_jpm")
    em.line("    C.seq_cache_hits += _c_hit")
    em.line("    C.seq_cache_misses += _c_miss")
    em.line("return _out")
    em.pop()
    em.line("")


def _emit_slot(em: _Emitter, plan: LevelPlan, li: int, k: int) -> None:
    slot = plan.slots[k]
    gen = plan.mapping.source_gens[slot.position]
    track = plan.reordered
    root = expr_root(gen.expr)
    # -- memoized candidate sequence (key also scopes join tables) --
    dep: Optional[str] = None
    if isinstance(root, Var):
        dep = em.fresh("b")
        em.line("try:")
        em.line(f"    {dep} = _cur[{root.name!r}]")
        em.line("except KeyError:")
        msg = f"unbound variable {root.name!r}"
        em.line(f"    raise ExecutionError({msg!r}) from None")
        sk = f"({em.tag('S')!r}, id({dep}))"
    else:
        sk = repr(em.tag("S"))
    skv, seq = em.fresh("sk"), em.fresh("seq")
    em.line(f"{skv} = {sk}")
    em.line(f"{seq} = _seqs.get({skv})")
    em.line(f"if {seq} is None:")
    em.push()
    em.line("_c_miss += 1")
    bound = {root.name: dep} if (dep and isinstance(root, Var)) else None
    items, kind = _emit_items(em, gen.expr, "_cur", bound)
    if kind == "atoms":
        it = em.fresh("i")
        msg = f"generator {gen} iterates atomic value "
        em.line(f"for {it} in {items}:")
        em.line(f"    raise ExecutionError({msg!r} + repr({it}))")
        em.line(f"{seq} = []")
    elif slot.seq_filters:
        it = em.fresh("i")
        em.line(f"{seq} = []")
        em.line(f"for {it} in {items}:")
        em.push()
        for condition in slot.seq_filters:
            _emit_condition(
                em, condition, "_cur",
                fail=("_c_drop += 1", "continue"),
                bound={gen.var: it},
            )
        em.line(f"{seq}.append({it})")
        em.pop()
    else:
        em.line(f"{seq} = {items}")
    em.line(f"_seqs[{skv}] = {seq}")
    if dep:
        em.line(f"_pins.append({dep})")
    em.pop()
    em.line("else:")
    em.line("    _c_hit += 1")
    # -- hash joins: build per sequence, probe per environment --
    joined = slot.eq_joins or slot.mem_joins
    match: Optional[str] = None
    for join in slot.eq_joins:
        tab = _emit_table(
            em, skv, seq,
            lambda emx, itv: _emit_atoms(
                emx, join.build_key, "_cur", {join.build_var: itv}
            ),
            membership=False,
        )
        patoms = _emit_atoms(em, join.probe_key, "_cur")
        hits, a, bucket = em.fresh("h"), em.fresh("a"), em.fresh("bk")
        em.line(f"{hits} = set()")
        em.line(
            f"for {a} in (dict.fromkeys({patoms}) "
            f"if len({patoms}) > 1 else {patoms}):"
        )
        em.line(f"    if {a} != {a}:")
        em.line("        continue")
        em.line(f"    {bucket} = {tab}.get({a})")
        em.line(f"    if {bucket} is not None:")
        em.line(f"        {hits}.update({bucket})")
        match = _emit_match(em, match, hits)
    for join in slot.mem_joins:
        tab = _emit_table(
            em, skv, seq,
            lambda emx, itv: _emit_items(
                emx, join.collection, "_cur", {join.build_var: itv}
            )[0],
            membership=True,
        )
        members, _ = _emit_items(em, join.member, "_cur")
        hits, m, bucket = em.fresh("h"), em.fresh("m"), em.fresh("bk")
        em.line(f"{hits} = set()")
        em.line(f"for {m} in {members}:")
        em.line(f"    {bucket} = {tab}.get(id({m}))")
        em.line(f"    if {bucket} is not None:")
        em.line(f"        {hits}.update({bucket})")
        match = _emit_match(em, match, hits)
    # -- candidate loop --
    if joined:
        em.line("_c_jp += 1")
        em.line(f"_c_jpm += len({match})")
        ordv = f"_o{k}" if track else em.fresh("o")
        it2 = em.fresh("it")
        em.line(f"for {ordv} in sorted({match}):")
        em.push()
        em.line(f"{it2} = {seq}[{ordv}]")
    else:
        it2 = em.fresh("it")
        if track:
            em.line(f"for _o{k}, {it2} in enumerate({seq}):")
        else:
            em.line(f"for {it2} in {seq}:")
        em.push()
    em.line(f"_cur[{gen.var!r}] = {it2}")
    em.line("_c_bind += 1")
    for condition in slot.env_filters:
        _emit_condition(
            em, condition, "_cur", fail=("_c_drop += 1", "continue")
        )
    if k + 1 < len(plan.slots):
        _emit_slot(em, plan, li, k + 1)
    else:
        if track:
            order = {slot.position: i for i, slot in enumerate(plan.slots)}
            parts = [f"_o{order[p]}" for p in sorted(order)]
            key = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
            em.line(f"_out.append(({key}, dict(_cur)))")
        else:
            em.line("_out.append(dict(_cur))")
    em.pop()


def _emit_table(
    em: _Emitter,
    skv: str,
    seq: str,
    emit_row: Callable[[_Emitter, str], str],
    *,
    membership: bool,
) -> str:
    """Emit the build side of a hash join, memoized per sequence key:
    ``atom → [ordinals]`` (equality) or ``id(element) → [ordinals]``
    (membership), with the interpreter's NaN-skip and per-ordinal
    dedup semantics."""
    tk, tab = em.fresh("tk"), em.fresh("tb")
    em.line(f"{tk} = ({em.tag('T')!r}, {skv})")
    em.line(f"{tab} = _tabs.get({tk})")
    em.line(f"if {tab} is None:")
    em.push()
    ordv, itv = em.fresh("o"), em.fresh("i")
    em.line(f"{tab} = {{}}")
    em.line(f"for {ordv}, {itv} in enumerate({seq}):")
    em.push()
    row = emit_row(em, itv)
    if membership:
        m, bucket = em.fresh("m"), em.fresh("bk")
        em.line(f"for {m} in {row}:")
        em.line(f"    {bucket} = {tab}.setdefault(id({m}), [])")
        em.line(f"    if not {bucket} or {bucket}[-1] != {ordv}:")
        em.line(f"        {bucket}.append({ordv})")
    else:
        a = em.fresh("a")
        em.line(
            f"for {a} in (dict.fromkeys({row}) "
            f"if len({row}) > 1 else {row}):"
        )
        em.line(f"    if {a} != {a}:")
        em.line("        continue")
        em.line(f"    {tab}.setdefault({a}, []).append({ordv})")
    em.pop()
    em.line(f"_tabs[{tk}] = {tab}")
    em.line("_c_jb += 1")
    em.line(f"_c_jbr += len({seq})")
    em.line(f"_c_jbk += len({tab})")
    em.pop()
    return tab


def _emit_match(em: _Emitter, match: Optional[str], hits: str) -> str:
    """Combine one join's hit set into the running ordinal match set,
    with the interpreter's early exit on an empty intersection (which
    also skips the probe counters, exactly as ``_probe`` does)."""
    if match is None:
        match = hits
    else:
        em.line(f"{match} &= {hits}")
    em.line(f"if not {match}:")
    em.line("    continue")
    return match


def _emit_key_fn(em: _Emitter, plan: LevelPlan, li: int) -> None:
    """Emit the grouping-key function for a grouped level: one tuple
    of atom tuples per environment, with per-root-binding memoization
    (the interpreted engine's `_eval_atoms` memo — many environments
    under one parent binding share their key atoms)."""
    assert plan.mapping.skolem is not None
    _, app = plan.mapping.skolem
    em.line(f"def _key_{li}(E, env):")
    em.push()
    em.line("_sr = E.source")
    em.line("_ch = E.index.children")
    em.line("_amemo = E._atoms")
    em.line("_pins = E._pins")
    parts = []
    for attr in app.attrs:
        atoms = _emit_atoms(em, attr, "env", memo=True)
        parts.append(f"tuple({atoms})")
    key = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
    em.line(f"return {key}")
    em.pop()
    em.line("")


def _emit_scalar(
    em: _Emitter, expr: Union[TgdExpr, Constant], env_var: str
) -> str:
    """Emit `_eval_scalar`: distinct atoms, ``None`` for empty, the
    interpreter's error for more than one.  Returns the value var."""
    if isinstance(expr, Constant):
        v = em.fresh("v")
        em.line(f"{v} = {_lit(expr.value)}")
        return v
    atoms = _emit_atoms(em, expr, env_var)
    v, dd = em.fresh("v"), em.fresh("dd")
    msg_head = f"expression {expr} yields "
    msg_tail = (
        " distinct values where a single value is required "
        "(use an aggregate to condense them)"
    )
    em.line(f"if {atoms}:")
    em.line(f"    {dd} = dict.fromkeys({atoms})")
    em.line(f"    if len({dd}) > 1:")
    em.line(
        f"        raise ExecutionError({msg_head!r} + str(len({dd})) "
        f"+ {msg_tail!r})"
    )
    em.line(f"    {v} = next(iter({dd}))")
    em.line("else:")
    em.line(f"    {v} = None")
    return v


def _emit_assign_fn(
    em: _Emitter, assignment: Assignment, li: int, ai: int
) -> None:
    """Emit one assignment: inlined `_eval_term` (constants,
    aggregates with the empty-sequence rule, scalar functions with
    all-args-first evaluation order) and the pre-resolved target path
    (wrapper singletons for intermediate labels, ``@attr``/``value``/
    wrapped-leaf application)."""
    em.line(f"def _assign_{li}_{ai}(E, env, tenv):")
    em.push()
    em.line("_sr = E.source")
    em.line("_ch = E.index.children")
    term = assignment.value
    if isinstance(term, Constant):
        v = em.fresh("v")
        em.line(f"{v} = {_lit(term.value)}")
    elif isinstance(term, AggregateApp):
        fn = em.const("FN", term.function)
        items, _ = _emit_items(em, term.arg, "env")
        v = em.fresh("v")
        if term.function.name in ("avg", "min", "max"):
            em.line(f"if not {items}:")
            em.line("    return")
        em.line(f"{v} = {fn}.apply({items})")
        em.line(f"if {v} is None:")
        em.line("    return")
    elif isinstance(term, FunctionApp):
        fn = em.const("FN", term.function)
        # Evaluate every argument first (a later argument's
        # multiple-values error outranks an earlier None), then skip
        # the assignment if any argument is absent.
        args = [_emit_scalar(em, arg, "env") for arg in term.args]
        v = em.fresh("v")
        if args:
            absent = " or ".join(f"{a} is None" for a in args)
            em.line(f"if {absent}:")
            em.line("    return")
        em.line(f"{v} = {fn}.apply([{', '.join(args)}])")
        em.line(f"if {v} is None:")
        em.line("    return")
    else:
        v = _emit_scalar(em, term, "env")
        em.line(f"if {v} is None:")
        em.line("    return")
    # -- target path, resolved at emission time --
    labels: list[str] = []
    expr = assignment.target
    while isinstance(expr, Proj):
        labels.append(expr.label)
        expr = expr.base
    labels.reverse()
    if not isinstance(expr, Var) or not labels:
        msg = f"malformed assignment target {assignment.target}"
        em.line(f"raise ExecutionError({msg!r})")
        em.pop()
        em.line("")
        return
    h = em.fresh("h")
    em.line("try:")
    em.line(f"    {h} = tenv[{expr.name!r}]")
    em.line("except KeyError:")
    msg = f"unbound target variable {expr.name!r}"
    em.line(f"    raise ExecutionError({msg!r}) from None")
    for tag in labels[:-1]:
        em.line(f"{h} = E._wrapper({h}, {tag!r})")
    leaf = labels[-1]
    if leaf.startswith("@"):
        em.line(f"{h}.set_attribute({leaf[1:]!r}, {v})")
    elif leaf == "value":
        em.line(f"{h}.set_text({v})")
    else:
        em.line(f"E._wrapper({h}, {leaf!r}).set_text({v})")
    em.pop()
    em.line("")


def generate(planned: PlannedTgd) -> tuple[str, dict[str, Any]]:
    """Emit the full generated module for a planned tgd.  Returns the
    source plus the namespace constants (function objects, residual
    condition tuples) its symbols refer to — both deterministic in the
    plan alone: same plan, byte-identical source."""
    em = _Emitter()
    em.line("# clip-codegen v1")
    em.line("")
    for li, plan in enumerate(planned.levels):
        _emit_level(em, plan, li)
        if plan.mapping.skolem is not None:
            _emit_key_fn(em, plan, li)
        for ai, assignment in enumerate(plan.mapping.assignments):
            _emit_assign_fn(em, assignment, li, ai)
    return "\n".join(em.lines) + "\n", em.consts


def generate_source(planned: PlannedTgd) -> str:
    """The generated module source alone (deterministic emission)."""
    return generate(planned)[0]


@dataclass
class CodegenProgram:
    """A compiled generated module: the source (picklable, cacheable,
    shipped to pool workers), its identity, and the materialized
    closures the engine dispatches to."""

    source: str
    source_hash: str
    line_count: int
    compile_seconds: float
    levels: tuple[Callable, ...]
    keys: dict[int, Callable]
    assigns: dict[tuple[int, int], Callable]

    def describe(self) -> dict:
        """The ``codegen`` section of ``clip-plan-explain`` / batch
        metrics ``plan`` payloads."""
        return {
            "source_hash": self.source_hash,
            "line_count": self.line_count,
            "compile_seconds": self.compile_seconds,
        }


def build_program(
    planned: PlannedTgd, *, source: Optional[str] = None
) -> CodegenProgram:
    """Generate, compile and materialize the program for a plan.

    ``source`` lets pool workers rebuild from the cached source string
    instead of trusting a silent re-emission: the plan is re-emitted
    either way (emission also produces the namespace constants), and a
    cached source that does not match the plan's emission is an error,
    not a fallback.
    """
    started = time.perf_counter()
    emitted, consts = generate(planned)
    if source is not None and source != emitted:
        raise ExecutionError(
            "codegen source mismatch: cached source does not match this "
            "plan's deterministic emission"
        )
    code = compile(emitted, SOURCE_FILENAME, "exec")
    namespace: dict[str, Any] = {
        "ExecutionError": ExecutionError,
        "GroupBinding": GroupBinding,
    }
    namespace.update(consts)
    exec(code, namespace)  # noqa: S102 - our own generated source
    levels = tuple(
        namespace[f"_level_{li}"] for li in range(len(planned.levels))
    )
    keys = {
        li: namespace[f"_key_{li}"]
        for li, plan in enumerate(planned.levels)
        if plan.mapping.skolem is not None
    }
    assigns = {
        (li, ai): namespace[f"_assign_{li}_{ai}"]
        for li, plan in enumerate(planned.levels)
        for ai in range(len(plan.mapping.assignments))
    }
    return CodegenProgram(
        source=emitted,
        source_hash=hashlib.sha256(emitted.encode("utf-8")).hexdigest(),
        line_count=len(emitted.splitlines()),
        compile_seconds=time.perf_counter() - started,
        levels=levels,
        keys=keys,
        assigns=assigns,
    )


# -- the dispatching engine --------------------------------------------------


class _CodegenEngine(_OptimizedEngine):
    """The optimized engine with its hot interpretation points —
    source-side enumeration, grouping keys, assignments — dispatched
    to the plan's generated closures.  Target-side construction
    (wrappers, groups, distribution) is inherited unchanged, which is
    what keeps the three modes byte-identical by construction."""

    def __init__(
        self,
        tgd,
        source_instance,
        planned: PlannedTgd,
        program: CodegenProgram,
        *,
        ordered=None,
        index=None,
        stats=None,
    ):
        super().__init__(
            tgd, source_instance, planned,
            ordered=ordered, index=index, stats=stats,
        )
        self.program = program
        self._level_fns: dict[int, Callable] = {}
        self._key_fns: dict[int, Callable] = {}
        self._assign_fns: dict[int, Callable] = {}
        for plan, fn in zip(planned.levels, program.levels):
            self._level_fns[id(plan.mapping)] = fn
        for li, fn in program.keys.items():
            self._key_fns[id(planned.levels[li].mapping)] = fn
        for (li, ai), fn in program.assigns.items():
            assignment = planned.levels[li].mapping.assignments[ai]
            self._assign_fns[id(assignment)] = fn

    def _enumerate(self, mapping: TgdMapping, env: Env) -> list[Env]:
        return self._level_fns[id(mapping)](self, env, self._counter(mapping))

    def _group_key(self, mapping, skolem_app, env):
        return self._key_fns[id(mapping)](self, env)

    def _apply_assignment(self, assignment, env, target_env) -> None:
        self._assign_fns[id(assignment)](self, env, target_env)
