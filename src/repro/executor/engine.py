"""Direct evaluation of nested tgds over XML instances.

This engine gives the reproduction a second, independent implementation
of the mapping semantics next to the XQuery pipeline: it interprets the
tgd structure directly — nested iteration, join/Cartesian product,
filters, grouping Skolems, aggregates — and produces the
**minimum-cardinality** target instance the paper prescribes:

* quantified target generators (builder-driven) create one element per
  iteration;
* unquantified generators ("constant tags") create at most one element
  per enclosing parent, however many iterations run inside;
* a grouping Skolem creates one element per distinct grouping key per
  enclosing parent;
* assignments that navigate below the built element materialize the
  intermediate singletons on demand (Section III-B, example b: "an E
  element will be produced, too").

Cross-checking this engine against the XQuery interpreter on the same
tgd is one of the reproduction's main correctness arguments.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import ExecutionError
from ..xml.model import AtomicValue, XmlElement
from ..core.tgd import (
    AggregateApp,
    Assignment,
    Constant,
    FunctionApp,
    Membership,
    NestedTgd,
    Proj,
    SchemaRoot,
    TargetGenerator,
    TgdComparison,
    TgdExpr,
    TgdMapping,
    Var,
    expr_root,
)


class GroupBinding:
    """A source variable bound to a *group*: the distinct member
    elements sharing one grouping key, in document order."""

    __slots__ = ("members",)

    def __init__(self, members: list[XmlElement]):
        self.members = members

    def __repr__(self) -> str:
        return f"GroupBinding({len(self.members)} members)"


Binding = Union[XmlElement, GroupBinding]
Env = dict[str, Binding]


def order_mappings(tgd: NestedTgd) -> tuple[TgdMapping, ...]:
    """The evaluation order of the tgd's root mappings.

    Distributed content lands in the elements *other* mappings build,
    so builder mappings run first (matching the emitted XQuery, which
    nests distributed content inside the builder's constructor).
    """

    def has_distribution(mapping: TgdMapping) -> bool:
        return any(
            gen.distribute
            for level in mapping.walk()
            for gen in level.target_gens
        )

    ordered = [m for m in tgd.roots if not has_distribution(m)]
    ordered += [m for m in tgd.roots if has_distribution(m)]
    return tuple(ordered)


class TgdPlan:
    """A nested tgd prepared for repeated per-document evaluation.

    The plan holds everything that depends only on the *mapping* — the
    tgd, the evaluation order of its root mappings, and (by default)
    the compiled level plans of :mod:`repro.executor.planner` — so
    applying it to N documents walks the mapping analysis once, not N
    times.  The batch runtime (:mod:`repro.runtime`) keys its
    compiled-plan cache on exactly this split.

    ``optimize`` selects the evaluation strategy: ``True`` compiles
    hash joins, pushed filters and generator reordering; ``False``
    keeps the naive product-then-filter reference path (what the
    differential suite cross-checks against); ``None`` defers to the
    ``CLIP_OPTIMIZE`` environment default (on).  Both paths produce
    byte-identical targets.  When optimized, ``stats`` accumulates
    per-level :class:`~repro.executor.planner.PlanCounters` across
    every document the plan evaluates.
    """

    __slots__ = (
        "tgd", "ordered", "optimize", "exec_mode", "planned", "stats",
        "program",
    )

    def __init__(
        self,
        tgd: NestedTgd,
        *,
        optimize: Optional[bool] = None,
        exec_mode: Optional[str] = None,
        codegen_source: Optional[str] = None,
    ):
        from .codegen import build_program, resolve_exec_mode
        from .planner import PlanStats, plan_tgd, resolve_optimize

        self.tgd = tgd
        self.ordered = order_mappings(tgd)
        self.optimize = resolve_optimize(optimize)
        self.planned = plan_tgd(tgd) if self.optimize else None
        # Codegen specializes the *optimized* plan; the naive reference
        # path stays interpreted so optimize=False remains the oracle.
        resolved_mode = resolve_exec_mode(exec_mode)
        self.exec_mode = resolved_mode if self.planned is not None else "interp"
        self.program = (
            build_program(self.planned, source=codegen_source)
            if self.exec_mode == "codegen" and self.planned is not None
            else None
        )
        self.stats = PlanStats(self.planned) if self.planned else None

    def run(self, source_instance: XmlElement,
            *, trace=None) -> XmlElement:
        """Evaluate the prepared tgd over one source instance.

        Raises only :class:`repro.errors.ReproError` subclasses:
        anything else escaping the evaluation (a malformed instance
        tripping a ``KeyError``, say) is wrapped in
        :class:`ExecutionError`, so the batch runtime's transient-vs-
        permanent triage sees one uniform hierarchy from every engine.

        ``trace`` (a :class:`repro.runtime.trace.SpanTracer`) records
        an ``execute`` span around the evaluation with a ``plan``
        subtree carrying this run's per-level plan-counter deltas; the
        engines' hot loops are never touched, so a disabled tracer
        costs one falsy check.
        """
        if trace:
            return self._run_traced(source_instance, trace)
        from ..errors import ReproError

        try:
            if self.program is not None and self.planned is not None:
                from .codegen import _CodegenEngine

                return _CodegenEngine(
                    self.tgd,
                    source_instance,
                    self.planned,
                    self.program,
                    ordered=self.ordered,
                    stats=self.stats,
                ).run()
            if self.planned is not None:
                from .planner import _OptimizedEngine

                return _OptimizedEngine(
                    self.tgd,
                    source_instance,
                    self.planned,
                    ordered=self.ordered,
                    stats=self.stats,
                ).run()
            return _Engine(
                self.tgd, source_instance, ordered=self.ordered
            ).run()
        except ReproError:
            raise
        except Exception as exc:
            raise ExecutionError(f"tgd evaluation failed: {exc}") from exc

    def _run_traced(self, source_instance: XmlElement, trace) -> XmlElement:
        """The traced evaluation path: an ``execute`` span wrapping the
        run, then a post-hoc ``plan`` subtree built from the counter
        deltas (:meth:`~repro.executor.planner.PlanStats.diff`) this
        run produced — counters stay in the engine, spans stay out of
        its loops."""
        span = trace.begin("execute")
        counters_before = self.stats.snapshot() if self.stats else None
        try:
            result = self.run(source_instance)
        except Exception:
            span.attrs["status"] = "error"
            trace.end(span)
            raise
        span.attrs["status"] = "ok"
        span.attrs["source_elements"] = source_instance.size()
        span.attrs["target_elements"] = result.size()
        plan_span = trace.begin("plan", optimize=self.planned is not None)
        if self.planned is not None and self.stats is not None:
            deltas = self.stats.diff(counters_before)
            for index, counter in enumerate(deltas):
                trace.event(f"level[{index}]", **counter.to_dict())
        trace.end(plan_span)
        trace.end(span)
        return result

    def __call__(self, source_instance: XmlElement) -> XmlElement:
        return self.run(source_instance)


def prepare(
    tgd: NestedTgd,
    *,
    optimize: Optional[bool] = None,
    exec_mode: Optional[str] = None,
    codegen_source: Optional[str] = None,
) -> TgdPlan:
    """Prepare a nested tgd for repeated evaluation (plan construction
    split from per-document evaluation).

    ``exec_mode`` selects the backend for the optimized path:
    ``"interp"`` (default) walks the plan, ``"codegen"`` compiles it
    to specialized Python (:mod:`repro.executor.codegen`); ``None``
    defers to the ``CLIP_EXEC_MODE`` environment default.
    ``codegen_source`` rebuilds the codegen closures from an
    already-emitted source string (pool workers)."""
    return TgdPlan(
        tgd, optimize=optimize, exec_mode=exec_mode,
        codegen_source=codegen_source,
    )


def execute(
    tgd: NestedTgd,
    source_instance: XmlElement,
    *,
    optimize: Optional[bool] = None,
) -> XmlElement:
    """Evaluate a nested tgd over a source instance; returns the target
    instance rooted at the tgd's target root tag.

    One-shot convenience over :func:`prepare`; to apply the same tgd to
    many documents, prepare once and call the plan per document.
    """
    return prepare(tgd, optimize=optimize).run(source_instance)


class _Engine:
    def __init__(
        self,
        tgd: NestedTgd,
        source_instance: XmlElement,
        *,
        ordered: Optional[tuple[TgdMapping, ...]] = None,
    ):
        if source_instance.tag != tgd.source_root:
            raise ExecutionError(
                f"instance root <{source_instance.tag}> does not match the tgd's "
                f"source root <{tgd.source_root}>"
            )
        self.tgd = tgd
        self.source = source_instance
        self.ordered = ordered if ordered is not None else order_mappings(tgd)
        self.target_root = XmlElement(tgd.target_root)
        # Singleton constant tags: (parent identity, tag) → element.
        self._wrappers: dict[tuple[int, str], XmlElement] = {}
        # Grouping Skolems: (parent identity, tag, key) → element.
        self._groups: dict[tuple[int, str, tuple], XmlElement] = {}
        # Membership-condition identity sets, cached per collection:
        # (id(condition), id(root binding)) → {id(element), ...}.  A
        # collection expression is a projection chain over one root
        # binding, so the set is loop-invariant for that binding and
        # need not be rebuilt on every membership check.
        self._identity_sets: dict[tuple, set[int]] = {}
        # Strong refs keeping the id()-keyed bindings above alive (a
        # recycled id would alias a stale cache entry).
        self._identity_pins: list = []

    def run(self) -> XmlElement:
        for mapping in self.ordered:
            self._run_mapping(mapping, {}, {})
        return self.target_root

    # -- source-side evaluation -------------------------------------------

    def _eval(self, expr: TgdExpr, env: Env) -> list:
        """Evaluate a source expression to a list of items (elements or
        atomic values), in document order."""
        if isinstance(expr, SchemaRoot):
            return [self.source]
        if isinstance(expr, Var):
            try:
                binding = env[expr.name]
            except KeyError:
                raise ExecutionError(f"unbound variable {expr.name!r}") from None
            if isinstance(binding, GroupBinding):
                return list(binding.members)
            return [binding]
        base_items = self._eval(expr.base, env)
        label = expr.label
        out: list = []
        for item in base_items:
            if not isinstance(item, XmlElement):
                raise ExecutionError(
                    f"projection .{label} applied to atomic value {item!r}"
                )
            if label.startswith("@"):
                if item.has_attribute(label[1:]):
                    out.append(item.attribute(label[1:]))
            elif label == "value":
                if item.text is not None:
                    out.append(item.text)
            else:
                out.extend(item.findall(label))
        return out

    def _eval_atoms(self, operand, env: Env) -> list[AtomicValue]:
        if isinstance(operand, Constant):
            return [operand.value]
        items = self._eval(operand, env)
        atoms: list[AtomicValue] = []
        for item in items:
            if isinstance(item, XmlElement):
                if item.text is not None:
                    atoms.append(item.text)
            else:
                atoms.append(item)
        return atoms

    def _condition_holds(self, condition, env: Env) -> bool:
        if isinstance(condition, Membership):
            members = self._eval(condition.member, env)
            identities = self._collection_identities(condition, env)
            return any(id(m) in identities for m in members)
        if isinstance(condition, TgdComparison):
            lefts = self._eval_atoms(condition.left, env)
            rights = self._eval_atoms(condition.right, env)
            # Existential (XPath general-comparison) semantics; on
            # singleton operands this is ordinary comparison.
            return any(
                condition.holds(lv, rv) for lv in lefts for rv in rights
            )
        raise ExecutionError(f"unsupported condition {condition!r}")

    def _collection_identities(
        self, condition: Membership, env: Env
    ) -> set[int]:
        """The identity set of a membership condition's collection,
        cached per root binding of the collection expression."""
        root = expr_root(condition.collection)
        dep = env.get(root.name) if isinstance(root, Var) else None
        if isinstance(root, Var) and dep is None:
            # Unbound: evaluate uncached so _eval raises its usual error.
            return {id(e) for e in self._eval(condition.collection, env)}
        key = (id(condition), id(dep) if dep is not None else None)
        found = self._identity_sets.get(key)
        if found is None:
            found = {id(e) for e in self._eval(condition.collection, env)}
            self._identity_sets[key] = found
            if dep is not None:
                self._identity_pins.append(dep)
        return found

    def _enumerate_raw(self, mapping: TgdMapping, env: Env) -> list[Env]:
        """All variable bindings produced by the generators (before C1)."""
        envs = [dict(env)]
        for gen in mapping.source_gens:
            expanded: list[Env] = []
            for current in envs:
                for item in self._eval(gen.expr, current):
                    if not isinstance(item, XmlElement):
                        raise ExecutionError(
                            f"generator {gen} iterates atomic value {item!r}"
                        )
                    child = dict(current)
                    child[gen.var] = item
                    expanded.append(child)
            envs = expanded
        return envs

    def _enumerate(self, mapping: TgdMapping, env: Env) -> list[Env]:
        """All variable bindings satisfying the generators and C1."""
        return [
            e
            for e in self._enumerate_raw(mapping, env)
            if all(self._condition_holds(c, e) for c in mapping.where)
        ]

    # -- target-side construction ----------------------------------------

    def _wrapper(self, parent: XmlElement, tag: str) -> XmlElement:
        key = (id(parent), tag)
        found = self._wrappers.get(key)
        if found is None:
            found = parent.append(XmlElement(tag))
            self._wrappers[key] = found
        return found

    def _resolve_target_parent(self, expr: TgdExpr, target_env: Env) -> XmlElement:
        if isinstance(expr, SchemaRoot):
            return self.target_root
        if isinstance(expr, Var):
            try:
                binding = target_env[expr.name]
            except KeyError:
                raise ExecutionError(
                    f"unbound target variable {expr.name!r}"
                ) from None
            if not isinstance(binding, XmlElement):
                raise ExecutionError(f"target variable {expr.name!r} is not an element")
            return binding
        raise ExecutionError(f"target generator base {expr!r} must be a variable or root")

    def _materialize_targets(
        self,
        generators: tuple[TargetGenerator, ...],
        target_env: Env,
        *,
        group_key: Optional[tuple] = None,
    ) -> list[Env]:
        """Bind the target generators, creating elements as needed.

        Returns one environment per combination — more than one only
        when a ``distribute`` generator fans the content out over the
        instances another builder created (Figure 4 without the arc).
        """
        envs = [dict(target_env)]
        for gen in generators:
            if not isinstance(gen.expr, Proj):
                raise ExecutionError(f"malformed target generator {gen}")
            tag = gen.expr.label
            expanded: list[Env] = []
            for out in envs:
                parent = self._resolve_target_parent(gen.expr.base, out)
                if gen.quantified:
                    if group_key is not None:
                        cache_key = (id(parent), tag, group_key)
                        found = self._groups.get(cache_key)
                        if found is None:
                            found = parent.append(XmlElement(tag))
                            self._groups[cache_key] = found
                        bindings = [found]
                    else:
                        bindings = [parent.append(XmlElement(tag))]
                elif gen.distribute:
                    bindings = parent.findall(tag)
                    if not bindings:
                        # No instance built (yet): fall back to a
                        # singleton wrapper so the content is not lost.
                        bindings = [self._wrapper(parent, tag)]
                else:
                    bindings = [self._wrapper(parent, tag)]
                for binding in bindings:
                    child = dict(out)
                    child[gen.var] = binding
                    expanded.append(child)
            envs = expanded
        return envs

    def _apply_assignment(self, assignment: Assignment, env: Env, target_env: Env) -> None:
        value = self._eval_term(assignment.value, env)
        if value is None:
            return  # no source value: leave the optional target node absent
        # Resolve the target path: Var(tvar).label…label.leaf
        labels: list[str] = []
        expr = assignment.target
        while isinstance(expr, Proj):
            labels.append(expr.label)
            expr = expr.base
        labels.reverse()
        if not isinstance(expr, Var) or not labels:
            raise ExecutionError(f"malformed assignment target {assignment.target}")
        holder = self._resolve_target_parent(expr, target_env)
        leaf = labels[-1]
        for tag in labels[:-1]:
            holder = self._wrapper(holder, tag)
        if leaf.startswith("@"):
            holder.set_attribute(leaf[1:], value)
        elif leaf == "value":
            holder.set_text(value)
        else:
            self._wrapper(holder, leaf).set_text(value)

    def _eval_term(self, term, env: Env) -> Optional[AtomicValue]:
        if isinstance(term, Constant):
            return term.value
        if isinstance(term, AggregateApp):
            items = self._eval(term.arg, env)
            if not items and term.function.name in ("avg", "min", "max"):
                # XQuery semantics: fn:avg(()) is the empty sequence, so
                # the target value is simply not produced.
                return None
            return term.function.apply(items)
        if isinstance(term, FunctionApp):
            args = [self._eval_scalar(arg, env) for arg in term.args]
            if any(a is None for a in args):
                return None
            return term.function.apply(args)
        return self._eval_scalar(term, env)

    def _eval_scalar(self, expr: TgdExpr, env: Env) -> Optional[AtomicValue]:
        atoms = self._eval_atoms(expr, env)
        distinct = list(dict.fromkeys(atoms))
        if not distinct:
            return None
        if len(distinct) > 1:
            raise ExecutionError(
                f"expression {expr} yields {len(distinct)} distinct values where "
                "a single value is required (use an aggregate to condense them)"
            )
        return distinct[0]

    # -- mapping levels ------------------------------------------------------

    @staticmethod
    def _split_targets(
        generators: tuple[TargetGenerator, ...]
    ) -> tuple[tuple[TargetGenerator, ...], tuple[TargetGenerator, ...]]:
        """Split at the first quantified generator: the unquantified
        prefix consists of constant tags that "wrap the FLWOR" — they
        exist once per enclosing context even when the iteration is
        empty (Section VI)."""
        for index, gen in enumerate(generators):
            if gen.quantified:
                return generators[:index], generators[index:]
        return generators, ()

    def _run_mapping(self, mapping: TgdMapping, env: Env, target_env: Env) -> None:
        envs = self._enumerate(mapping, env)
        if mapping.skolem is not None:
            self._run_grouped(mapping, envs, target_env)
            return
        if not mapping.source_gens:
            envs = [dict(env)]  # one empty iteration (document scope)
        prefix, suffix = self._split_targets(mapping.target_gens)
        base_envs = self._materialize_targets(prefix, target_env)
        for iteration_env in envs:
            for base_env in base_envs:
                for iter_target_env in self._materialize_targets(suffix, base_env):
                    for assignment in mapping.assignments:
                        self._apply_assignment(assignment, iteration_env, iter_target_env)
                    for sub in mapping.submappings:
                        self._run_mapping(sub, iteration_env, iter_target_env)

    def _group_key(self, mapping: TgdMapping, skolem_app, env: Env) -> tuple:
        """The grouping key of one environment — a hook so the codegen
        backend can dispatch to its compiled key function."""
        return tuple(
            tuple(self._eval_atoms(attr, env)) for attr in skolem_app.attrs
        )

    def _run_grouped(
        self, mapping: TgdMapping, envs: list[Env], target_env: Env
    ) -> None:
        _, skolem_app = mapping.skolem
        introduced = [gen.var for gen in mapping.source_gens]
        grouped: dict[tuple, list[Env]] = {}
        for iteration_env in envs:
            key = self._group_key(mapping, skolem_app, iteration_env)
            grouped.setdefault(key, []).append(iteration_env)
        prefix, suffix = self._split_targets(mapping.target_gens)
        base_envs = self._materialize_targets(prefix, target_env)
        for key, members in grouped.items():
            group_env: Env = dict(members[0])
            for var in introduced:
                distinct: list[XmlElement] = []
                seen: set[int] = set()
                for member in members:
                    binding = member[var]
                    if isinstance(binding, XmlElement) and id(binding) not in seen:
                        seen.add(id(binding))
                        distinct.append(binding)
                group_env[var] = GroupBinding(distinct)
            # One group element per distinct key *per parent context* —
            # several parents only under distribution (Figure 4 variant).
            for base_env in base_envs:
                (iter_target_env,) = self._materialize_targets(
                    suffix, base_env, group_key=key
                )
                for assignment in mapping.assignments:
                    self._apply_assignment(assignment, group_env, iter_target_env)
                for sub in mapping.submappings:
                    self._run_mapping(sub, group_env, iter_target_env)
