"""Execution statistics: instrumented runs of the tgd executor.

:func:`explain` runs a mapping while counting, per tgd level, how many
iterations fired, how many tuples the conditions filtered out, how many
target elements were created, how many groups formed, and how many
assignments were applied.  Mapping developers use the report to spot
accidental Cartesian blow-ups — a paper theme: the difference between
Figures 4/6 and their arc-less variants is exactly these numbers.

:func:`explain_plan` is the optimizer-side counterpart: it compiles the
mapping through :mod:`repro.executor.planner`, evaluates it, and
reports the compiled plan (generator order, pushed filters, hash
joins) together with the runtime counters (bindings enumerated, filter
drops, hash build/probe sizes) as a ``clip-plan-explain`` document.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..core.tgd import NestedTgd, TgdMapping
from ..xml.model import XmlElement
from .engine import _Engine

#: Schema identifiers of the :func:`explain_plan` JSON document.
PLAN_EXPLAIN_FORMAT = "clip-plan-explain"
PLAN_EXPLAIN_VERSION = 1


@dataclass
class LevelStats:
    """Counters for one (sub)mapping level."""

    label: str
    depth: int
    iterations: int = 0
    filtered_out: int = 0
    groups: int = 0
    elements_built: int = 0
    assignments_applied: int = 0

    def row(self) -> str:
        pad = "  " * self.depth
        bits = [
            f"{pad}{self.label}:",
            f"iterations={self.iterations}",
            f"filtered={self.filtered_out}",
        ]
        if self.groups:
            bits.append(f"groups={self.groups}")
        bits.append(f"built={self.elements_built}")
        bits.append(f"assigned={self.assignments_applied}")
        return " ".join(bits)

    def to_dict(self) -> dict:
        """The counters as a plain dict (machine-readable reports)."""
        return {
            "label": self.label,
            "depth": self.depth,
            "iterations": self.iterations,
            "filtered_out": self.filtered_out,
            "groups": self.groups,
            "elements_built": self.elements_built,
            "assignments_applied": self.assignments_applied,
        }


@dataclass
class ExecutionReport:
    """The result instance plus per-level counters."""

    result: XmlElement
    levels: list[LevelStats] = field(default_factory=list)

    @property
    def total_elements_built(self) -> int:
        return sum(level.elements_built for level in self.levels)

    @property
    def total_iterations(self) -> int:
        return sum(level.iterations for level in self.levels)

    def render(self) -> str:
        lines = [level.row() for level in self.levels]
        lines.append(
            f"total: {self.total_iterations} iterations, "
            f"{self.total_elements_built} elements built, "
            f"{self.result.size()} elements in the result"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The report as a plain dict: per-level counters plus totals.
        The result instance itself is summarized by its element count —
        serialize it separately if the tree is needed."""
        return {
            "levels": [level.to_dict() for level in self.levels],
            "total_iterations": self.total_iterations,
            "total_elements_built": self.total_elements_built,
            "result_elements": self.result.size(),
        }

    def to_json(self, *, indent: int = 2) -> str:
        """The report as JSON text (see :meth:`to_dict`)."""
        return json.dumps(self.to_dict(), indent=indent)


def _label(mapping: TgdMapping) -> str:
    if mapping.source_gens:
        gens = ", ".join(f"{g.var} ∈ {g.expr}" for g in mapping.source_gens)
    else:
        gens = "⊤"
    return f"∀ {gens}"


def explain(tgd: NestedTgd, source_instance: XmlElement) -> ExecutionReport:
    """Run the mapping and return the instrumented report."""
    engine = _InstrumentedEngine(tgd, source_instance)
    result = engine.run()
    return ExecutionReport(result, engine.levels)


class _InstrumentedEngine(_Engine):
    """The executor with per-level counters.  Re-implements the mapping
    loop of :class:`_Engine` with counting; the expression/condition/
    materialization machinery is inherited unchanged."""

    def __init__(self, tgd: NestedTgd, source_instance: XmlElement):
        super().__init__(tgd, source_instance)
        self.levels: list[LevelStats] = []
        self._stats: dict[int, LevelStats] = {}
        self._walk(tgd.roots, 0)

    def _walk(self, mappings, depth: int) -> None:
        for mapping in mappings:
            stats = LevelStats(_label(mapping), depth)
            self.levels.append(stats)
            self._stats[id(mapping)] = stats
            self._walk(mapping.submappings, depth + 1)

    def _run_mapping(self, mapping, env, target_env):
        stats = self._stats[id(mapping)]
        raw = self._enumerate_raw(mapping, env)
        envs = [
            e for e in raw
            if all(self._condition_holds(c, e) for c in mapping.where)
        ]
        stats.filtered_out += len(raw) - len(envs)
        if mapping.skolem is not None:
            before_groups = len(self._groups)
            stats.iterations += len(envs)
            super()._run_grouped(mapping, envs, target_env)
            new_groups = len(self._groups) - before_groups
            stats.groups += new_groups
            stats.elements_built += new_groups
            stats.assignments_applied += len(mapping.assignments) * new_groups
            return
        if not mapping.source_gens:
            envs = [dict(env)]
        stats.iterations += len(envs)
        prefix, suffix = self._split_targets(mapping.target_gens)
        base_envs = self._materialize_targets(prefix, target_env)
        built_per_iteration = sum(1 for g in suffix if g.quantified)
        for iteration_env in envs:
            for base_env in base_envs:
                for iter_target_env in self._materialize_targets(suffix, base_env):
                    stats.elements_built += built_per_iteration
                    for assignment in mapping.assignments:
                        self._apply_assignment(assignment, iteration_env, iter_target_env)
                        stats.assignments_applied += 1
                    for sub in mapping.submappings:
                        self._run_mapping(sub, iteration_env, iter_target_env)


# -- plan explain ------------------------------------------------------------


@dataclass
class PlanExplain:
    """The compiled plan of a mapping plus the runtime counters of one
    evaluation — the payload of the ``clip-plan-explain`` document."""

    result: XmlElement
    optimize: bool
    #: Static per-level plan descriptions (see ``LevelPlan.describe``).
    levels: list[dict]
    #: Per-level runtime counter dicts (all-zero when ``optimize`` is
    #: off: the naive path has no planner instrumentation).
    counters: list[dict]
    #: The effective execution mode ("interp" or "codegen").
    exec_mode: str = "interp"
    #: The generated program's description (source hash, line count,
    #: compile seconds) when ``exec_mode`` is codegen, else ``None``.
    codegen: Optional[dict] = None

    def to_dict(self) -> dict:
        totals: dict[str, int] = {}
        for counter in self.counters:
            for name, value in counter.items():
                totals[name] = totals.get(name, 0) + value
        doc = {
            "format": PLAN_EXPLAIN_FORMAT,
            "version": PLAN_EXPLAIN_VERSION,
            "optimize": self.optimize,
            "exec_mode": self.exec_mode,
            "levels": [
                {**level, "counters": counter}
                for level, counter in zip(self.levels, self.counters)
            ],
            "totals": totals,
            "result_elements": self.result.size(),
        }
        if self.codegen is not None:
            doc["codegen"] = self.codegen
        return doc

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, ensure_ascii=False)

    def render(self) -> str:
        """Human-readable plan + counters (the CLI ``explain`` output)."""
        doc = self.to_dict()
        mode = f", exec_mode={self.exec_mode}" if self.exec_mode != "interp" else ""
        lines = [
            f"{PLAN_EXPLAIN_FORMAT} v{PLAN_EXPLAIN_VERSION} "
            f"(optimize={'on' if self.optimize else 'off'}{mode})"
        ]
        if self.codegen is not None:
            lines.append(
                f"codegen: {self.codegen['line_count']} lines, "
                f"source sha256 {self.codegen['source_hash'][:12]}…, "
                f"compiled in {self.codegen['compile_seconds'] * 1000:.2f} ms"
            )
        for level in doc["levels"]:
            pad = "  " * level["depth"]
            suffix = " [grouped]" if level["grouped"] else ""
            lines.append(f"{pad}{level['label']}{suffix}")
            if level["order"] and level["reordered"]:
                lines.append(f"{pad}  order: {', '.join(level['order'])} (reordered)")
            for cond in level["pre_filters"]:
                lines.append(f"{pad}  pre-filter: {cond}")
            for gen in level["generators"]:
                for cond in gen["pushed_filters"]:
                    lines.append(f"{pad}  pushed filter @ {gen['var']}: {cond}")
                for join in gen["joins"]:
                    lines.append(
                        f"{pad}  {join['kind']} join @ {gen['var']}: "
                        f"{join['condition']} (build {join['build']}, "
                        f"probe {join['probe']})"
                    )
                for cond in gen["env_filters"]:
                    lines.append(f"{pad}  filter @ {gen['var']}: {cond}")
            counters = level["counters"]
            if self.optimize:
                lines.append(
                    f"{pad}  counters: enumerated={counters['bindings_enumerated']} "
                    f"produced={counters['envs_produced']} "
                    f"filter_drops={counters['filter_drops']}"
                )
                if counters["join_builds"]:
                    lines.append(
                        f"{pad}  hash joins: builds={counters['join_builds']} "
                        f"build_rows={counters['join_build_rows']} "
                        f"build_keys={counters['join_build_keys']} "
                        f"probes={counters['join_probes']} "
                        f"matches={counters['join_probe_matches']}"
                    )
                if counters["groups"]:
                    lines.append(f"{pad}  groups: {counters['groups']}")
        totals = doc["totals"]
        if self.optimize:
            lines.append(
                f"total: {totals.get('bindings_enumerated', 0)} bindings "
                f"enumerated, {totals.get('filter_drops', 0)} filtered, "
                f"{doc['result_elements']} elements in the result"
            )
        else:
            lines.append(
                f"total: naive evaluation (no planner counters), "
                f"{doc['result_elements']} elements in the result"
            )
        return "\n".join(lines)


def explain_plan(
    tgd: NestedTgd,
    source_instance: XmlElement,
    *,
    optimize: Optional[bool] = None,
    exec_mode: Optional[str] = None,
) -> PlanExplain:
    """Compile the mapping, evaluate it once, and report the compiled
    plan together with its runtime counters.

    With ``optimize`` off the plan is still compiled (its static shape
    is shown) but evaluation takes the naive reference path, so all
    counters stay zero.  With ``exec_mode="codegen"`` (optimized only)
    the specialized generated program runs instead of the interpreter
    — identical counters by construction — and the report gains a
    ``codegen`` section (source hash, line count, compile seconds).
    """
    from .codegen import _CodegenEngine, build_program, resolve_exec_mode
    from .planner import PlanStats, _OptimizedEngine, plan_tgd, resolve_optimize

    resolved = resolve_optimize(optimize)
    planned = plan_tgd(tgd)
    stats = PlanStats(planned)
    mode = resolve_exec_mode(exec_mode) if resolved else "interp"
    codegen = None
    if resolved and mode == "codegen":
        program = build_program(planned)
        codegen = program.describe()
        result = _CodegenEngine(
            tgd, source_instance, planned, program, stats=stats
        ).run()
    elif resolved:
        result = _OptimizedEngine(
            tgd, source_instance, planned, stats=stats
        ).run()
    else:
        result = _Engine(tgd, source_instance).run()
    return PlanExplain(
        result=result,
        optimize=resolved,
        levels=[plan.describe() for plan in planned.levels],
        counters=[counter.to_dict() for counter in stats.counters],
        exec_mode=mode,
        codegen=codegen,
    )
