"""Join-aware compilation of nested tgds.

The naive engine (:mod:`repro.executor.engine`) evaluates each mapping
level by enumerating the full Cartesian product of its source
generators and filtering the result against the ``where`` conditions —
faithful to the paper's semantics, and quadratic (or worse) on the
join- and grouping-heavy mappings of Figures 6–8.  This module is the
optimizer pass that turns the same tgd into a *plan*:

* **condition classification** — each ``where`` condition is placed at
  the earliest generator after which all its variables are bound, and
  classified as an equality **hash join** (``p.@pid = r.@pid``), a
  **membership join** (``p2 ∈ d2.Proj``, keyed on node identity), a
  **pushed filter** (``r.sal.value > 11000``, applied during
  enumeration instead of after the product), or a residual filter;
* **selectivity reordering** — generators with pushed filters are
  moved ahead of unfiltered independent peers (dependencies
  respected); byte-identical output order is restored by tagging each
  binding with its document-order ordinal and sorting the surviving
  environments by the ordinals in original generator order;
* **loop-invariant caching** — a generator's item sequence depends
  only on the binding of the variable at the root of its expression,
  so sequences (and the hash tables built over them) are memoized per
  dependency binding: an inner generator that does not depend on the
  outer loop is evaluated once, not once per outer iteration.

The plan changes *evaluation cost only*: the environments a level
produces — their contents and their order — are exactly the naive
engine's, which the differential suite checks byte-for-byte against
the naive engine and the XQuery interpreter.  Correctness reference is
Koch's complex-value query semantics; the optimization playbook is the
standard one from the data-exchange line (Fagin et al.).

Per-level :class:`PlanCounters` (bindings enumerated, filter drops,
hash build/probe sizes) feed :mod:`repro.executor.stats` and the
``clip-plan-explain`` report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields
from typing import Optional, Union

from ..core.tgd import (
    Constant,
    Membership,
    NestedTgd,
    Proj,
    SchemaRoot,
    SourceCondition,
    TgdComparison,
    TgdExpr,
    TgdMapping,
    Var,
    expr_root,
)
from ..errors import ExecutionError
from ..xml.index import DocumentIndex, index_for
from ..xml.model import XmlElement
from .engine import Env, GroupBinding, _Engine

#: Environment toggle: ``CLIP_OPTIMIZE=0`` (or ``false``/``no``/``off``)
#: makes the naive evaluation path the default — the CI leg that keeps
#: the naive engine honest runs the differential suite under it.
OPTIMIZE_ENV = "CLIP_OPTIMIZE"

_FALSY = ("0", "false", "no", "off")


def resolve_optimize(optimize: Optional[bool]) -> bool:
    """Resolve an ``optimize`` tri-state: explicit flag wins, ``None``
    falls back to the :data:`OPTIMIZE_ENV` environment default (on)."""
    if optimize is not None:
        return bool(optimize)
    return os.environ.get(OPTIMIZE_ENV, "1").strip().lower() not in _FALSY


# -- condition analysis ------------------------------------------------------


def _operand_var(operand: Union[TgdExpr, Constant]) -> Optional[str]:
    """The variable at the root of an operand's projection chain, or
    ``None`` for constants and schema-root-based expressions."""
    if isinstance(operand, Constant):
        return None
    root = expr_root(operand)
    return root.name if isinstance(root, Var) else None


def condition_vars(condition: SourceCondition) -> set[str]:
    """The variables a source condition references."""
    if isinstance(condition, Membership):
        operands = (condition.member, condition.collection)
    elif isinstance(condition, TgdComparison):
        operands = (condition.left, condition.right)
    else:
        raise ExecutionError(f"unsupported condition {condition!r}")
    return {v for v in (_operand_var(op) for op in operands) if v is not None}


@dataclass(frozen=True)
class EqualityJoin:
    """An equality condition executed as a build/probe hash join at the
    generator binding ``build_var``: the generator's (filtered) item
    sequence is hashed on ``build_key`` once per dependency context,
    and each outer environment probes it with ``probe_key``."""

    condition: TgdComparison
    build_var: str
    build_key: TgdExpr
    probe_key: Union[TgdExpr, Constant]

    def describe(self) -> dict:
        return {
            "kind": "equality",
            "condition": str(self.condition),
            "build": f"{self.build_key}",
            "probe": f"{self.probe_key}",
        }


@dataclass(frozen=True)
class MembershipJoin:
    """A membership condition (``member ∈ collection``) whose collection
    is rooted at the generator being bound: the union of the candidates'
    collections is hashed on node identity, and each outer environment
    probes it with its member elements."""

    condition: Membership
    build_var: str
    collection: TgdExpr
    member: TgdExpr

    def describe(self) -> dict:
        return {
            "kind": "membership",
            "condition": str(self.condition),
            "build": f"{self.collection}",
            "probe": f"{self.member}",
        }


@dataclass(frozen=True)
class GeneratorPlan:
    """One generator's slot in the planned evaluation order."""

    position: int  # index into mapping.source_gens
    #: Conditions over this generator's variable alone — applied while
    #: building the (memoized) item sequence.
    seq_filters: tuple[SourceCondition, ...] = ()
    #: Conditions needing this generator plus earlier/outer bindings
    #: that are not join-shaped — applied per candidate environment.
    env_filters: tuple[SourceCondition, ...] = ()
    eq_joins: tuple[EqualityJoin, ...] = ()
    mem_joins: tuple[MembershipJoin, ...] = ()


@dataclass(frozen=True)
class LevelPlan:
    """The compiled evaluation strategy for one mapping level."""

    mapping: TgdMapping
    label: str
    depth: int
    slots: tuple[GeneratorPlan, ...]  # in planned evaluation order
    #: Conditions over outer variables only — checked once per level entry.
    pre_conditions: tuple[SourceCondition, ...] = ()
    #: Safety net: conditions the classifier could not place (none for
    #: well-formed tgds) — applied after enumeration, like the naive path.
    residual: tuple[SourceCondition, ...] = ()
    reordered: bool = False

    @property
    def order(self) -> tuple[int, ...]:
        return tuple(slot.position for slot in self.slots)

    def describe(self) -> dict:
        """Static plan description (no runtime counters)."""
        gens = self.mapping.source_gens
        return {
            "label": self.label,
            "depth": self.depth,
            "grouped": self.mapping.skolem is not None,
            "order": [gens[slot.position].var for slot in self.slots],
            "reordered": self.reordered,
            "pre_filters": [str(c) for c in self.pre_conditions],
            "generators": [
                {
                    "var": gens[slot.position].var,
                    "expr": str(gens[slot.position].expr),
                    "pushed_filters": [str(c) for c in slot.seq_filters],
                    "env_filters": [str(c) for c in slot.env_filters],
                    "joins": [j.describe() for j in slot.eq_joins]
                    + [j.describe() for j in slot.mem_joins],
                }
                for slot in self.slots
            ],
            "residual": [str(c) for c in self.residual],
        }


def _level_label(mapping: TgdMapping) -> str:
    if mapping.source_gens:
        gens = ", ".join(f"{g.var} ∈ {g.expr}" for g in mapping.source_gens)
    else:
        gens = "⊤"
    return f"∀ {gens}"


def plan_level(mapping: TgdMapping, depth: int) -> LevelPlan:
    """Compile one mapping level: classify conditions, choose the
    evaluation order, attach joins and filters to generator slots."""
    gens = mapping.source_gens
    local_vars = {g.var: i for i, g in enumerate(gens)}

    # Dependencies: generator i needs generator j bound first when its
    # expression is rooted at j's variable.
    needs: dict[int, Optional[int]] = {}
    for i, gen in enumerate(gens):
        root = expr_root(gen.expr)
        needs[i] = (
            local_vars[root.name]
            if isinstance(root, Var) and root.name in local_vars
            and local_vars[root.name] != i
            else None
        )

    pre: list[SourceCondition] = []
    placeable: list[tuple[SourceCondition, set[str]]] = []
    for condition in mapping.where:
        names = condition_vars(condition) & set(local_vars)
        if not names:
            pre.append(condition)
        else:
            placeable.append((condition, names))

    # Single-variable filters drive the selectivity heuristic: a
    # generator whose candidates are pruned by its own filter goes
    # before unfiltered independent peers.
    own_filtered = {
        next(iter(names))
        for condition, names in placeable
        if len(names) == 1 and condition_vars(condition) == names
    }

    order: list[int] = []
    remaining = list(range(len(gens)))
    while remaining:
        ready = [
            i for i in remaining if needs[i] is None or needs[i] in order
        ]
        ready.sort(key=lambda i: (0 if gens[i].var in own_filtered else 1, i))
        pick = ready[0]
        order.append(pick)
        remaining.remove(pick)
    reordered = order != sorted(order)

    bound_at: dict[str, int] = {}  # var → position in planned order
    for slot_index, position in enumerate(order):
        bound_at[gens[position].var] = slot_index

    seq_filters: dict[int, list[SourceCondition]] = {i: [] for i in order}
    env_filters: dict[int, list[SourceCondition]] = {i: [] for i in order}
    eq_joins: dict[int, list[EqualityJoin]] = {i: [] for i in order}
    mem_joins: dict[int, list[MembershipJoin]] = {i: [] for i in order}
    residual: list[SourceCondition] = []

    for condition, names in placeable:
        anchor_slot = max(bound_at[name] for name in names)
        position = order[anchor_slot]
        anchor_var = gens[position].var
        all_vars = condition_vars(condition)
        if all_vars == {anchor_var}:
            seq_filters[position].append(condition)
            continue
        earlier = all_vars - {anchor_var}
        if isinstance(condition, TgdComparison) and condition.op == "=":
            left_var = _operand_var(condition.left)
            right_var = _operand_var(condition.right)
            if left_var == anchor_var and right_var != anchor_var:
                eq_joins[position].append(
                    EqualityJoin(condition, anchor_var,
                                 condition.left, condition.right)
                )
                continue
            if right_var == anchor_var and left_var != anchor_var:
                eq_joins[position].append(
                    EqualityJoin(condition, anchor_var,
                                 condition.right, condition.left)
                )
                continue
        if isinstance(condition, Membership):
            collection_var = _operand_var(condition.collection)
            member_var = _operand_var(condition.member)
            if collection_var == anchor_var and member_var != anchor_var:
                mem_joins[position].append(
                    MembershipJoin(condition, anchor_var,
                                   condition.collection, condition.member)
                )
                continue
        if earlier or anchor_var in all_vars:
            env_filters[position].append(condition)
        else:  # pragma: no cover - classifier safety net
            residual.append(condition)

    slots = tuple(
        GeneratorPlan(
            position=position,
            seq_filters=tuple(seq_filters[position]),
            env_filters=tuple(env_filters[position]),
            eq_joins=tuple(eq_joins[position]),
            mem_joins=tuple(mem_joins[position]),
        )
        for position in order
    )
    return LevelPlan(
        mapping=mapping,
        label=_level_label(mapping),
        depth=depth,
        slots=slots,
        pre_conditions=tuple(pre),
        residual=tuple(residual),
        reordered=reordered,
    )


@dataclass(frozen=True)
class PlannedTgd:
    """Every level of a nested tgd, compiled."""

    tgd: NestedTgd
    levels: tuple[LevelPlan, ...]

    def level_for(self, mapping: TgdMapping) -> "LevelPlan":
        return self._by_id[id(mapping)]

    def __post_init__(self):
        object.__setattr__(
            self, "_by_id", {id(plan.mapping): plan for plan in self.levels}
        )

    def describe(self) -> dict:
        return {"levels": [plan.describe() for plan in self.levels]}


def plan_tgd(tgd: NestedTgd) -> PlannedTgd:
    """Compile every level of a nested tgd into a :class:`PlannedTgd`."""
    levels: list[LevelPlan] = []

    def walk(mapping: TgdMapping, depth: int) -> None:
        levels.append(plan_level(mapping, depth))
        for sub in mapping.submappings:
            walk(sub, depth + 1)

    for root in tgd.roots:
        walk(root, 0)
    return PlannedTgd(tgd, tuple(levels))


# -- runtime counters --------------------------------------------------------


@dataclass
class PlanCounters:
    """Runtime counters for one level of an optimized evaluation."""

    invocations: int = 0
    #: Candidate bindings materialized (the naive engine's "iterations").
    bindings_enumerated: int = 0
    #: Environments surviving every condition.
    envs_produced: int = 0
    #: Candidates dropped by pushed/env/pre/residual filters.
    filter_drops: int = 0
    join_builds: int = 0
    join_build_rows: int = 0
    join_build_keys: int = 0
    join_probes: int = 0
    join_probe_matches: int = 0
    groups: int = 0
    seq_cache_hits: int = 0
    seq_cache_misses: int = 0

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def add(self, other: "PlanCounters") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def diff(self, earlier: "PlanCounters") -> "PlanCounters":
        out = PlanCounters()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name) - getattr(earlier, f.name))
        return out

    def snapshot(self) -> "PlanCounters":
        out = PlanCounters()
        out.add(self)
        return out


@dataclass
class PlanStats:
    """Per-level counters for a whole planned tgd, aggregated across
    however many documents the plan has evaluated."""

    planned: PlannedTgd
    counters: list[PlanCounters] = field(default_factory=list)

    def __post_init__(self):
        if not self.counters:
            self.counters = [PlanCounters() for _ in self.planned.levels]

    def counter_for(self, mapping: TgdMapping) -> PlanCounters:
        for plan, counter in zip(self.planned.levels, self.counters):
            if plan.mapping is mapping:
                return counter
        raise KeyError("mapping is not a level of this plan")

    def snapshot(self) -> list[PlanCounters]:
        return [counter.snapshot() for counter in self.counters]

    def diff(self, earlier: list[PlanCounters]) -> list[PlanCounters]:
        return [
            counter.diff(before)
            for counter, before in zip(self.counters, earlier)
        ]


# -- optimized evaluation ----------------------------------------------------

_NO_DEP = object()


def _is_nan(value) -> bool:
    return isinstance(value, float) and value != value


class _OptimizedEngine(_Engine):
    """The tgd engine evaluated through a :class:`PlannedTgd`.

    Inherits every piece of the naive engine's target-side machinery —
    element construction, wrappers, grouping Skolems, assignments — and
    replaces source-side enumeration with the planned strategy.  The
    environments produced per level are identical, in content and
    order, to :meth:`_Engine._enumerate`.
    """

    def __init__(
        self,
        tgd: NestedTgd,
        source_instance: XmlElement,
        planned: PlannedTgd,
        *,
        ordered=None,
        index: Optional[DocumentIndex] = None,
        stats: Optional[PlanStats] = None,
    ):
        super().__init__(tgd, source_instance, ordered=ordered)
        self.planned = planned
        self.index = index if index is not None else index_for(source_instance)
        self.stats = stats
        # (id(level mapping), position, dep key) → filtered item list.
        self._sequences: dict[tuple, list[XmlElement]] = {}
        # (id(join), dep key) → hash table.
        self._tables: dict[tuple, dict] = {}
        # (id(expr), dep key) → atoms (loop-invariant atom evaluation).
        self._atoms: dict[tuple, list] = {}
        # Strong refs to every binding a memo key's id() points at:
        # GroupBindings are engine-created and otherwise collectable
        # mid-run, and a recycled id would alias a stale memo entry.
        self._pins: list = []

    # -- indexed navigation ---------------------------------------------

    def _eval(self, expr, env):
        """The naive evaluator with child steps served by the document
        index (same elements, same order — ``children(tag)`` is an
        indexed ``findall``)."""
        if isinstance(expr, SchemaRoot):
            return [self.source]
        if isinstance(expr, Var):
            try:
                binding = env[expr.name]
            except KeyError:
                raise ExecutionError(f"unbound variable {expr.name!r}") from None
            if isinstance(binding, GroupBinding):
                return list(binding.members)
            return [binding]
        assert isinstance(expr, Proj)
        base_items = self._eval(expr.base, env)
        label = expr.label
        out: list = []
        index = self.index
        for item in base_items:
            if not isinstance(item, XmlElement):
                raise ExecutionError(
                    f"projection .{label} applied to atomic value {item!r}"
                )
            if label.startswith("@"):
                if item.has_attribute(label[1:]):
                    out.append(item.attribute(label[1:]))
            elif label == "value":
                if item.text is not None:
                    out.append(item.text)
            else:
                out.extend(index.children(item, label))
        return out

    def _dep_binding(self, expr: TgdExpr, env: Env):
        """The binding the value of ``expr`` depends on in ``env`` — the
        object at the root of the projection chain.  ``_NO_DEP`` for
        schema-root-based expressions (which depend only on the source
        document), ``None`` when the root variable is unbound (let
        ``_eval`` raise the proper error)."""
        root = expr_root(expr)
        if isinstance(root, Var):
            return env.get(root.name)
        return _NO_DEP

    @staticmethod
    def _key_of(dep) -> object:
        return _NO_DEP if dep is _NO_DEP else id(dep)

    def _eval_atoms(self, operand, env):
        """Atom evaluation with loop-invariant memoization: an operand's
        atoms depend only on its root binding, so repeated evaluations
        against the same binding (grouping keys, probe keys) are hits."""
        if isinstance(operand, Constant):
            return [operand.value]
        dep = self._dep_binding(operand, env)
        if dep is None:
            return super()._eval_atoms(operand, env)
        key = (id(operand), self._key_of(dep))
        found = self._atoms.get(key)
        if found is None:
            found = super()._eval_atoms(operand, env)
            self._atoms[key] = found
            if dep is not _NO_DEP:
                self._pins.append(dep)
        return found

    # -- planned enumeration ---------------------------------------------

    def _counter(self, mapping: TgdMapping) -> Optional[PlanCounters]:
        if self.stats is None:
            return None
        return self.stats.counter_for(mapping)

    def _sequence(
        self, plan: LevelPlan, slot: GeneratorPlan, env: Env,
        counter: Optional[PlanCounters],
    ) -> tuple[tuple, list[XmlElement]]:
        """The generator's candidate items for this environment —
        evaluated, element-checked, pushed-filtered, and memoized per
        dependency binding.  Returns ``(memo key, items)``; the key also
        scopes the join tables built over the sequence."""
        gen = plan.mapping.source_gens[slot.position]
        dep = self._dep_binding(gen.expr, env)
        key = (id(plan.mapping), slot.position, self._key_of(dep))
        found = self._sequences.get(key)
        if found is not None:
            if counter is not None:
                counter.seq_cache_hits += 1
            return key, found
        if counter is not None:
            counter.seq_cache_misses += 1
        items = self._eval(gen.expr, env)
        out: list[XmlElement] = []
        probe = {}
        for item in items:
            if not isinstance(item, XmlElement):
                raise ExecutionError(
                    f"generator {gen} iterates atomic value {item!r}"
                )
            if slot.seq_filters:
                probe[gen.var] = item
                if not all(
                    self._condition_holds(c, probe) for c in slot.seq_filters
                ):
                    if counter is not None:
                        counter.filter_drops += 1
                    continue
            out.append(item)
        self._sequences[key] = out
        if dep is not None and dep is not _NO_DEP:
            self._pins.append(dep)
        return key, out

    def _eq_table(
        self, join: EqualityJoin, sequence: list[XmlElement], seq_key: tuple,
        counter: Optional[PlanCounters],
    ) -> dict:
        """``atom → [ordinals]`` over the generator's candidate
        sequence, memoized per dependency context."""
        key = (id(join), seq_key)
        table = self._tables.get(key)
        if table is not None:
            return table
        table = {}
        probe = {}
        for ordinal, item in enumerate(sequence):
            probe[join.build_var] = item
            atoms = self._eval_atoms(join.build_key, probe)
            for atom in dict.fromkeys(atoms):
                if _is_nan(atom):
                    continue  # NaN never compares equal
                table.setdefault(atom, []).append(ordinal)
        self._tables[key] = table
        if counter is not None:
            counter.join_builds += 1
            counter.join_build_rows += len(sequence)
            counter.join_build_keys += len(table)
        return table

    def _mem_table(
        self, join: MembershipJoin, sequence: list[XmlElement], seq_key: tuple,
        counter: Optional[PlanCounters],
    ) -> dict:
        """``id(collection element) → [ordinals]`` over the candidates'
        collections, memoized per dependency context."""
        key = (id(join), seq_key)
        table = self._tables.get(key)
        if table is not None:
            return table
        table = {}
        probe = {}
        for ordinal, item in enumerate(sequence):
            probe[join.build_var] = item
            for member in self._eval(join.collection, probe):
                bucket = table.setdefault(id(member), [])
                if not bucket or bucket[-1] != ordinal:
                    bucket.append(ordinal)
        self._tables[key] = table
        if counter is not None:
            counter.join_builds += 1
            counter.join_build_rows += len(sequence)
            counter.join_build_keys += len(table)
        return table

    def _probe(
        self, plan: LevelPlan, slot: GeneratorPlan, env: Env,
        sequence: list[XmlElement], seq_key: tuple,
        counter: Optional[PlanCounters],
    ) -> list[int]:
        """Ordinals (into ``sequence``) matching every join at this
        slot for the current environment, in document order."""
        matching: Optional[set[int]] = None
        for join in slot.eq_joins:
            table = self._eq_table(join, sequence, seq_key, counter)
            atoms = self._eval_atoms(join.probe_key, env)
            hits: set[int] = set()
            for atom in dict.fromkeys(atoms):
                if _is_nan(atom):
                    continue
                hits.update(table.get(atom, ()))
            matching = hits if matching is None else (matching & hits)
            if not matching:
                return []
        for join in slot.mem_joins:
            table = self._mem_table(join, sequence, seq_key, counter)
            hits = set()
            for member in self._eval(join.member, env):
                hits.update(table.get(id(member), ()))
            matching = hits if matching is None else (matching & hits)
            if not matching:
                return []
        if counter is not None:
            counter.join_probes += 1
            counter.join_probe_matches += len(matching or ())
        return sorted(matching or ())

    def _enumerate(self, mapping: TgdMapping, env: Env) -> list[Env]:
        plan = self.planned.level_for(mapping)
        counter = self._counter(mapping)
        if counter is not None:
            counter.invocations += 1
        for condition in plan.pre_conditions:
            if not self._condition_holds(condition, env):
                if counter is not None:
                    counter.filter_drops += 1
                return []
        track = plan.reordered
        states: list[tuple[Env, tuple[int, ...]]] = [(dict(env), ())]
        for slot in plan.slots:
            gen = mapping.source_gens[slot.position]
            joined = slot.eq_joins or slot.mem_joins
            expanded: list[tuple[Env, tuple[int, ...]]] = []
            for current, ordinals in states:
                seq_key, sequence = self._sequence(plan, slot, current, counter)
                if joined:
                    picks = self._probe(
                        plan, slot, current, sequence, seq_key, counter
                    )
                    candidates = [(o, sequence[o]) for o in picks]
                else:
                    candidates = list(enumerate(sequence))
                for ordinal, item in candidates:
                    child = dict(current)
                    child[gen.var] = item
                    if counter is not None:
                        counter.bindings_enumerated += 1
                    if slot.env_filters and not all(
                        self._condition_holds(c, child)
                        for c in slot.env_filters
                    ):
                        if counter is not None:
                            counter.filter_drops += 1
                        continue
                    expanded.append(
                        (child, ordinals + (ordinal,) if track else ())
                    )
            states = expanded
        if track and len(states) > 1:
            # Restore the naive nested-loop order: sort by ordinals in
            # *original* generator position order (lexicographic over
            # ordinals is exactly document order, see module docstring).
            slot_of = {
                slot.position: index for index, slot in enumerate(plan.slots)
            }
            positions = sorted(slot_of)
            states.sort(
                key=lambda state: tuple(
                    state[1][slot_of[p]] for p in positions
                )
            )
        envs = [state[0] for state in states]
        if plan.residual:  # pragma: no cover - classifier safety net
            kept = [
                e for e in envs
                if all(self._condition_holds(c, e) for c in plan.residual)
            ]
            if counter is not None:
                counter.filter_drops += len(envs) - len(kept)
            envs = kept
        if counter is not None:
            counter.envs_produced += len(envs)
        return envs

    def _run_grouped(self, mapping, envs, target_env):
        counter = self._counter(mapping)
        if counter is not None:
            before = len(self._groups)
            super()._run_grouped(mapping, envs, target_env)
            counter.groups += len(self._groups) - before
            return
        super()._run_grouped(mapping, envs, target_env)
