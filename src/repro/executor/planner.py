"""Join-aware compilation of nested tgds.

The naive engine (:mod:`repro.executor.engine`) evaluates each mapping
level by enumerating the full Cartesian product of its source
generators and filtering the result against the ``where`` conditions —
faithful to the paper's semantics, and quadratic (or worse) on the
join- and grouping-heavy mappings of Figures 6–8.  This module is the
optimizer pass that turns the same tgd into a *plan*:

* **condition classification** — each ``where`` condition is placed at
  the earliest generator after which all its variables are bound, and
  classified as an equality **hash join** (``p.@pid = r.@pid``), a
  **membership join** (``p2 ∈ d2.Proj``, keyed on node identity), a
  **pushed filter** (``r.sal.value > 11000``, applied during
  enumeration instead of after the product), or a residual filter;
* **selectivity reordering** — generators with pushed filters are
  moved ahead of unfiltered independent peers (dependencies
  respected); byte-identical output order is restored by tagging each
  binding with its document-order ordinal and sorting the surviving
  environments by the ordinals in original generator order;
* **loop-invariant caching** — a generator's item sequence depends
  only on the binding of the variable at the root of its expression,
  so sequences (and the hash tables built over them) are memoized per
  dependency binding: an inner generator that does not depend on the
  outer loop is evaluated once, not once per outer iteration.

The plan changes *evaluation cost only*: the environments a level
produces — their contents and their order — are exactly the naive
engine's, which the differential suite checks byte-for-byte against
the naive engine and the XQuery interpreter.  Correctness reference is
Koch's complex-value query semantics; the optimization playbook is the
standard one from the data-exchange line (Fagin et al.).

Per-level :class:`PlanCounters` (bindings enumerated, filter drops,
hash build/probe sizes) feed :mod:`repro.executor.stats` and the
``clip-plan-explain`` report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import Optional, Union

from ..core.tgd import (
    AggregateApp,
    Constant,
    FunctionApp,
    Membership,
    NestedTgd,
    Proj,
    SchemaRoot,
    SourceCondition,
    TgdComparison,
    TgdExpr,
    TgdMapping,
    Var,
    expr_labels,
    expr_root,
)
from ..errors import ExecutionError
from ..xml.index import DocumentIndex, index_for
from ..xml.model import XmlElement
from .engine import Env, GroupBinding, _Engine

#: Environment toggle: ``CLIP_OPTIMIZE=0`` (or ``false``/``no``/``off``)
#: makes the naive evaluation path the default — the CI leg that keeps
#: the naive engine honest runs the differential suite under it.
OPTIMIZE_ENV = "CLIP_OPTIMIZE"

_FALSY = ("0", "false", "no", "off")


def resolve_optimize(optimize: Optional[bool]) -> bool:
    """Resolve an ``optimize`` tri-state: explicit flag wins, ``None``
    falls back to the :data:`OPTIMIZE_ENV` environment default (on)."""
    if optimize is not None:
        return bool(optimize)
    return os.environ.get(OPTIMIZE_ENV, "1").strip().lower() not in _FALSY


# -- condition analysis ------------------------------------------------------


def _operand_var(operand: Union[TgdExpr, Constant]) -> Optional[str]:
    """The variable at the root of an operand's projection chain, or
    ``None`` for constants and schema-root-based expressions."""
    if isinstance(operand, Constant):
        return None
    root = expr_root(operand)
    return root.name if isinstance(root, Var) else None


def condition_vars(condition: SourceCondition) -> set[str]:
    """The variables a source condition references."""
    if isinstance(condition, Membership):
        operands = (condition.member, condition.collection)
    elif isinstance(condition, TgdComparison):
        operands = (condition.left, condition.right)
    else:
        raise ExecutionError(f"unsupported condition {condition!r}")
    return {v for v in (_operand_var(op) for op in operands) if v is not None}


@dataclass(frozen=True)
class EqualityJoin:
    """An equality condition executed as a build/probe hash join at the
    generator binding ``build_var``: the generator's (filtered) item
    sequence is hashed on ``build_key`` once per dependency context,
    and each outer environment probes it with ``probe_key``."""

    condition: TgdComparison
    build_var: str
    build_key: TgdExpr
    probe_key: Union[TgdExpr, Constant]

    def describe(self) -> dict:
        return {
            "kind": "equality",
            "condition": str(self.condition),
            "build": f"{self.build_key}",
            "probe": f"{self.probe_key}",
        }


@dataclass(frozen=True)
class MembershipJoin:
    """A membership condition (``member ∈ collection``) whose collection
    is rooted at the generator being bound: the union of the candidates'
    collections is hashed on node identity, and each outer environment
    probes it with its member elements."""

    condition: Membership
    build_var: str
    collection: TgdExpr
    member: TgdExpr

    def describe(self) -> dict:
        return {
            "kind": "membership",
            "condition": str(self.condition),
            "build": f"{self.collection}",
            "probe": f"{self.member}",
        }


@dataclass(frozen=True)
class GeneratorPlan:
    """One generator's slot in the planned evaluation order."""

    position: int  # index into mapping.source_gens
    #: Conditions over this generator's variable alone — applied while
    #: building the (memoized) item sequence.
    seq_filters: tuple[SourceCondition, ...] = ()
    #: Conditions needing this generator plus earlier/outer bindings
    #: that are not join-shaped — applied per candidate environment.
    env_filters: tuple[SourceCondition, ...] = ()
    eq_joins: tuple[EqualityJoin, ...] = ()
    mem_joins: tuple[MembershipJoin, ...] = ()


@dataclass(frozen=True)
class LevelPlan:
    """The compiled evaluation strategy for one mapping level."""

    mapping: TgdMapping
    label: str
    depth: int
    slots: tuple[GeneratorPlan, ...]  # in planned evaluation order
    #: Conditions over outer variables only — checked once per level entry.
    pre_conditions: tuple[SourceCondition, ...] = ()
    #: Safety net: conditions the classifier could not place (none for
    #: well-formed tgds) — applied after enumeration, like the naive path.
    residual: tuple[SourceCondition, ...] = ()
    reordered: bool = False
    #: The level's **source read-set**: every absolute label chain
    #: (relative to the source root, ``@name``/``value`` terminals
    #: included) that the level's generators, conditions, grouping
    #: attributes, or assignment values can read.  Computed by
    #: :func:`plan_tgd`, which threads variable bindings down the
    #: mapping tree; ``()`` for a bare :func:`plan_level` call.
    read_paths: tuple[tuple[str, ...], ...] = ()
    #: ``False`` when any read could not be resolved to an absolute
    #: chain — consumers must then treat the level as reading the
    #: whole document.
    reads_resolved: bool = True

    @property
    def order(self) -> tuple[int, ...]:
        return tuple(slot.position for slot in self.slots)

    def describe(self) -> dict:
        """Static plan description (no runtime counters)."""
        gens = self.mapping.source_gens
        return {
            "label": self.label,
            "depth": self.depth,
            "grouped": self.mapping.skolem is not None,
            "order": [gens[slot.position].var for slot in self.slots],
            "reordered": self.reordered,
            "pre_filters": [str(c) for c in self.pre_conditions],
            "generators": [
                {
                    "var": gens[slot.position].var,
                    "expr": str(gens[slot.position].expr),
                    "pushed_filters": [str(c) for c in slot.seq_filters],
                    "env_filters": [str(c) for c in slot.env_filters],
                    "joins": [j.describe() for j in slot.eq_joins]
                    + [j.describe() for j in slot.mem_joins],
                }
                for slot in self.slots
            ],
            "residual": [str(c) for c in self.residual],
            # Additive clip-plan-explain key (version unchanged):
            # renderers that predate it ignore unknown keys.
            "reads": {
                "resolved": self.reads_resolved,
                "paths": ["/".join(chain) for chain in self.read_paths],
            },
        }


def _level_label(mapping: TgdMapping) -> str:
    if mapping.source_gens:
        gens = ", ".join(f"{g.var} ∈ {g.expr}" for g in mapping.source_gens)
    else:
        gens = "⊤"
    return f"∀ {gens}"


def plan_level(mapping: TgdMapping, depth: int) -> LevelPlan:
    """Compile one mapping level: classify conditions, choose the
    evaluation order, attach joins and filters to generator slots."""
    gens = mapping.source_gens
    local_vars = {g.var: i for i, g in enumerate(gens)}

    # Dependencies: generator i needs generator j bound first when its
    # expression is rooted at j's variable.
    needs: dict[int, Optional[int]] = {}
    for i, gen in enumerate(gens):
        root = expr_root(gen.expr)
        needs[i] = (
            local_vars[root.name]
            if isinstance(root, Var) and root.name in local_vars
            and local_vars[root.name] != i
            else None
        )

    pre: list[SourceCondition] = []
    placeable: list[tuple[SourceCondition, set[str]]] = []
    for condition in mapping.where:
        names = condition_vars(condition) & set(local_vars)
        if not names:
            pre.append(condition)
        else:
            placeable.append((condition, names))

    # Single-variable filters drive the selectivity heuristic: a
    # generator whose candidates are pruned by its own filter goes
    # before unfiltered independent peers.
    own_filtered = {
        next(iter(names))
        for condition, names in placeable
        if len(names) == 1 and condition_vars(condition) == names
    }

    order: list[int] = []
    remaining = list(range(len(gens)))
    while remaining:
        ready = [
            i for i in remaining if needs[i] is None or needs[i] in order
        ]
        ready.sort(key=lambda i: (0 if gens[i].var in own_filtered else 1, i))
        pick = ready[0]
        order.append(pick)
        remaining.remove(pick)
    reordered = order != sorted(order)

    bound_at: dict[str, int] = {}  # var → position in planned order
    for slot_index, position in enumerate(order):
        bound_at[gens[position].var] = slot_index

    seq_filters: dict[int, list[SourceCondition]] = {i: [] for i in order}
    env_filters: dict[int, list[SourceCondition]] = {i: [] for i in order}
    eq_joins: dict[int, list[EqualityJoin]] = {i: [] for i in order}
    mem_joins: dict[int, list[MembershipJoin]] = {i: [] for i in order}
    residual: list[SourceCondition] = []

    for condition, names in placeable:
        anchor_slot = max(bound_at[name] for name in names)
        position = order[anchor_slot]
        anchor_var = gens[position].var
        all_vars = condition_vars(condition)
        if all_vars == {anchor_var}:
            seq_filters[position].append(condition)
            continue
        earlier = all_vars - {anchor_var}
        if isinstance(condition, TgdComparison) and condition.op == "=":
            left_var = _operand_var(condition.left)
            right_var = _operand_var(condition.right)
            if left_var == anchor_var and right_var != anchor_var:
                eq_joins[position].append(
                    EqualityJoin(condition, anchor_var,
                                 condition.left, condition.right)
                )
                continue
            if right_var == anchor_var and left_var != anchor_var:
                eq_joins[position].append(
                    EqualityJoin(condition, anchor_var,
                                 condition.right, condition.left)
                )
                continue
        if isinstance(condition, Membership):
            collection_var = _operand_var(condition.collection)
            member_var = _operand_var(condition.member)
            if collection_var == anchor_var and member_var != anchor_var:
                mem_joins[position].append(
                    MembershipJoin(condition, anchor_var,
                                   condition.collection, condition.member)
                )
                continue
        if earlier or anchor_var in all_vars:
            env_filters[position].append(condition)
        else:  # pragma: no cover - classifier safety net
            residual.append(condition)

    slots = tuple(
        GeneratorPlan(
            position=position,
            seq_filters=tuple(seq_filters[position]),
            env_filters=tuple(env_filters[position]),
            eq_joins=tuple(eq_joins[position]),
            mem_joins=tuple(mem_joins[position]),
        )
        for position in order
    )
    return LevelPlan(
        mapping=mapping,
        label=_level_label(mapping),
        depth=depth,
        slots=slots,
        pre_conditions=tuple(pre),
        residual=tuple(residual),
        reordered=reordered,
    )


# -- source read-sets --------------------------------------------------------

#: Variable → the absolute label chains its bindings come from, or
#: ``None`` when the chains could not be resolved.
_VarChains = dict[str, Optional[frozenset[tuple[str, ...]]]]


def _term_exprs(term) -> list[TgdExpr]:
    """The source expressions a term reads (constants read nothing)."""
    if isinstance(term, FunctionApp):
        return [expr for arg in term.args for expr in _term_exprs(arg)]
    if isinstance(term, AggregateApp):
        return [term.arg]
    if isinstance(term, Constant):
        return []
    return [term]


def _collect_level_reads(
    mapping: TgdMapping, var_chains: _VarChains
) -> tuple[frozenset[tuple[str, ...]], bool]:
    """One level's source read-set, as absolute label chains.

    ``var_chains`` maps outer variables to the chains their bindings
    come from; this level's generator variables are added to it (so the
    caller can thread it into submappings).  Returns the chains plus a
    resolution flag — ``False`` means some read could not be anchored
    to the source root, and the level must be treated as reading
    everything.
    """
    chains: set[tuple[str, ...]] = set()
    resolved = True

    def expr_chains(expr: TgdExpr) -> Optional[frozenset[tuple[str, ...]]]:
        nonlocal resolved
        root = expr_root(expr)
        labels = tuple(expr_labels(expr))
        if isinstance(root, SchemaRoot):
            return frozenset({labels})
        if isinstance(root, Var):
            bases = var_chains.get(root.name)
            if bases is not None:
                return frozenset(base + labels for base in bases)
        resolved = False
        return None

    def add(expr: TgdExpr, *, atomic: bool = False) -> None:
        found = expr_chains(expr)
        if found is None:
            return
        chains.update(found)
        if atomic:
            # Atomic consumption (_eval_atoms) reads the *text* of
            # element operands, so a chain ending at an element also
            # reads one step deeper than the chain spells out.
            for chain in found:
                if not chain or not (
                    chain[-1] == "value" or chain[-1].startswith("@")
                ):
                    chains.add(chain + ("value",))

    for gen in mapping.source_gens:
        gen_chains = expr_chains(gen.expr)
        if gen_chains is not None:
            chains.update(gen_chains)
        var_chains[gen.var] = gen_chains
    for condition in mapping.where:
        if isinstance(condition, Membership):
            # Identity/node-set reads: the member and collection chains
            # themselves, no implicit text read.
            for operand in (condition.member, condition.collection):
                if not isinstance(operand, Constant):
                    add(operand)
        elif isinstance(condition, TgdComparison):
            for operand in (condition.left, condition.right):
                if not isinstance(operand, Constant):
                    add(operand, atomic=True)
    if mapping.skolem is not None:
        for attr in mapping.skolem[1].attrs:
            add(attr, atomic=True)
    for assignment in mapping.assignments:
        for expr in _term_exprs(assignment.value):
            add(expr, atomic=True)
    return frozenset(chains), resolved


@dataclass(frozen=True)
class PlannedTgd:
    """Every level of a nested tgd, compiled."""

    tgd: NestedTgd
    levels: tuple[LevelPlan, ...]

    def level_for(self, mapping: TgdMapping) -> "LevelPlan":
        return self._by_id[id(mapping)]

    def __post_init__(self):
        object.__setattr__(
            self, "_by_id", {id(plan.mapping): plan for plan in self.levels}
        )

    def describe(self) -> dict:
        return {"levels": [plan.describe() for plan in self.levels]}


def plan_tgd(tgd: NestedTgd) -> PlannedTgd:
    """Compile every level of a nested tgd into a :class:`PlannedTgd`,
    annotating each with its source read-set (variable chains are
    threaded down the mapping tree, so an inner level's reads resolve
    through its outer generators)."""
    levels: list[LevelPlan] = []

    def walk(mapping: TgdMapping, depth: int, outer: _VarChains) -> None:
        scope: _VarChains = dict(outer)
        reads, resolved = _collect_level_reads(mapping, scope)
        levels.append(replace(
            plan_level(mapping, depth),
            read_paths=tuple(sorted(reads)),
            reads_resolved=resolved,
        ))
        for sub in mapping.submappings:
            walk(sub, depth + 1, scope)

    for root in tgd.roots:
        walk(root, 0, {})
    return PlannedTgd(tgd, tuple(levels))


# -- runtime counters --------------------------------------------------------


@dataclass
class PlanCounters:
    """Runtime counters for one level of an optimized evaluation."""

    invocations: int = 0
    #: Candidate bindings materialized (the naive engine's "iterations").
    bindings_enumerated: int = 0
    #: Environments surviving every condition.
    envs_produced: int = 0
    #: Candidates dropped by pushed/env/pre/residual filters.
    filter_drops: int = 0
    join_builds: int = 0
    join_build_rows: int = 0
    join_build_keys: int = 0
    join_probes: int = 0
    join_probe_matches: int = 0
    groups: int = 0
    seq_cache_hits: int = 0
    seq_cache_misses: int = 0

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def add(self, other: "PlanCounters") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def diff(self, earlier: "PlanCounters") -> "PlanCounters":
        out = PlanCounters()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name) - getattr(earlier, f.name))
        return out

    def snapshot(self) -> "PlanCounters":
        out = PlanCounters()
        out.add(self)
        return out


@dataclass
class PlanStats:
    """Per-level counters for a whole planned tgd, aggregated across
    however many documents the plan has evaluated."""

    planned: PlannedTgd
    counters: list[PlanCounters] = field(default_factory=list)

    def __post_init__(self):
        if not self.counters:
            self.counters = [PlanCounters() for _ in self.planned.levels]

    def counter_for(self, mapping: TgdMapping) -> PlanCounters:
        for plan, counter in zip(self.planned.levels, self.counters):
            if plan.mapping is mapping:
                return counter
        raise KeyError("mapping is not a level of this plan")

    def snapshot(self) -> list[PlanCounters]:
        return [counter.snapshot() for counter in self.counters]

    def diff(self, earlier: list[PlanCounters]) -> list[PlanCounters]:
        return [
            counter.diff(before)
            for counter, before in zip(self.counters, earlier)
        ]


# -- optimized evaluation ----------------------------------------------------

_NO_DEP = object()


def _is_nan(value) -> bool:
    return isinstance(value, float) and value != value


def _value_chains(chain: tuple[str, ...]) -> set[tuple[str, ...]]:
    """The chain plus its implicit ``value`` terminal (atoms of an
    element read come from its text node)."""
    if chain and (chain[-1] == "value" or chain[-1].startswith("@")):
        return {chain}
    return {chain, chain + ("value",)}


class PlanMemo:
    """Document-scoped memo entries shared across engines over one
    (logically maintained) document.

    A fresh :class:`_OptimizedEngine` memoizes generator sequences, join
    hash tables and loop-invariant atom evaluations per run; entries
    keyed off the schema root depend only on the document, not on any
    binding, so an owner that keeps the document alive can carry them
    across engines.  The incremental session
    (:class:`repro.runtime.incremental.IncrementalSession`) does exactly
    that: it maintains one source tree across deltas, and because
    in-place delta application preserves node identities, an entry
    stays valid until an edit lands on one of the label chains it was
    computed from.  :meth:`invalidate` takes the touched chains split
    by kind (see :meth:`repro.xml.diff.Delta.tag_paths_by_kind`):
    structural chains drop entries related by prefix in either
    direction — the conservative test that covers node-set reads (edits
    at or above the chain change the population) and value reads (edits
    below change the values) — while value chains, which name the exact
    leaf position a mutation rewrote, drop only entries that read that
    very chain, so a text edit leaves the node-set caches above it
    intact.
    """

    __slots__ = ("_entries", "_pins")

    def __init__(self) -> None:
        # key → (value, chains); keys are the engines' id()-based memo
        # keys, valid while the pinned owners below stay alive.
        self._entries: dict = {}
        # Strong refs to the plan/tgd objects whose id()s appear in
        # keys, and implicitly (via values) to the document's nodes.
        self._pins: list = []

    def __len__(self) -> int:
        return len(self._entries)

    def pin(self, owner: object) -> None:
        self._pins.append(owner)

    def get(self, key):
        found = self._entries.get(key)
        return None if found is None else found[0]

    def put(self, key, value, chains) -> None:
        self._entries[key] = (value, frozenset(chains))

    def invalidate(self, value_chains, structural_chains) -> int:
        """Drop every entry the touched label chains could have
        changed; returns how many entries were dropped.

        ``value_chains`` are leaf positions rewritten by mutations
        (``…/@attr`` or ``…/value``): entries stored their value-read
        chains in that same normal form, so exact membership is the
        complete test.  ``structural_chains`` mark subtree
        replacements: prefix intersection in either direction.
        """
        if not self._entries or not (value_chains or structural_chains):
            return 0
        dead = [
            key
            for key, (_, chains) in self._entries.items()
            if any(
                c in value_chains
                or any(
                    t[: len(c)] == c or c[: len(t)] == t
                    for t in structural_chains
                )
                for c in chains
            )
        ]
        for key in dead:
            del self._entries[key]
        return len(dead)

    def clear(self) -> None:
        self._entries.clear()
        self._pins.clear()


class _OptimizedEngine(_Engine):
    """The tgd engine evaluated through a :class:`PlannedTgd`.

    Inherits every piece of the naive engine's target-side machinery —
    element construction, wrappers, grouping Skolems, assignments — and
    replaces source-side enumeration with the planned strategy.  The
    environments produced per level are identical, in content and
    order, to :meth:`_Engine._enumerate`.
    """

    def __init__(
        self,
        tgd: NestedTgd,
        source_instance: XmlElement,
        planned: PlannedTgd,
        *,
        ordered=None,
        index: Optional[DocumentIndex] = None,
        stats: Optional[PlanStats] = None,
        shared_memo: Optional[PlanMemo] = None,
    ):
        super().__init__(tgd, source_instance, ordered=ordered)
        self.planned = planned
        self.index = index if index is not None else index_for(source_instance)
        self.stats = stats
        # (id(level mapping), position, dep key) → filtered item list.
        self._sequences: dict[tuple, list[XmlElement]] = {}
        # (id(join), dep key) → hash table.
        self._tables: dict[tuple, dict] = {}
        # (id(expr), dep key) → atoms (loop-invariant atom evaluation).
        self._atoms: dict[tuple, list] = {}
        # Strong refs to every binding a memo key's id() points at:
        # GroupBindings are engine-created and otherwise collectable
        # mid-run, and a recycled id would alias a stale memo entry.
        self._pins: list = []
        # Document-scoped entries (dep key ``_NO_DEP``) optionally live
        # in a caller-owned PlanMemo so they outlive this engine; the
        # label chains of shared sequences, needed to tag the tables
        # built over them, are tracked per sequence key.
        self.shared_memo = shared_memo
        self._shared_seqs: dict[tuple, tuple[str, ...]] = {}
        if shared_memo is not None:
            shared_memo.pin(tgd)
            shared_memo.pin(planned)

    # -- indexed navigation ---------------------------------------------

    def _eval(self, expr, env):
        """The naive evaluator with child steps served by the document
        index (same elements, same order — ``children(tag)`` is an
        indexed ``findall``)."""
        if isinstance(expr, SchemaRoot):
            return [self.source]
        if isinstance(expr, Var):
            try:
                binding = env[expr.name]
            except KeyError:
                raise ExecutionError(f"unbound variable {expr.name!r}") from None
            if isinstance(binding, GroupBinding):
                return list(binding.members)
            return [binding]
        assert isinstance(expr, Proj)
        base_items = self._eval(expr.base, env)
        label = expr.label
        out: list = []
        index = self.index
        for item in base_items:
            if not isinstance(item, XmlElement):
                raise ExecutionError(
                    f"projection .{label} applied to atomic value {item!r}"
                )
            if label.startswith("@"):
                if item.has_attribute(label[1:]):
                    out.append(item.attribute(label[1:]))
            elif label == "value":
                if item.text is not None:
                    out.append(item.text)
            else:
                out.extend(index.children(item, label))
        return out

    def _dep_binding(self, expr: TgdExpr, env: Env):
        """The binding the value of ``expr`` depends on in ``env`` — the
        object at the root of the projection chain.  ``_NO_DEP`` for
        schema-root-based expressions (which depend only on the source
        document), ``None`` when the root variable is unbound (let
        ``_eval`` raise the proper error)."""
        root = expr_root(expr)
        if isinstance(root, Var):
            return env.get(root.name)
        return _NO_DEP

    @staticmethod
    def _key_of(dep) -> object:
        return _NO_DEP if dep is _NO_DEP else id(dep)

    def _eval_atoms(self, operand, env):
        """Atom evaluation with loop-invariant memoization: an operand's
        atoms depend only on its root binding, so repeated evaluations
        against the same binding (grouping keys, probe keys) are hits."""
        if isinstance(operand, Constant):
            return [operand.value]
        dep = self._dep_binding(operand, env)
        if dep is None:
            return super()._eval_atoms(operand, env)
        key = (id(operand), self._key_of(dep))
        if dep is _NO_DEP and self.shared_memo is not None:
            memo = self.shared_memo
            found = memo.get(key)
            if found is None:
                found = super()._eval_atoms(operand, env)
                memo.put(key, found, _value_chains(tuple(expr_labels(operand))))
            return found
        found = self._atoms.get(key)
        if found is None:
            found = super()._eval_atoms(operand, env)
            self._atoms[key] = found
            if dep is not _NO_DEP:
                self._pins.append(dep)
        return found

    # -- planned enumeration ---------------------------------------------

    def _table_chains(
        self, seq_key: tuple, build_var: str, key_expr: TgdExpr, *,
        atomic: bool,
    ) -> Optional[set[tuple[str, ...]]]:
        """The absolute label chains a join table over a *shared*
        sequence depends on (sequence population plus per-item key
        reads), or ``None`` when the table must stay engine-local —
        the sequence itself is local, or the key is not rooted at the
        build variable.  Sharing a table requires its chain set to
        cover the sequence's, so both invalidate together."""
        seq_chain = self._shared_seqs.get(seq_key)
        if seq_chain is None:
            return None
        root = expr_root(key_expr)
        if not (isinstance(root, Var) and root.name == build_var):
            return None
        key_chain = seq_chain + tuple(expr_labels(key_expr))
        chains = {seq_chain}
        chains.update(_value_chains(key_chain) if atomic else {key_chain})
        return chains

    def _counter(self, mapping: TgdMapping) -> Optional[PlanCounters]:
        if self.stats is None:
            return None
        return self.stats.counter_for(mapping)

    def _sequence(
        self, plan: LevelPlan, slot: GeneratorPlan, env: Env,
        counter: Optional[PlanCounters],
    ) -> tuple[tuple, list[XmlElement]]:
        """The generator's candidate items for this environment —
        evaluated, element-checked, pushed-filtered, and memoized per
        dependency binding.  Returns ``(memo key, items)``; the key also
        scopes the join tables built over the sequence."""
        gen = plan.mapping.source_gens[slot.position]
        dep = self._dep_binding(gen.expr, env)
        key = (id(plan.mapping), slot.position, self._key_of(dep))
        # A document-scoped, filter-free sequence depends only on its
        # label chain — shareable across engines via the plan memo.
        # Pushed filters read values the chain tag would not cover, so
        # filtered sequences stay engine-local.
        shared = (
            self.shared_memo is not None
            and dep is _NO_DEP
            and not slot.seq_filters
        )
        if shared:
            seq_chain = tuple(expr_labels(gen.expr))
            self._shared_seqs[key] = seq_chain
            found = self.shared_memo.get(key)
        else:
            found = self._sequences.get(key)
        if found is not None:
            if counter is not None:
                counter.seq_cache_hits += 1
            return key, found
        if counter is not None:
            counter.seq_cache_misses += 1
        items = self._eval(gen.expr, env)
        out: list[XmlElement] = []
        probe = {}
        for item in items:
            if not isinstance(item, XmlElement):
                raise ExecutionError(
                    f"generator {gen} iterates atomic value {item!r}"
                )
            if slot.seq_filters:
                probe[gen.var] = item
                if not all(
                    self._condition_holds(c, probe) for c in slot.seq_filters
                ):
                    if counter is not None:
                        counter.filter_drops += 1
                    continue
            out.append(item)
        if shared:
            self.shared_memo.put(key, out, {seq_chain})
        else:
            self._sequences[key] = out
            if dep is not None and dep is not _NO_DEP:
                self._pins.append(dep)
        return key, out

    def _eq_table(
        self, join: EqualityJoin, sequence: list[XmlElement], seq_key: tuple,
        counter: Optional[PlanCounters],
    ) -> dict:
        """``atom → [ordinals]`` over the generator's candidate
        sequence, memoized per dependency context."""
        key = (id(join), seq_key)
        chains = self._table_chains(
            seq_key, join.build_var, join.build_key, atomic=True
        )
        memo = self._tables if chains is None else self.shared_memo
        table = memo.get(key)
        if table is not None:
            return table
        table = {}
        probe = {}
        eval_atoms = super()._eval_atoms  # each item hit once: skip memo
        for ordinal, item in enumerate(sequence):
            probe[join.build_var] = item
            atoms = eval_atoms(join.build_key, probe)
            for atom in dict.fromkeys(atoms):
                if _is_nan(atom):
                    continue  # NaN never compares equal
                table.setdefault(atom, []).append(ordinal)
        if chains is None:
            self._tables[key] = table
        else:
            self.shared_memo.put(key, table, chains)
        if counter is not None:
            counter.join_builds += 1
            counter.join_build_rows += len(sequence)
            counter.join_build_keys += len(table)
        return table

    def _mem_table(
        self, join: MembershipJoin, sequence: list[XmlElement], seq_key: tuple,
        counter: Optional[PlanCounters],
    ) -> dict:
        """``id(collection element) → [ordinals]`` over the candidates'
        collections, memoized per dependency context.  Keyed on node
        identity, so a cross-engine shared entry is only sound for a
        document maintained in place (identities persist outside the
        invalidated chains)."""
        key = (id(join), seq_key)
        chains = self._table_chains(
            seq_key, join.build_var, join.collection, atomic=False
        )
        memo = self._tables if chains is None else self.shared_memo
        table = memo.get(key)
        if table is not None:
            return table
        table = {}
        probe = {}
        for ordinal, item in enumerate(sequence):
            probe[join.build_var] = item
            for member in self._eval(join.collection, probe):
                bucket = table.setdefault(id(member), [])
                if not bucket or bucket[-1] != ordinal:
                    bucket.append(ordinal)
        if chains is None:
            self._tables[key] = table
        else:
            self.shared_memo.put(key, table, chains)
        if counter is not None:
            counter.join_builds += 1
            counter.join_build_rows += len(sequence)
            counter.join_build_keys += len(table)
        return table

    def _probe(
        self, plan: LevelPlan, slot: GeneratorPlan, env: Env,
        sequence: list[XmlElement], seq_key: tuple,
        counter: Optional[PlanCounters],
    ) -> list[int]:
        """Ordinals (into ``sequence``) matching every join at this
        slot for the current environment, in document order."""
        matching: Optional[set[int]] = None
        for join in slot.eq_joins:
            table = self._eq_table(join, sequence, seq_key, counter)
            atoms = self._eval_atoms(join.probe_key, env)
            hits: set[int] = set()
            for atom in dict.fromkeys(atoms):
                if _is_nan(atom):
                    continue
                hits.update(table.get(atom, ()))
            matching = hits if matching is None else (matching & hits)
            if not matching:
                return []
        for join in slot.mem_joins:
            table = self._mem_table(join, sequence, seq_key, counter)
            hits = set()
            for member in self._eval(join.member, env):
                hits.update(table.get(id(member), ()))
            matching = hits if matching is None else (matching & hits)
            if not matching:
                return []
        if counter is not None:
            counter.join_probes += 1
            counter.join_probe_matches += len(matching or ())
        return sorted(matching or ())

    def _enumerate(self, mapping: TgdMapping, env: Env) -> list[Env]:
        plan = self.planned.level_for(mapping)
        counter = self._counter(mapping)
        if counter is not None:
            counter.invocations += 1
        for condition in plan.pre_conditions:
            if not self._condition_holds(condition, env):
                if counter is not None:
                    counter.filter_drops += 1
                return []
        track = plan.reordered
        states: list[tuple[Env, tuple[int, ...]]] = [(dict(env), ())]
        for slot in plan.slots:
            gen = mapping.source_gens[slot.position]
            joined = slot.eq_joins or slot.mem_joins
            expanded: list[tuple[Env, tuple[int, ...]]] = []
            for current, ordinals in states:
                seq_key, sequence = self._sequence(plan, slot, current, counter)
                if joined:
                    picks = self._probe(
                        plan, slot, current, sequence, seq_key, counter
                    )
                    candidates = [(o, sequence[o]) for o in picks]
                else:
                    candidates = list(enumerate(sequence))
                for ordinal, item in candidates:
                    child = dict(current)
                    child[gen.var] = item
                    if counter is not None:
                        counter.bindings_enumerated += 1
                    if slot.env_filters and not all(
                        self._condition_holds(c, child)
                        for c in slot.env_filters
                    ):
                        if counter is not None:
                            counter.filter_drops += 1
                        continue
                    expanded.append(
                        (child, ordinals + (ordinal,) if track else ())
                    )
            states = expanded
        if track and len(states) > 1:
            # Restore the naive nested-loop order: sort by ordinals in
            # *original* generator position order (lexicographic over
            # ordinals is exactly document order, see module docstring).
            slot_of = {
                slot.position: index for index, slot in enumerate(plan.slots)
            }
            positions = sorted(slot_of)
            states.sort(
                key=lambda state: tuple(
                    state[1][slot_of[p]] for p in positions
                )
            )
        envs = [state[0] for state in states]
        if plan.residual:  # pragma: no cover - classifier safety net
            kept = [
                e for e in envs
                if all(self._condition_holds(c, e) for c in plan.residual)
            ]
            if counter is not None:
                counter.filter_drops += len(envs) - len(kept)
            envs = kept
        if counter is not None:
            counter.envs_produced += len(envs)
        return envs

    def _run_grouped(self, mapping, envs, target_env):
        counter = self._counter(mapping)
        if counter is not None:
            before = len(self._groups)
            super()._run_grouped(mapping, envs, target_env)
            counter.groups += len(self._groups) - before
            return
        super()._run_grouped(mapping, envs, target_env)
