"""Direct tgd execution engine, with an instrumented explain mode."""

from .engine import GroupBinding, execute
from .stats import ExecutionReport, LevelStats, explain

__all__ = ["execute", "GroupBinding", "explain", "ExecutionReport", "LevelStats"]
