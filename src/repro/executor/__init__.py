"""Direct tgd execution engine, with join-aware plan compilation and
instrumented explain modes."""

from .engine import GroupBinding, TgdPlan, execute, prepare
from .planner import (
    OPTIMIZE_ENV,
    PlanCounters,
    PlannedTgd,
    PlanStats,
    plan_tgd,
    resolve_optimize,
)
from .stats import (
    ExecutionReport,
    LevelStats,
    PlanExplain,
    explain,
    explain_plan,
)

__all__ = [
    "execute",
    "prepare",
    "TgdPlan",
    "GroupBinding",
    "explain",
    "explain_plan",
    "ExecutionReport",
    "LevelStats",
    "PlanExplain",
    "OPTIMIZE_ENV",
    "PlanCounters",
    "PlannedTgd",
    "PlanStats",
    "plan_tgd",
    "resolve_optimize",
]
