"""Direct tgd execution engine, with an instrumented explain mode."""

from .engine import GroupBinding, TgdPlan, execute, prepare
from .stats import ExecutionReport, LevelStats, explain

__all__ = [
    "execute",
    "prepare",
    "TgdPlan",
    "GroupBinding",
    "explain",
    "ExecutionReport",
    "LevelStats",
]
