"""Pretty-print XQuery ASTs as query text.

The output follows the formatting of the paper's Section VI listings:
FLWOR clauses on their own lines, direct constructors with computed
attributes as ``name="{expr}"``, and paths printed from the source
root's element name (``source/dept/Proj``).
"""

from __future__ import annotations

from ..errors import XQueryError
from .ast import (
    AndExpr,
    ArithExpr,
    BoolLit,
    ComparisonExpr,
    DocRoot,
    ElementCtor,
    Expr,
    Flwor,
    ForClause,
    FunctionCall,
    IsExpr,
    LetClause,
    NumberLit,
    PathExpr,
    SequenceExpr,
    SomeExpr,
    StringLit,
    VarRef,
    WhereClause,
)

_INDENT = "  "


def serialize(expr: Expr) -> str:
    """Serialize an XQuery expression to query text."""
    lines = _serialize(expr, 0)
    return "\n".join(lines)


def _inline(expr: Expr) -> str:
    """Single-line rendering, used inside attribute values and conditions."""
    if isinstance(expr, StringLit):
        escaped = expr.value.replace('"', '""')
        return f'"{escaped}"'
    if isinstance(expr, NumberLit):
        return str(expr.value)
    if isinstance(expr, BoolLit):
        return "true()" if expr.value else "false()"
    if isinstance(expr, VarRef):
        return f"${expr.name}"
    if isinstance(expr, DocRoot):
        return ""
    if isinstance(expr, PathExpr):
        base = _inline(expr.base)
        steps = "/".join(str(step) for step in expr.steps)
        if not base:
            return steps
        return f"{base}/{steps}" if steps else base
    if isinstance(expr, SequenceExpr):
        return "(" + ", ".join(_inline(item) for item in expr.items) + ")"
    if isinstance(expr, ComparisonExpr):
        return f"{_inline(expr.left)} {expr.op} {_inline(expr.right)}"
    if isinstance(expr, AndExpr):
        return " and ".join(_inline(item) for item in expr.items)
    if isinstance(expr, SomeExpr):
        return (
            f"some ${expr.var} in {_inline(expr.collection)} "
            f"satisfies {_inline(expr.condition)}"
        )
    if isinstance(expr, IsExpr):
        return f"{_inline(expr.left)} is {_inline(expr.right)}"
    if isinstance(expr, FunctionCall):
        args = ", ".join(_inline(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ArithExpr):
        return f"({_inline(expr.left)} {expr.op} {_inline(expr.right)})"
    if isinstance(expr, Flwor):
        return " ".join(_serialize(expr, 0))
    if isinstance(expr, ElementCtor):
        return " ".join(_serialize(expr, 0))
    raise XQueryError(f"cannot serialize expression {expr!r}")


def _serialize(expr: Expr, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(expr, Flwor):
        lines: list[str] = []
        for clause in expr.clauses:
            if isinstance(clause, ForClause):
                lines.append(f"{pad}for ${clause.var} in {_inline(clause.expr)}")
            elif isinstance(clause, LetClause):
                value = clause.expr
                if isinstance(value, Flwor):
                    inner = _serialize(value, depth + 1)
                    lines.append(f"{pad}let ${clause.var} := (")
                    lines.extend(inner)
                    lines.append(f"{pad})")
                else:
                    lines.append(f"{pad}let ${clause.var} := {_inline(value)}")
            elif isinstance(clause, WhereClause):
                lines.append(f"{pad}where {_inline(clause.expr)}")
        ret = expr.return_expr
        if isinstance(ret, (ElementCtor, Flwor, SequenceExpr)):
            lines.append(f"{pad}return")
            lines.extend(_serialize(ret, depth + 1))
        else:
            lines.append(f"{pad}return {_inline(ret)}")
        return lines
    if isinstance(expr, ElementCtor):
        attrs = "".join(
            f' {a.name}="{{{_inline(a.expr)}}}"' for a in expr.attributes
        )
        if not expr.children:
            return [f"{pad}<{expr.tag}{attrs}/>"]
        lines = [f"{pad}<{expr.tag}{attrs}> {{"]
        for index, child in enumerate(expr.children):
            if index:
                last = lines.pop()
                lines.append(last + ",")
            lines.extend(_serialize(child, depth + 1))
        lines.append(f"{pad}}} </{expr.tag}>")
        return lines
    if isinstance(expr, SequenceExpr):
        lines = [f"{pad}("]
        for index, item in enumerate(expr.items):
            if index:
                last = lines.pop()
                lines.append(last + ",")
            lines.extend(_serialize(item, depth + 1))
        lines.append(f"{pad})")
        return lines
    return [pad + _inline(expr)]
