"""An interpreter for the emitted XQuery subset.

The paper assumes an external XQuery processor runs the generated
queries; this interpreter plays that role offline.  It implements the
XQuery 1.0 semantics the Section VI translation relies on:

* FLWOR tuple streams (``for`` iterates, ``let`` binds whole sequences,
  ``where`` filters by effective boolean value);
* path navigation with document-order results;
* general comparisons (existential over atomized operands);
* ``some $x in … satisfies`` with node-identity ``is``;
* direct element constructors — attribute values atomize, an
  empty-sequence attribute value omits the attribute, and content
  sequences keep construction order;
* ``distinct-values`` (first-occurrence order, which makes the grouping
  template deterministic), ``count``, ``avg``, ``sum``, ``min``,
  ``max``, ``concat``, ``exists``.

Evaluating the same tgd through this interpreter and through the direct
executor and comparing the instances is the reproduction's central
cross-check.
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import XQueryError, XQueryTypeError
from ..xml.index import DocumentIndex, index_for
from ..xml.model import AtomicValue, XmlElement
from .ast import (
    AndExpr,
    ArithExpr,
    AttrStep,
    BoolLit,
    ChildStep,
    ComparisonExpr,
    DocRoot,
    ElementCtor,
    Expr,
    Flwor,
    ForClause,
    FunctionCall,
    IsExpr,
    LetClause,
    NumberLit,
    PathExpr,
    SequenceExpr,
    SomeExpr,
    StringLit,
    VarRef,
    WhereClause,
)

Item = Union[XmlElement, AtomicValue]
Sequence_ = list  # XQuery sequences are flat lists of items
Env = dict[str, Sequence_]


def evaluate_query(
    expr: Expr,
    source_root: XmlElement,
    *,
    index: Optional[DocumentIndex] = None,
    trace=None,
) -> list[Item]:
    """Evaluate a query against a source instance; returns the result
    sequence (typically a single constructed element).

    ``index`` is the per-document navigation index to serve child steps
    from; by default the shared :func:`repro.xml.index.index_for` index
    of the source root is used (and thus reused across queries against
    the same document).

    ``trace`` (a :class:`repro.runtime.trace.SpanTracer`) records an
    ``eval`` span around the evaluation, with one child span per
    top-level FLWOR and deterministic interpreter counters (FLWOR
    evaluations, elements constructed) as attributes.  The untraced
    path runs the plain interpreter — zero added work.
    """
    if trace:
        interp = _TracingInterpreter(source_root, index=index, trace=trace)
        span = trace.begin("eval")
        try:
            result = interp.eval(expr, {})
        except Exception:
            span.attrs["status"] = "error"
            span.attrs.update(interp.counters)
            trace.end(span)
            raise
        span.attrs["status"] = "ok"
        span.attrs.update(interp.counters)
        trace.end(span)
        return result
    interp = _Interpreter(source_root, index=index)
    return interp.eval(expr, {})


def run_query(
    expr: Expr,
    source_root: XmlElement,
    *,
    index: Optional[DocumentIndex] = None,
    trace=None,
) -> XmlElement:
    """Evaluate a query expected to construct exactly one element."""
    result = evaluate_query(expr, source_root, index=index, trace=trace)
    elements = [item for item in result if isinstance(item, XmlElement)]
    if len(elements) != 1:
        raise XQueryError(
            f"query produced {len(elements)} root elements, expected exactly 1"
        )
    return elements[0]


class _Interpreter:
    def __init__(
        self,
        source_root: XmlElement,
        *,
        index: Optional[DocumentIndex] = None,
    ):
        self.source_root = source_root
        self.index = index if index is not None else index_for(source_root)
        # Root-based paths are loop-invariant (the document never
        # changes during a query): id(path expr) → result sequence.
        # The grouping template re-walks the same root path once per
        # distinct group; with the memo that is one walk per query.
        self._root_paths: dict[int, Sequence_] = {}

    # -- dispatch -------------------------------------------------------

    def eval(self, expr: Expr, env: Env) -> Sequence_:
        if isinstance(expr, StringLit):
            return [expr.value]
        if isinstance(expr, NumberLit):
            return [expr.value]
        if isinstance(expr, BoolLit):
            return [expr.value]
        if isinstance(expr, VarRef):
            try:
                return list(env[expr.name])
            except KeyError:
                raise XQueryError(f"unbound variable ${expr.name}") from None
        if isinstance(expr, DocRoot):
            return [self.source_root]
        if isinstance(expr, PathExpr):
            return self._eval_path(expr, env)
        if isinstance(expr, SequenceExpr):
            out: Sequence_ = []
            for item in expr.items:
                out.extend(self.eval(item, env))
            return out
        if isinstance(expr, ComparisonExpr):
            return [self._compare(expr, env)]
        if isinstance(expr, AndExpr):
            return [all(self._ebv(self.eval(i, env)) for i in expr.items)]
        if isinstance(expr, SomeExpr):
            return [self._some(expr, env)]
        if isinstance(expr, IsExpr):
            return [self._is(expr, env)]
        if isinstance(expr, FunctionCall):
            return self._call(expr, env)
        if isinstance(expr, ArithExpr):
            return [self._arith(expr, env)]
        if isinstance(expr, Flwor):
            return self._flwor(expr, env)
        if isinstance(expr, ElementCtor):
            return [self._construct(expr, env)]
        raise XQueryError(f"unsupported expression {expr!r}")

    # -- paths ------------------------------------------------------------

    def _eval_path(self, expr: PathExpr, env: Env) -> Sequence_:
        if isinstance(expr.base, DocRoot):
            # Root-based paths depend only on the document: memoized.
            found = self._root_paths.get(id(expr))
            if found is not None:
                return list(found)
            # Paths are printed from the root element name, so the first
            # child step must match the document's root element.
            current: Sequence_ = [self.source_root]
            steps = list(expr.steps)
            if steps and isinstance(steps[0], ChildStep):
                first = steps.pop(0)
                if first.tag != self.source_root.tag:
                    self._root_paths[id(expr)] = []
                    return []
            result = self._walk_steps(steps, current)
            self._root_paths[id(expr)] = result
            return list(result)
        return self._walk_steps(list(expr.steps), self.eval(expr.base, env))

    def _walk_steps(self, steps: list, current: Sequence_) -> Sequence_:
        children = self.index.children
        for step in steps:
            nxt: Sequence_ = []
            for item in current:
                if not isinstance(item, XmlElement):
                    raise XQueryTypeError(
                        f"path step {step} applied to atomic value {item!r}"
                    )
                if isinstance(step, ChildStep):
                    nxt.extend(children(item, step.tag))
                elif isinstance(step, AttrStep):
                    if item.has_attribute(step.name):
                        nxt.append(item.attribute(step.name))
                else:
                    if item.text is not None:
                        nxt.append(item.text)
            current = nxt
        return current

    # -- comparisons and booleans ---------------------------------------------

    @staticmethod
    def _atomize(sequence: Sequence_) -> list[AtomicValue]:
        atoms: list[AtomicValue] = []
        for item in sequence:
            if isinstance(item, XmlElement):
                if item.text is not None:
                    atoms.append(item.text)
            else:
                atoms.append(item)
        return atoms

    def _compare(self, expr: ComparisonExpr, env: Env) -> bool:
        lefts = self._atomize(self.eval(expr.left, env))
        rights = self._atomize(self.eval(expr.right, env))
        op = expr.op
        for lv in lefts:
            for rv in rights:
                if self._holds(lv, op, rv):
                    return True
        return False

    @staticmethod
    def _holds(lv: AtomicValue, op: str, rv: AtomicValue) -> bool:
        try:
            if op == "=":
                return lv == rv
            if op == "!=":
                return lv != rv
            if op == "<":
                return lv < rv
            if op == "<=":
                return lv <= rv
            if op == ">":
                return lv > rv
            if op == ">=":
                return lv >= rv
        except TypeError as exc:
            raise XQueryTypeError(f"cannot compare {lv!r} {op} {rv!r}") from exc
        raise XQueryError(f"unknown comparison operator {op!r}")

    @staticmethod
    def _ebv(sequence: Sequence_) -> bool:
        """Effective boolean value."""
        if not sequence:
            return False
        first = sequence[0]
        if isinstance(first, XmlElement):
            return True
        if len(sequence) > 1:
            raise XQueryTypeError(
                "effective boolean value of a multi-item atomic sequence"
            )
        if isinstance(first, bool):
            return first
        if isinstance(first, (int, float)):
            return first != 0
        return bool(first)

    def _some(self, expr: SomeExpr, env: Env) -> bool:
        for item in self.eval(expr.collection, env):
            child_env = dict(env)
            child_env[expr.var] = [item]
            if self._ebv(self.eval(expr.condition, child_env)):
                return True
        return False

    def _is(self, expr: IsExpr, env: Env) -> bool:
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if len(left) != 1 or len(right) != 1:
            raise XQueryTypeError("'is' requires singleton node operands")
        if not isinstance(left[0], XmlElement) or not isinstance(right[0], XmlElement):
            raise XQueryTypeError("'is' requires node operands")
        return left[0] is right[0]

    def _arith(self, expr: ArithExpr, env: Env) -> AtomicValue:
        lefts = self._atomize(self.eval(expr.left, env))
        rights = self._atomize(self.eval(expr.right, env))
        if len(lefts) != 1 or len(rights) != 1:
            raise XQueryTypeError("arithmetic over non-singleton operands")
        lv, rv = lefts[0], rights[0]
        for value in (lv, rv):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise XQueryTypeError(f"arithmetic over non-numeric value {value!r}")
        if expr.op == "+":
            return lv + rv
        if expr.op == "-":
            return lv - rv
        if expr.op == "*":
            return lv * rv
        if expr.op == "div":
            if rv == 0:
                raise XQueryError("division by zero")
            return _int_if_integral(lv / rv)
        raise XQueryError(f"unknown arithmetic operator {expr.op!r}")

    # -- functions ----------------------------------------------------------------

    def _call(self, expr: FunctionCall, env: Env) -> Sequence_:
        name = expr.name
        if name == "distinct-values":
            (arg,) = expr.args
            atoms = self._atomize(self.eval(arg, env))
            return list(dict.fromkeys(atoms))
        if name == "count":
            (arg,) = expr.args
            return [len(self.eval(arg, env))]
        if name == "exists":
            (arg,) = expr.args
            return [bool(self.eval(arg, env))]
        if name == "concat":
            parts = []
            for arg in expr.args:
                atoms = self._atomize(self.eval(arg, env))
                if len(atoms) > 1:
                    raise XQueryTypeError("concat argument is not a singleton")
                parts.append(self._string(atoms[0]) if atoms else "")
            return ["".join(parts)]
        if name in ("upper-case", "lower-case"):
            (arg,) = expr.args
            atoms = self._atomize(self.eval(arg, env))
            if len(atoms) != 1:
                raise XQueryTypeError(f"{name}() requires a singleton argument")
            text = self._string(atoms[0])
            return [text.upper() if name == "upper-case" else text.lower()]
        if name in ("avg", "sum", "min", "max"):
            (arg,) = expr.args
            atoms = self._atomize(self.eval(arg, env))
            return self._numeric_aggregate(name, atoms)
        raise XQueryError(f"unsupported function {name}()")

    @staticmethod
    def _string(value: AtomicValue) -> str:
        if isinstance(value, bool):
            return "true" if value else "false"
        return str(value)

    @staticmethod
    def _numeric_aggregate(name: str, atoms: list[AtomicValue]) -> Sequence_:
        if not atoms:
            if name == "sum":
                return [0]
            return []  # avg/min/max of () is ()
        if name in ("min", "max"):
            return [min(atoms) if name == "min" else max(atoms)]
        numbers = []
        for value in atoms:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise XQueryTypeError(f"{name}() over non-numeric value {value!r}")
            numbers.append(value)
        total = sum(numbers)
        if name == "sum":
            return [_int_if_integral(total)]
        return [_int_if_integral(total / len(numbers))]

    # -- FLWOR -----------------------------------------------------------------------

    def _flwor(self, expr: Flwor, env: Env) -> Sequence_:
        tuples: list[Env] = [dict(env)]
        for clause in expr.clauses:
            if isinstance(clause, ForClause):
                expanded: list[Env] = []
                for current in tuples:
                    for item in self.eval(clause.expr, current):
                        child = dict(current)
                        child[clause.var] = [item]
                        expanded.append(child)
                tuples = expanded
            elif isinstance(clause, LetClause):
                for current in tuples:
                    current[clause.var] = self.eval(clause.expr, current)
            elif isinstance(clause, WhereClause):
                tuples = [
                    current
                    for current in tuples
                    if self._ebv(self.eval(clause.expr, current))
                ]
            else:
                raise XQueryError(f"unsupported clause {clause!r}")
        out: Sequence_ = []
        for current in tuples:
            out.extend(self.eval(expr.return_expr, current))
        return out

    # -- constructors ------------------------------------------------------------------

    def _construct(self, expr: ElementCtor, env: Env) -> XmlElement:
        out = XmlElement(expr.tag)
        for attribute in expr.attributes:
            atoms = self._atomize(self.eval(attribute.expr, env))
            if not atoms:
                continue  # empty sequence: attribute omitted
            if len(atoms) > 1:
                raise XQueryTypeError(
                    f"attribute {attribute.name!r} value is not a singleton"
                )
            out.set_attribute(attribute.name, atoms[0])
        atoms: list[AtomicValue] = []
        for child_expr in expr.children:
            for item in self.eval(child_expr, env):
                if isinstance(item, XmlElement):
                    # Constructors copy their content (XQuery semantics).
                    out.append(item.copy() if item.parent is not None else item)
                else:
                    atoms.append(item)
        if atoms:
            if len(out.children) > 0:
                raise XQueryTypeError(
                    f"constructor <{expr.tag}> mixes text and element content"
                )
            if len(atoms) == 1:
                out.set_text(atoms[0])  # a single typed value stays typed
            else:
                out.set_text(" ".join(self._string(a) for a in atoms))
        return out


def _int_if_integral(value):
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


class _TracingInterpreter(_Interpreter):
    """An :class:`_Interpreter` that records eval spans and counters.

    A separate subclass keeps the plain interpreter's dispatch free of
    tracing branches.  Top-level FLWORs (the generated queries' per-
    mapping loops) get their own spans, numbered in evaluation order;
    nested FLWORs and constructors only bump deterministic counters.
    """

    def __init__(
        self,
        source_root: XmlElement,
        *,
        index: Optional[DocumentIndex] = None,
        trace=None,
    ):
        super().__init__(source_root, index=index)
        self.trace = trace
        self.counters = {"flwors": 0, "elements_constructed": 0}
        self._flwor_depth = 0

    def _flwor(self, expr: Flwor, env: Env) -> Sequence_:
        ordinal = self.counters["flwors"]
        self.counters["flwors"] += 1
        if self._flwor_depth == 0 and self.trace is not None:
            span = self.trace.begin(f"flwor[{ordinal}]")
            self._flwor_depth += 1
            try:
                out = super()._flwor(expr, env)
            except Exception:
                span.attrs["status"] = "error"
                self._flwor_depth -= 1
                self.trace.end(span)
                raise
            self._flwor_depth -= 1
            span.attrs["items"] = len(out)
            self.trace.end(span)
            return out
        self._flwor_depth += 1
        try:
            return super()._flwor(expr, env)
        finally:
            self._flwor_depth -= 1

    def _construct(self, expr: ElementCtor, env: Env) -> XmlElement:
        self.counters["elements_constructed"] += 1
        return super()._construct(expr, env)
