"""XQuery subsystem: AST, tgd → XQuery emission, serialization, interpreter."""

from .emit import emit_xquery
from .parser import parse_xquery
from .interp import evaluate_query, run_query
from .serialize import serialize

__all__ = ["emit_xquery", "parse_xquery", "serialize", "evaluate_query", "run_query"]
