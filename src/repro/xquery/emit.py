"""Translate nested tgds into XQuery (Section VI).

The translation follows the paper's algorithm:

* every (sub)mapping becomes one nested FLWOR: ``for`` clauses for the
  universally quantified variables, ``where`` for C1, and a ``return``
  constructing the target elements with the C2 value mappings;
* **minimum cardinality** — target elements that are not builder-driven
  become *constant tags wrapping the FLWOR* instead of per-iteration
  constructors ("all the for clauses … are pushed as down as possible");
* **grouping** — XQuery 1.0 has no group-by clause, so the emitted
  query uses the paper's template: a ``let $context`` collecting the
  grouped items, ``distinct-values`` over each grouping attribute, a
  ``for`` over the distinct values, and a ``let $group`` refilter;
  submappings receive the current ``$group`` as their context;
* **aggregates** — native XQuery functions (``count``, ``avg``, …) whose
  path argument starts at the variable fixing the aggregation context;
* **membership conditions** (inversion, per-dept join under grouping)
  become ``some $m in collection satisfies $m is $member``;
* **distribution** (the Figure 4 no-context-arc variant) relocates the
  mapping's FLWOR inside the constructor of the builder that creates
  the shared element, uncorrelated with the host's iteration — exactly
  the query a Clio-style tool would produce for that diagram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..errors import XQueryError
from ..core.functions import (
    ADD,
    CONCAT,
    DIVIDE,
    IDENTITY,
    LOWER,
    MULTIPLY,
    SUBTRACT,
    UPPER,
)
from ..core.tgd import (
    AggregateApp,
    Constant,
    FunctionApp,
    Membership,
    NestedTgd,
    Proj,
    SchemaRoot,
    TargetGenerator,
    TgdComparison,
    TgdExpr,
    TgdMapping,
    Var,
    expr_labels,
    expr_root,
)
from . import ast


def emit_xquery(tgd: NestedTgd) -> ast.ElementCtor:
    """Emit the XQuery query that implements a nested tgd.

    The result constructs the target root element; serialize it with
    :func:`repro.xquery.serialize.serialize` or run it directly with
    :func:`repro.xquery.interp.run_query`.
    """
    return _Emitter(tgd).emit()


def _flatten(mapping: TgdMapping) -> list[TgdMapping]:
    """Merge *context-only* levels (no target generators, no grouping,
    no assignments) into their submappings.

    "All the for clauses in the generated FLWOR expressions are pushed
    as down as possible, whenever their nesting level is not enforced by
    explicit quantification" — and dually, constant tags wrap the whole
    merged FLWOR, so an element nobody builds (Figure 6's variant where
    only G is built under an unmapped F) is created once, not once per
    outer iteration.
    """
    if mapping.target_gens or mapping.skolem is not None or mapping.assignments:
        return [mapping]
    if not mapping.submappings:
        return [mapping]
    kept: list[TgdMapping] = [s for s in mapping.submappings if s.skolem is not None]
    if len(kept) == len(mapping.submappings):
        # Only grouped submappings: nothing to flatten — grouped levels
        # must stay nested so the enclosing FLWOR keeps the context
        # variables bound for the grouping template.
        return [mapping]
    flattened: list[TgdMapping] = []
    for sub in mapping.submappings:
        if sub.skolem is not None:
            continue
        merged = TgdMapping(
            source_gens=mapping.source_gens + sub.source_gens,
            where=mapping.where + sub.where,
            target_gens=sub.target_gens,
            assignments=sub.assignments,
            submappings=sub.submappings,
            skolem=sub.skolem,
            grouped_var=sub.grouped_var,
        )
        flattened.extend(_flatten(merged))
    if kept:
        flattened.append(
            TgdMapping(
                source_gens=mapping.source_gens,
                where=mapping.where,
                target_gens=(),
                assignments=(),
                submappings=tuple(kept),
            )
        )
    return flattened


# -- constructor assembly ---------------------------------------------------


class _CtorBuilder:
    """Mutable assembly of a direct element constructor."""

    def __init__(self, tag: str):
        self.tag = tag
        self.attributes: list[ast.AttributeCtor] = []
        self.text: Optional[ast.Expr] = None
        self.children: list[Union["_CtorBuilder", ast.Expr]] = []
        self._singletons: dict[str, "_CtorBuilder"] = {}

    def singleton(self, tag: str) -> "_CtorBuilder":
        """Get-or-create a singleton child constructor (deep-assignment
        intermediates, Section III-B example b)."""
        found = self._singletons.get(tag)
        if found is None:
            found = _CtorBuilder(tag)
            self._singletons[tag] = found
            self.children.append(found)
        return found

    def build(self) -> ast.ElementCtor:
        children: list[ast.Expr] = []
        if self.text is not None:
            children.append(self.text)
        for child in self.children:
            children.append(child.build() if isinstance(child, _CtorBuilder) else child)
        return ast.ElementCtor(self.tag, tuple(self.attributes), tuple(children))


@dataclass
class _EmitEnv:
    """Variable → AST expression mapping plus grouping substitutions."""

    vars: dict[str, ast.Expr] = field(default_factory=dict)
    substitutions: dict[TgdExpr, ast.Expr] = field(default_factory=dict)

    def child(self) -> "_EmitEnv":
        return _EmitEnv(dict(self.vars), dict(self.substitutions))


class _Emitter:
    def __init__(self, tgd: NestedTgd):
        self.tgd = tgd
        self._fresh_counter = 0
        # Mappings relocated inside another mapping's constructor
        # (distribution): host mapping id → list of (mapping, remaining gens).
        self._extras: dict[int, list[tuple[TgdMapping, tuple[TargetGenerator, ...]]]] = {}
        self._relocated: set[int] = set()

    # -- public ------------------------------------------------------------

    def emit(self) -> ast.ElementCtor:
        # Flatten context-only levels first: distribution hosts are
        # matched against the mappings that will actually be emitted.
        flat_roots: list[TgdMapping] = []
        for mapping in self.tgd.roots:
            flat_roots.extend(_flatten(mapping))
        self._plan_distribution(flat_roots)
        root = _CtorBuilder(self.tgd.target_root)
        for mapping in flat_roots:
            if id(mapping) in self._relocated:
                continue
            self._emit_into(root, mapping, mapping.target_gens, _EmitEnv())
        return root.build()

    # -- distribution -----------------------------------------------------------

    def _plan_distribution(self, flat_roots: list[TgdMapping]) -> None:
        for mapping in flat_roots:
            index = next(
                (i for i, g in enumerate(mapping.target_gens) if g.distribute), None
            )
            if index is None:
                continue
            tag = mapping.target_gens[index].expr.label
            host = self._find_host(flat_roots, mapping, tag)
            if host is None:
                continue  # fall back to normal wrapper emission
            remaining = mapping.target_gens[index + 1 :]
            self._extras.setdefault(id(host), []).append((mapping, remaining))
            self._relocated.add(id(mapping))

    def _find_host(
        self, flat_roots: list[TgdMapping], mapping: TgdMapping, tag: str
    ) -> Optional[TgdMapping]:
        for root in flat_roots:
            for candidate in root.walk():
                if candidate is mapping:
                    continue
                for gen in candidate.target_gens:
                    if (
                        gen.quantified
                        and isinstance(gen.expr, Proj)
                        and gen.expr.label == tag
                    ):
                        return candidate
        return None

    # -- expression conversion -----------------------------------------------------

    def _fresh(self, hint: str) -> str:
        self._fresh_counter += 1
        return f"{hint}_{self._fresh_counter}"

    @staticmethod
    def _xname(var: str) -> str:
        return var.replace("'", "_p")

    def _convert(self, expr: TgdExpr, env: _EmitEnv) -> ast.Expr:
        if expr in env.substitutions:
            return env.substitutions[expr]
        if isinstance(expr, SchemaRoot):
            return ast.PathExpr(ast.DocRoot(), (ast.ChildStep(expr.name),))
        if isinstance(expr, Var):
            return env.vars.get(expr.name, ast.VarRef(self._xname(expr.name)))
        base = self._convert(expr.base, env)
        step = self._step(expr.label)
        if isinstance(base, ast.PathExpr):
            return ast.PathExpr(base.base, base.steps + (step,))
        if isinstance(base, ast.VarRef):
            return ast.PathExpr(base, (step,))
        raise XQueryError(f"cannot extend expression {base!r} with a path step")

    @staticmethod
    def _step(label: str) -> ast.Step:
        if label.startswith("@"):
            return ast.AttrStep(label[1:])
        if label == "value":
            return ast.TextStep()
        return ast.ChildStep(label)

    def _convert_operand(self, operand, env: _EmitEnv) -> ast.Expr:
        if isinstance(operand, Constant):
            if isinstance(operand.value, bool):
                return ast.BoolLit(operand.value)
            if isinstance(operand.value, (int, float)):
                return ast.NumberLit(operand.value)
            return ast.StringLit(operand.value)
        return self._convert(operand, env)

    def _convert_condition(self, condition, env: _EmitEnv) -> ast.Expr:
        if isinstance(condition, TgdComparison):
            return ast.ComparisonExpr(
                self._convert_operand(condition.left, env),
                condition.op,
                self._convert_operand(condition.right, env),
            )
        if isinstance(condition, Membership):
            probe = self._fresh("m")
            return ast.SomeExpr(
                probe,
                self._convert(condition.collection, env),
                ast.IsExpr(ast.VarRef(probe), self._convert(condition.member, env)),
            )
        raise XQueryError(f"unsupported condition {condition!r}")

    def _convert_term(self, term, env: _EmitEnv) -> ast.Expr:
        if isinstance(term, AggregateApp):
            return ast.FunctionCall(term.function.name, (self._convert(term.arg, env),))
        if isinstance(term, FunctionApp):
            return self._convert_function(term, env)
        return self._convert_operand(term, env)

    def _convert_function(self, term: FunctionApp, env: _EmitEnv) -> ast.Expr:
        args = [self._convert(arg, env) for arg in term.args]
        name = term.function.name
        if name == IDENTITY.name:
            return args[0]
        if name == CONCAT.name:
            return ast.FunctionCall("concat", tuple(args))
        if name == UPPER.name:
            return ast.FunctionCall("upper-case", tuple(args))
        if name == LOWER.name:
            return ast.FunctionCall("lower-case", tuple(args))
        operators = {ADD.name: "+", SUBTRACT.name: "-", MULTIPLY.name: "*", DIVIDE.name: "div"}
        if name in operators:
            op = operators[name]
            out = args[0]
            for arg in args[1:]:
                out = ast.ArithExpr(out, op, arg)
            return out
        raise XQueryError(f"no XQuery rendering for scalar function {name!r}")

    # -- mapping emission ------------------------------------------------------------

    def _emit_into(
        self,
        parent: _CtorBuilder,
        mapping: TgdMapping,
        target_gens: tuple[TargetGenerator, ...],
        env: _EmitEnv,
    ) -> None:
        """Emit ``mapping`` (with the given effective target generators)
        into ``parent``'s content."""
        # Context-only levels dissolve into their children so that
        # constant tags wrap the whole merged FLWOR (see _flatten).
        if target_gens == mapping.target_gens:
            flats = _flatten(mapping)
            if len(flats) != 1 or flats[0] is not mapping:
                for flat in flats:
                    self._emit_into(parent, flat, flat.target_gens, env)
                return
        # Constant tags wrap the FLWOR: peel unquantified prefix gens.
        index = 0
        while index < len(target_gens) and not target_gens[index].quantified:
            gen = target_gens[index]
            if not isinstance(gen.expr, Proj):
                raise XQueryError(f"malformed target generator {gen}")
            parent = parent.singleton(gen.expr.label)
            index += 1
        remaining = target_gens[index:]
        if not mapping.source_gens and not remaining:
            # Pure constant content (whole-document aggregates).
            self._apply_assignments(parent, mapping, env)
            for sub in mapping.submappings:
                self._emit_into(parent, sub, sub.target_gens, env)
            return
        parent.children.append(self._emit_flwor(mapping, remaining, env))

    def _emit_flwor(
        self,
        mapping: TgdMapping,
        built_gens: tuple[TargetGenerator, ...],
        env: _EmitEnv,
    ) -> ast.Expr:
        if mapping.skolem is not None:
            return self._emit_grouped(mapping, built_gens, env)
        clauses: list[ast.Clause] = [
            ast.ForClause(self._xname(gen.var), self._convert(gen.expr, env))
            for gen in mapping.source_gens
        ]
        for condition in mapping.where:
            clauses.append(ast.WhereClause(self._convert_condition(condition, env)))
        body = self._emit_return(mapping, built_gens, env)
        if not clauses:
            return body
        return ast.Flwor(tuple(clauses), body)

    def _emit_return(
        self,
        mapping: TgdMapping,
        built_gens: tuple[TargetGenerator, ...],
        env: _EmitEnv,
    ) -> ast.Expr:
        if not built_gens:
            # Context-only level: the return concatenates the submappings.
            parts = tuple(
                self._emit_flwor(sub, sub.target_gens, env.child())
                for sub in mapping.submappings
            )
            if len(parts) == 1:
                return parts[0]
            return ast.SequenceExpr(parts)
        # Nested per-iteration constructors (possibly several, as in the
        # Clio-baseline tgds where department and employee are both
        # existential per iteration).
        builders: dict[str, _CtorBuilder] = {}
        top: Optional[_CtorBuilder] = None
        deepest: Optional[tuple[str, _CtorBuilder]] = None
        for gen in built_gens:
            if not isinstance(gen.expr, Proj):
                raise XQueryError(f"malformed target generator {gen}")
            builder = _CtorBuilder(gen.expr.label)
            base = gen.expr.base
            if isinstance(base, Var) and base.name in builders:
                builders[base.name].children.append(builder)
            elif top is None:
                top = builder
            else:
                raise XQueryError(
                    f"target generator {gen} does not chain below the previous one"
                )
            builders[gen.var] = builder
            deepest = (gen.var, builder)
        assert top is not None and deepest is not None
        self._apply_assignments_to(builders, mapping, env)
        host_builder = deepest[1]
        for sub in mapping.submappings:
            self._emit_into(host_builder, sub, sub.target_gens, env.child())
        for extra, extra_gens in self._extras.get(id(mapping), ()):
            self._emit_into(host_builder, extra, extra_gens, _EmitEnv())
        return top.build()

    # -- assignments -----------------------------------------------------------------

    def _apply_assignments(self, builder: _CtorBuilder, mapping: TgdMapping, env: _EmitEnv) -> None:
        builders = {gen.var: builder for gen in mapping.target_gens}
        self._apply_assignments_to(builders, mapping, env)

    def _apply_assignments_to(
        self, builders: dict[str, _CtorBuilder], mapping: TgdMapping, env: _EmitEnv
    ) -> None:
        for assignment in mapping.assignments:
            root = expr_root(assignment.target)
            if not isinstance(root, Var) or root.name not in builders:
                raise XQueryError(
                    f"assignment target {assignment.target} is not anchored at a "
                    "constructed element"
                )
            holder = builders[root.name]
            labels = expr_labels(assignment.target)
            leaf = labels[-1]
            for tag in labels[:-1]:
                holder = holder.singleton(tag)
            value = self._convert_term(assignment.value, env)
            if leaf.startswith("@"):
                holder.attributes.append(ast.AttributeCtor(leaf[1:], value))
            elif leaf == "value":
                holder.text = value
            else:
                holder.singleton(leaf).text = value

    # -- grouping (the Section VI template) ----------------------------------------------

    def _emit_grouped(
        self,
        mapping: TgdMapping,
        built_gens: tuple[TargetGenerator, ...],
        env: _EmitEnv,
    ) -> ast.Expr:
        _, skolem_app = mapping.skolem
        grouped = mapping.grouped_var
        if grouped is None:
            raise XQueryError("grouped mapping without a grouped variable")
        for attr in skolem_app.attrs:
            if not (isinstance(expr_root(attr), Var) and expr_root(attr).name == grouped):
                raise XQueryError(
                    "the XQuery grouping template requires all grouping "
                    f"attributes to be rooted at ${grouped}"
                )

        ctx_var = self._fresh(f"context_{self._xname(grouped)}")
        group_var = self._fresh(f"group_{self._xname(grouped)}")
        probe_var = self._fresh(self._xname(grouped))

        # let $context := (for … where … return $grouped)
        inner_clauses: list[ast.Clause] = [
            ast.ForClause(self._xname(gen.var), self._convert(gen.expr, env))
            for gen in mapping.source_gens
        ]
        for condition in mapping.where:
            inner_clauses.append(ast.WhereClause(self._convert_condition(condition, env)))
        context_flwor = ast.Flwor(
            tuple(inner_clauses), ast.VarRef(self._xname(grouped))
        )
        clauses: list[ast.Clause] = [ast.LetClause(ctx_var, context_flwor)]

        # One distinct-values dimension per grouping attribute.
        value_vars: list[str] = []
        attr_paths: list[ast.Expr] = []
        for position, attr in enumerate(skolem_app.attrs, start=1):
            probe_env = env.child()
            probe_env.vars[grouped] = ast.VarRef(probe_var)
            attr_path = self._convert(attr, probe_env)
            attr_paths.append(attr_path)
            dim_var = self._fresh(f"dim{position}")
            value_var = self._fresh(f"val{position}")
            value_vars.append(value_var)
            clauses.append(
                ast.LetClause(
                    dim_var,
                    ast.FunctionCall(
                        "distinct-values",
                        (ast.Flwor(
                            (ast.ForClause(probe_var, ast.VarRef(ctx_var)),),
                            attr_path,
                        ),),
                    ),
                )
            )
            clauses.append(ast.ForClause(value_var, ast.VarRef(dim_var)))

        # let $group := (for $probe in $context where attrs = vals return $probe)
        refilter_conditions = [
            ast.ComparisonExpr(attr_path, "=", ast.VarRef(value_var))
            for attr_path, value_var in zip(attr_paths, value_vars)
        ]
        refilter = ast.Flwor(
            (
                ast.ForClause(probe_var, ast.VarRef(ctx_var)),
                ast.WhereClause(
                    refilter_conditions[0]
                    if len(refilter_conditions) == 1
                    else ast.AndExpr(tuple(refilter_conditions))
                ),
            ),
            ast.VarRef(probe_var),
        )
        clauses.append(ast.LetClause(group_var, refilter))
        if len(skolem_app.attrs) > 1:
            # The Cartesian product of the dimensions can name empty groups.
            clauses.append(
                ast.WhereClause(ast.FunctionCall("exists", (ast.VarRef(group_var),)))
            )

        # The group body: the grouped variable now denotes $group, and
        # grouping-attribute expressions denote the current key value.
        group_env = env.child()
        group_env.vars[grouped] = ast.VarRef(group_var)
        for attr, value_var in zip(skolem_app.attrs, value_vars):
            group_env.substitutions[attr] = ast.VarRef(value_var)
        body = self._emit_return(mapping, built_gens, group_env)
        return ast.Flwor(tuple(clauses), body)
