"""Parser for the emitted XQuery subset.

The Section VI translation produces query *text*; this parser reads
that text back into the AST, closing the loop::

    tgd --emit--> AST --serialize--> text --parse--> AST --interp--> instance

Round-trip property (tested): parsing the serializer's output yields an
AST that evaluates identically, for every query the emitter can
produce.  It also lets users hand-edit a generated ``.xq`` file and run
it through the bundled interpreter.

Grammar (the emitted subset):

* FLWOR expressions with ``for``/``let``/``where``/``return``;
* direct element constructors ``<tag attr="{expr}"> { content } </tag>``
  (attribute values are always computed, as the emitter produces);
* paths ``$var/step/…`` and root paths ``name/step/…`` with ``@attr``
  and ``text()`` steps;
* general comparisons, ``and``, ``some … satisfies``, ``is``;
* function calls, arithmetic ``+ - * div``, string/number/boolean
  literals, parenthesized sequences.
"""

from __future__ import annotations

import re
from typing import Optional

from ..errors import XQueryError
from . import ast

_TOKEN = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<string>"(?:[^"]|"")*")
    | (?P<number>-?\d+(?:\.\d+)?)
    | (?P<var>\$[A-Za-z_][\w\-]*)
    | (?P<word>[A-Za-z][\w\-]*(?:\(\))?)
    | (?P<attr>@[A-Za-z_][\w\-]*)
    | (?P<assign>:=)
    | (?P<op><=|>=|!=|=|<(?=[^A-Za-z/!])|>)
    | (?P<ctag></[A-Za-z][\w\-]*\s*>)
    | (?P<otag><[A-Za-z][\w\-]*)
    | (?P<selfclose>/>)
    | (?P<punct>[{}(),/*+\-])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"for", "let", "where", "return", "in", "and", "some", "satisfies",
             "is", "div"}


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str):
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text!r}"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            raise XQueryError(f"cannot tokenize query at {text[position:position+24]!r}")
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group(kind)
        if kind == "word" and value in _KEYWORDS:
            kind = "kw"
        tokens.append(_Token(kind, value))
    return tokens


def parse_xquery(text: str) -> ast.Expr:
    """Parse query text (the emitted subset) into an AST."""
    parser = _Parser(_tokenize(text))
    expr = parser.expression()
    parser.expect_end()
    return expr


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[_Token]:
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise XQueryError("unexpected end of query")
        self.position += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self.peek()
        if token is None or token.kind != kind:
            return None
        if text is not None and token.text != text:
            return None
        self.position += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.accept(kind, text)
        if token is None:
            found = self.peek()
            raise XQueryError(
                f"expected {text or kind}, found {found.text if found else 'end of query'!r}"
            )
        return token

    def expect_end(self) -> None:
        if self.peek() is not None:
            raise XQueryError(f"trailing content at {self.peek().text!r}")

    # -- grammar ------------------------------------------------------------

    def expression(self) -> ast.Expr:
        token = self.peek()
        if token is None:
            raise XQueryError("empty query")
        if token.kind == "kw" and token.text in ("for", "let"):
            return self.flwor()
        if token.kind == "kw" and token.text == "some":
            return self.some()
        return self.or_less()  # comparisons and below

    def flwor(self) -> ast.Flwor:
        clauses: list[ast.Clause] = []
        while True:
            token = self.peek()
            if token is None or token.kind != "kw":
                break
            if token.text == "for":
                self.next()
                var = self.expect("var").text[1:]
                self.expect("kw", "in")
                clauses.append(ast.ForClause(var, self.single()))
            elif token.text == "let":
                self.next()
                var = self.expect("var").text[1:]
                self.expect("assign")
                clauses.append(ast.LetClause(var, self.single()))
            elif token.text == "where":
                self.next()
                clauses.append(ast.WhereClause(self.condition()))
            elif token.text == "return":
                self.next()
                return ast.Flwor(tuple(clauses), self.expression())
            else:
                break
        raise XQueryError("FLWOR without a return clause")

    def some(self) -> ast.SomeExpr:
        self.expect("kw", "some")
        var = self.expect("var").text[1:]
        self.expect("kw", "in")
        collection = self.single()
        self.expect("kw", "satisfies")
        condition = self.condition()
        return ast.SomeExpr(var, collection, condition)

    def condition(self) -> ast.Expr:
        """Comparison chains joined by ``and``."""
        parts = [self.comparison()]
        while self.accept("kw", "and"):
            parts.append(self.comparison())
        if len(parts) == 1:
            return parts[0]
        return ast.AndExpr(tuple(parts))

    def comparison(self) -> ast.Expr:
        if self.peek() is not None and self.peek().kind == "kw" and self.peek().text == "some":
            return self.some()
        left = self.additive()
        token = self.peek()
        if token is not None and token.kind == "op":
            op = self.next().text
            right = self.additive()
            return ast.ComparisonExpr(left, op, right)
        if token is not None and token.kind == "kw" and token.text == "is":
            self.next()
            return ast.IsExpr(left, self.additive())
        return left

    def or_less(self) -> ast.Expr:
        return self.condition()

    def additive(self) -> ast.Expr:
        left = self.multiplicative()
        while True:
            token = self.peek()
            if token is not None and token.kind == "punct" and token.text in "+-":
                op = self.next().text
                left = ast.ArithExpr(left, op, self.multiplicative())
            else:
                return left

    def multiplicative(self) -> ast.Expr:
        left = self.single()
        while True:
            token = self.peek()
            if token is not None and token.kind == "punct" and token.text == "*":
                self.next()
                left = ast.ArithExpr(left, "*", self.single())
            elif token is not None and token.kind == "kw" and token.text == "div":
                self.next()
                left = ast.ArithExpr(left, "div", self.single())
            else:
                return left

    def single(self) -> ast.Expr:
        token = self.peek()
        if token is None:
            raise XQueryError("unexpected end of query")
        if token.kind == "string":
            self.next()
            return ast.StringLit(token.text[1:-1].replace('""', '"'))
        if token.kind == "number":
            self.next()
            literal = token.text
            return ast.NumberLit(float(literal) if "." in literal else int(literal))
        if token.kind == "var":
            self.next()
            return self.path_from(ast.VarRef(token.text[1:]))
        if token.kind == "otag":
            return self.constructor()
        if token.kind == "punct" and token.text == "(":
            return self.parenthesized()
        if token.kind == "word":
            return self.word_expression()
        if token.kind == "kw" and token.text in ("for", "let"):
            return self.flwor()
        raise XQueryError(f"unexpected token {token.text!r}")

    def word_expression(self) -> ast.Expr:
        token = self.next()
        word = token.text
        if word.endswith("()"):
            name = word[:-2]
            if name in ("true", "false"):
                return ast.BoolLit(name == "true")
            return ast.FunctionCall(name, ())
        nxt = self.peek()
        if nxt is not None and nxt.kind == "punct" and nxt.text == "(":
            self.next()
            args: list[ast.Expr] = []
            if not (self.peek() and self.peek().kind == "punct" and self.peek().text == ")"):
                args.append(self.expression())
                while self.accept("punct", ","):
                    args.append(self.expression())
            self.expect("punct", ")")
            return ast.FunctionCall(word, tuple(args))
        # A bare name starts a root path: source/dept/…
        return self.path_from(ast.DocRoot(), first=ast.ChildStep(word))

    def path_from(self, base, first: Optional[ast.Step] = None) -> ast.Expr:
        steps: list[ast.Step] = [first] if first is not None else []
        while self.accept("punct", "/"):
            token = self.next()
            if token.kind == "word":
                if token.text == "text()":
                    steps.append(ast.TextStep())
                else:
                    steps.append(ast.ChildStep(token.text))
            elif token.kind == "attr":
                steps.append(ast.AttrStep(token.text[1:]))
            elif token.kind == "kw":
                steps.append(ast.ChildStep(token.text))
            else:
                raise XQueryError(f"unexpected path step {token.text!r}")
        if not steps and isinstance(base, ast.VarRef):
            return base
        return ast.PathExpr(base, tuple(steps))

    def parenthesized(self) -> ast.Expr:
        self.expect("punct", "(")
        if self.accept("punct", ")"):
            return ast.SequenceExpr(())
        items = [self.expression()]
        while self.accept("punct", ","):
            items.append(self.expression())
        self.expect("punct", ")")
        if len(items) == 1:
            return items[0]
        return ast.SequenceExpr(tuple(items))

    # -- constructors -----------------------------------------------------------

    def constructor(self) -> ast.ElementCtor:
        open_token = self.expect("otag")
        tag = open_token.text[1:]
        attributes: list[ast.AttributeCtor] = []
        while True:
            token = self.peek()
            if token is None:
                raise XQueryError(f"unterminated constructor <{tag}>")
            if token.kind == "word":
                name_token = self.next()
                self.expect("op", "=")
                value = self.expect("string").text
                inner = value[1:-1]
                if not (inner.startswith("{") and inner.endswith("}")):
                    attributes.append(
                        ast.AttributeCtor(name_token.text, ast.StringLit(inner))
                    )
                else:
                    sub = _Parser(_tokenize(inner[1:-1]))
                    expr = sub.expression()
                    sub.expect_end()
                    attributes.append(ast.AttributeCtor(name_token.text, expr))
            elif token.kind == "selfclose":
                self.next()
                return ast.ElementCtor(tag, tuple(attributes), ())
            elif token.kind == "op" and token.text == ">":
                self.next()
                break
            else:
                raise XQueryError(
                    f"unexpected token {token.text!r} in constructor <{tag}>"
                )
        children: list[ast.Expr] = []
        while True:
            token = self.peek()
            if token is None:
                raise XQueryError(f"unterminated constructor <{tag}>")
            if token.kind == "ctag":
                closing = self.next().text[2:-1].strip()
                if closing != tag:
                    raise XQueryError(
                        f"constructor <{tag}> closed by </{closing}>"
                    )
                return ast.ElementCtor(tag, tuple(attributes), tuple(children))
            if token.kind == "punct" and token.text == "{":
                self.next()
                children.append(self.expression())
                while self.accept("punct", ","):
                    children.append(self.expression())
                self.expect("punct", "}")
            elif token.kind == "otag":
                children.append(self.constructor())
            else:
                raise XQueryError(
                    f"unexpected token {token.text!r} inside <{tag}>"
                )
