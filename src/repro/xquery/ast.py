"""AST for the XQuery subset that Clip's translation emits (Section VI).

The subset covers exactly what the tgd → XQuery translation needs:
FLWOR expressions (``for``/``let``/``where``/``return``), path
expressions, direct element constructors with computed attributes,
general comparisons, ``some … satisfies`` with node-identity ``is``
(used for the membership conditions of grouping/inversion), sequences,
and the built-in functions ``distinct-values``, ``count``, ``avg``,
``sum``, ``min``, ``max``, ``concat``, ``exists``.

The same AST is consumed by :mod:`repro.xquery.serialize` (query text)
and :mod:`repro.xquery.interp` (evaluation) — the emitted query is both
printable and runnable offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


# -- path steps ---------------------------------------------------------


@dataclass(frozen=True)
class ChildStep:
    tag: str

    def __str__(self) -> str:
        return self.tag


@dataclass(frozen=True)
class AttrStep:
    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class TextStep:
    def __str__(self) -> str:
        return "text()"


Step = Union[ChildStep, AttrStep, TextStep]


# -- expressions ---------------------------------------------------------


@dataclass(frozen=True)
class StringLit:
    value: str


@dataclass(frozen=True)
class NumberLit:
    value: Union[int, float]


@dataclass(frozen=True)
class BoolLit:
    value: bool


@dataclass(frozen=True)
class VarRef:
    """``$name``"""

    name: str


@dataclass(frozen=True)
class DocRoot:
    """The document root of the source instance (paths printed from the
    root element name, as the paper does: ``source/dept``)."""


@dataclass(frozen=True)
class PathExpr:
    """``base/step/step…``; ``base`` is a variable or the document root."""

    base: Union[VarRef, DocRoot]
    steps: tuple[Step, ...]


@dataclass(frozen=True)
class SequenceExpr:
    """``(e1, e2, …)``"""

    items: tuple["Expr", ...]


@dataclass(frozen=True)
class ComparisonExpr:
    """General comparison with existential semantics over sequences."""

    left: "Expr"
    op: str  # = != < <= > >=
    right: "Expr"


@dataclass(frozen=True)
class AndExpr:
    items: tuple["Expr", ...]


@dataclass(frozen=True)
class SomeExpr:
    """``some $var in collection satisfies condition``"""

    var: str
    collection: "Expr"
    condition: "Expr"


@dataclass(frozen=True)
class IsExpr:
    """Node identity: ``e1 is e2``."""

    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class FunctionCall:
    """A built-in function call."""

    name: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class ArithExpr:
    """Binary arithmetic: ``e1 op e2`` with op ∈ { + - * div }."""

    left: "Expr"
    op: str
    right: "Expr"


# -- FLWOR ----------------------------------------------------------------


@dataclass(frozen=True)
class ForClause:
    var: str
    expr: "Expr"


@dataclass(frozen=True)
class LetClause:
    var: str
    expr: "Expr"


@dataclass(frozen=True)
class WhereClause:
    expr: "Expr"


Clause = Union[ForClause, LetClause, WhereClause]


@dataclass(frozen=True)
class Flwor:
    clauses: tuple[Clause, ...]
    return_expr: "Expr"


# -- constructors ------------------------------------------------------------


@dataclass(frozen=True)
class AttributeCtor:
    """``name="{expr}"`` inside a direct element constructor.  An
    empty-sequence value omits the attribute."""

    name: str
    expr: "Expr"


@dataclass(frozen=True)
class ElementCtor:
    """``<tag attr…>{children…}</tag>``"""

    tag: str
    attributes: tuple[AttributeCtor, ...] = ()
    children: tuple["Expr", ...] = ()


Expr = Union[
    StringLit,
    NumberLit,
    BoolLit,
    VarRef,
    DocRoot,
    PathExpr,
    SequenceExpr,
    ComparisonExpr,
    AndExpr,
    SomeExpr,
    IsExpr,
    FunctionCall,
    ArithExpr,
    Flwor,
    ElementCtor,
]


def path(base: Union[VarRef, DocRoot], *segments: str) -> PathExpr:
    """Build a path from compact segment strings (``"dept"``, ``"@pid"``,
    ``"text()"``)."""
    steps: list[Step] = []
    for segment in segments:
        if segment.startswith("@"):
            steps.append(AttrStep(segment[1:]))
        elif segment == "text()":
            steps.append(TextStep())
        else:
            steps.append(ChildStep(segment))
    return PathExpr(base, tuple(steps))
