"""Schema matching: suggesting value mappings between two schemas.

The paper's future work: "the GUI will be augmented by including schema
matching tools, i.e. tools suggesting related elements and structures
within two complex source and target XML schemas".  This module
implements that extension with a classic name/type matcher:

* names are split into tokens (camelCase, digits, separators), and
  pairs of tokens are scored by normalized edit distance with an
  affix bonus (``pname`` ↔ ``name``, ``regEmp`` ↔ ``employee``);
* a value-node pair's score combines the leaf-name similarity, the
  similarity of the *paths* of enclosing elements, and a type
  compatibility factor;
* :func:`suggest_value_mappings` returns the score-ranked one-to-one
  assignment (greedy stable matching above a threshold);
* :func:`bootstrap_mapping` feeds the suggestions straight into Clip's
  Section V generation pipeline — schemas in, nested mapping out.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..core.mapping import ValueMapping
from ..generation.clip_ext import generate_clip
from ..xsd.schema import ElementDecl, Schema, ValueNode

_TOKEN_SPLIT = re.compile(r"[^A-Za-z0-9]+|(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Za-z])(?=\d)")


def tokenize(name: str) -> list[str]:
    """Split an XML name into lowercase tokens.

    >>> tokenize("regEmp")
    ['reg', 'emp']
    >>> tokenize("avg-sal")
    ['avg', 'sal']
    """
    return [t.lower() for t in _TOKEN_SPLIT.split(name) if t]


def _edit_distance(a: str, b: str) -> int:
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (ca != cb),
                )
            )
        previous = current
    return previous[-1]


def token_similarity(left: str, right: str) -> float:
    """Similarity of two tokens in [0, 1]: exact = 1; affix containment
    scores by coverage; otherwise normalized edit distance."""
    if left == right:
        return 1.0
    shorter, longer = sorted((left, right), key=len)
    if len(shorter) >= 2 and (longer.startswith(shorter) or longer.endswith(shorter)):
        return 0.6 + 0.4 * len(shorter) / len(longer)
    distance = _edit_distance(left, right)
    return max(0.0, 1.0 - distance / max(len(left), len(right)))


def name_similarity(left: str, right: str) -> float:
    """Similarity of two names: best-pair average over their tokens."""
    lefts, rights = tokenize(left), tokenize(right)
    if not lefts or not rights:
        return 0.0
    def best(tokens, others):
        return sum(max(token_similarity(t, o) for o in others) for t in tokens)
    return (best(lefts, rights) + best(rights, lefts)) / (len(lefts) + len(rights))


def _path_names(element: ElementDecl) -> list[str]:
    return [e.name for e in element.path()[1:]]  # skip the schema root


def path_similarity(left: ElementDecl, right: ElementDecl) -> float:
    """Similarity of the enclosing element paths (order-insensitive
    best-pair average; roots excluded)."""
    lefts, rights = _path_names(left), _path_names(right)
    if not lefts or not rights:
        return 0.5  # a root-level node carries no path evidence either way
    def best(names, others):
        return sum(max(name_similarity(n, o) for o in others) for n in names)
    return (best(lefts, rights) + best(rights, lefts)) / (len(lefts) + len(rights))


def _leaf_name(node: ValueNode) -> str:
    if node.attribute is not None:
        return node.attribute
    return node.element.name


def type_compatibility(left: ValueNode, right: ValueNode) -> float:
    """1.0 for equal types, 0.8 for numeric-to-numeric, 0.5 otherwise
    (strings absorb anything in practice)."""
    lt, rt = left.type, right.type
    if lt is rt:
        return 1.0
    numeric = {"int", "float"}
    if lt.name.lower() in numeric and rt.name.lower() in numeric:
        return 0.8
    return 0.5


@dataclass(frozen=True)
class Match:
    """A suggested correspondence with its score in [0, 1]."""

    source: ValueNode
    target: ValueNode
    score: float

    def as_value_mapping(self) -> ValueMapping:
        return ValueMapping([self.source], self.target)

    def __str__(self) -> str:
        return f"{self.source} ~ {self.target}  ({self.score:.2f})"


def _value_nodes(schema: Schema) -> list[ValueNode]:
    nodes: list[ValueNode] = []
    for element in schema.elements():
        for attribute in element.attributes:
            nodes.append(ValueNode(element, attribute.name))
        if element.text_type is not None:
            nodes.append(ValueNode(element, None))
    return nodes


def score_pair(source: ValueNode, target: ValueNode) -> float:
    """The combined score of one source/target value-node pair."""
    leaf = name_similarity(_leaf_name(source), _leaf_name(target))
    path = path_similarity(source.element, target.element)
    return (0.6 * leaf + 0.4 * path) * type_compatibility(source, target)


def suggest_value_mappings(
    source: Schema,
    target: Schema,
    *,
    threshold: float = 0.45,
    one_to_one: bool = True,
) -> list[Match]:
    """Suggest value mappings between two schemas, best first.

    With ``one_to_one=True`` (the default) a greedy assignment keeps
    each source and target node in at most one suggestion.
    """
    candidates: list[Match] = []
    for source_node in _value_nodes(source):
        for target_node in _value_nodes(target):
            score = score_pair(source_node, target_node)
            if score >= threshold:
                candidates.append(Match(source_node, target_node, score))
    candidates.sort(key=lambda m: (-m.score, str(m.source), str(m.target)))
    if not one_to_one:
        return candidates
    taken_sources: set[str] = set()
    taken_targets: set[str] = set()
    chosen: list[Match] = []
    for match in candidates:
        skey, tkey = str(match.source), str(match.target)
        if skey in taken_sources or tkey in taken_targets:
            continue
        taken_sources.add(skey)
        taken_targets.add(tkey)
        chosen.append(match)
    return chosen


def bootstrap_mapping(
    source: Schema,
    target: Schema,
    *,
    threshold: float = 0.45,
):
    """Schemas in, generated nested mapping out: suggest value mappings,
    then run Clip's generation pipeline on them.

    Returns ``(matches, generation_result)``.
    """
    matches = suggest_value_mappings(source, target, threshold=threshold)
    vms = [m.as_value_mapping() for m in matches]
    return matches, generate_clip(source, target, vms)
