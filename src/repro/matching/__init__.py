"""Schema matching (the paper's future-work extension)."""

from .matcher import (
    Match,
    bootstrap_mapping,
    name_similarity,
    path_similarity,
    score_pair,
    suggest_value_mappings,
    token_similarity,
    tokenize,
    type_compatibility,
)

__all__ = [
    "Match",
    "suggest_value_mappings",
    "bootstrap_mapping",
    "score_pair",
    "name_similarity",
    "path_similarity",
    "token_similarity",
    "type_compatibility",
    "tokenize",
]
