"""Containment and equivalence of nested tgds (a decidable fragment).

``contains(m1, m2)`` asks: over every source instance, is the target
``m2`` produces *embedded in* the target ``m1`` produces?  Following
Calì–Torlone's treatment of mapping containment for data exchange, the
check is a canonical-homomorphism search over the frozen tgd normal
forms — but restricted to a fragment where the homomorphism argument
is actually sound, and answering ``None`` ("unknown") everywhere else
rather than guessing.

The decidable fragment excludes:

* grouping Skolems (`group-by`) — grouping merges rows, so adding or
  removing a conjunct changes *keys*, not just row sets;
* aggregates — an aggregate's value depends on the whole row set, so a
  sub-set of rows yields a *different* value, not a subset of values;
* distributed content — its fan-out is a function of what *other*
  mappings build.

Within the fragment the rule is the classical one: mapping ``m1``
contains ``m2`` when every root of ``m2`` is *covered* by some root of
``m1`` — identical generators and assignments up to a consistent
renaming, recursively covered submappings, and ``where(r1) ⊆
where(r2)`` (fewer conjuncts keep more rows, hence produce a superset).

Three-valued results compose conservatively: ``True`` and ``False`` are
proofs, ``None`` is an honest shrug.  Alpha-equivalent mappings are
recognized even outside the fragment via the canonical normal form.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.compile import compile_clip
from ..core.mapping import ClipMapping
from ..core.tgd import (
    AggregateApp,
    NestedTgd,
    TgdMapping,
)
from .normalize import canonical_render, rename_condition, rename_term, rename_vars

__all__ = ["contains", "equivalent", "in_decidable_fragment"]

#: What the decision procedure returns: a proof either way, or "unknown".
Verdict = Optional[bool]

_MappingLike = Union[ClipMapping, NestedTgd]


def _as_tgd(mapping: _MappingLike) -> NestedTgd:
    if isinstance(mapping, NestedTgd):
        return mapping
    return compile_clip(mapping)


def in_decidable_fragment(mapping: _MappingLike) -> bool:
    """True when the containment check can decide on this mapping."""
    tgd = _as_tgd(mapping)
    if tgd.functions:
        return False
    for level in tgd.walk():
        if level.skolem is not None or level.grouped_var is not None:
            return False
        if any(gen.distribute for gen in level.target_gens):
            return False
        if any(
            isinstance(assignment.value, AggregateApp)
            for assignment in level.assignments
        ):
            return False
    return True


class _Names:
    """A shared fresh-name supply for one coverage comparison: matched
    binders on both sides receive the *same* fresh name, so comparing
    renamed components is exactly comparison up to alpha."""

    __slots__ = ("counter",)

    def __init__(self, counter: int = 0):
        self.counter = counter

    def fresh(self) -> str:
        name = f"h{self.counter}"
        self.counter += 1
        return name


def _covers(
    level1: TgdMapping,
    level2: TgdMapping,
    map1: dict[str, str],
    map2: dict[str, str],
    names: _Names,
) -> bool:
    """Does ``level1`` produce at least what ``level2`` produces, given
    the binder correspondence accumulated so far?"""
    if len(level1.source_gens) != len(level2.source_gens):
        return False
    if len(level1.target_gens) != len(level2.target_gens):
        return False
    for gen1, gen2 in zip(level1.source_gens, level2.source_gens):
        if rename_vars(gen1.expr, map1) != rename_vars(gen2.expr, map2):
            return False
        shared = names.fresh()
        map1[gen1.var] = shared
        map2[gen2.var] = shared
    for gen1, gen2 in zip(level1.target_gens, level2.target_gens):
        if gen1.quantified != gen2.quantified:
            return False
        if rename_vars(gen1.expr, map1) != rename_vars(gen2.expr, map2):
            return False
        shared = names.fresh()
        map1[gen1.var] = shared
        map2[gen2.var] = shared
    # where(level1) ⊆ where(level2): every conjunct the container checks
    # is also checked by the contained mapping, so the container keeps a
    # superset of the rows.
    where1 = {str(rename_condition(c, map1)) for c in level1.where}
    where2 = {str(rename_condition(c, map2)) for c in level2.where}
    if not where1 <= where2:
        return False
    # Assignments must agree exactly: the target element an iteration
    # builds must carry identical content on both sides for the
    # embedding to be label- and value-preserving.
    assigns1 = tuple(
        (str(rename_vars(a.target, map1)), str(rename_term(a.value, map1)))
        for a in level1.assignments
    )
    assigns2 = tuple(
        (str(rename_vars(a.target, map2)), str(rename_term(a.value, map2)))
        for a in level2.assignments
    )
    if assigns1 != assigns2:
        return False
    # Every submapping of the contained level must be covered by some
    # submapping of the container; extra container submappings only add
    # content, which containment permits.
    for sub2 in level2.submappings:
        if not any(
            _covers(sub1, sub2, dict(map1), dict(map2), _Names(names.counter))
            for sub1 in level1.submappings
        ):
            return False
    return True


def contains(m1: _MappingLike, m2: _MappingLike) -> Verdict:
    """Three-valued containment: does ``m1`` subsume ``m2``?

    ``True``/``False`` are proofs; ``None`` means the pair lies outside
    the decidable fragment (or the homomorphism search failed without a
    disproof, which the conservative procedure reports as unknown).
    """
    tgd1 = _as_tgd(m1)
    tgd2 = _as_tgd(m2)
    if tgd1.target_root != tgd2.target_root:
        # Different output root tags: m2's output can never embed.
        return False
    if tgd1.source_root != tgd2.source_root:
        return False
    # Alpha-equivalence is containment both ways, fragment or not.
    if canonical_render(tgd1) == canonical_render(tgd2):
        return True
    if not in_decidable_fragment(tgd1) or not in_decidable_fragment(tgd2):
        return None
    for root2 in tgd2.roots:
        if not any(
            _covers(root1, root2, {}, {}, _Names()) for root1 in tgd1.roots
        ):
            return None
    return True


def equivalent(m1: _MappingLike, m2: _MappingLike) -> Verdict:
    """Three-valued equivalence: mutual containment.

    ``True`` when containment is proved both ways (or the canonical
    normal forms coincide), ``False`` when either direction is refuted,
    ``None`` otherwise.
    """
    forward = contains(m1, m2)
    backward = contains(m2, m1)
    if forward is True and backward is True:
        return True
    if forward is False or backward is False:
        return False
    return None
