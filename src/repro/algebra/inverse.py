"""Quasi-inverses of copy-like Clip mappings, and the predicted core.

A mapping is *quasi-invertible* here when it lies in the copy-like
fragment: every build node copies one repeating source element to one
repeating target element (both immediate children of their parents'
elements), and every value mapping is an identity copy of a single
value — no scalar functions, no aggregates, no grouping.  Conditions
are allowed: they do not obstruct inversion, they only shrink what
survives the round trip.

``quasi_inverse(m)`` returns a genuine :class:`ClipMapping` from ``m``'s
target schema back to its source schema, so the inverse runs through
the ordinary compile/execute pipeline (all engines, all exec modes).

Per Arenas–Pérez–Reutter–Riveros, a mapping with conditions or dropped
attributes has no exact inverse — the best a quasi-inverse can recover
is the **core**: the sub-instance of the source that the mapping
actually transports (rows passing the filters, values that are mapped).
``core_tgd(m)`` derives that prediction *independently* of the inverse:
it rewrites ``m``'s own tgd into a source→source tgd that copies
exactly the transported sub-instance.  The round-trip oracle then
checks ``inverse(m(source))`` byte-for-byte against
``execute(core_tgd(m), source)`` — two different tgds, two different
plans, one required answer.
"""

from __future__ import annotations

from typing import Optional

from ..core.compile import compile_clip
from ..core.mapping import BuildNode, ClipMapping, ValueMapping
from ..core.tgd import (
    Assignment,
    NestedTgd,
    Proj,
    SchemaRoot,
    SourceGenerator,
    TargetGenerator,
    TgdComparison,
    TgdExpr,
    TgdMapping,
    Var,
    expr_labels,
    expr_root,
    proj_path,
)
from ..errors import InverseError
from ..xml.model import XmlElement
from ..xsd.schema import ElementDecl, ValueNode

__all__ = ["quasi_inverse", "core_tgd", "predicted_core"]


# -- fragment checks over the Clip object model ----------------------------


def _node_parents(node: BuildNode, m: ClipMapping) -> tuple[ElementDecl, ElementDecl]:
    """The (source, target) elements the node's elements must sit under."""
    if node.parent is None:
        return m.source.root, m.target.root
    return node.parent.incoming[0].source, node.parent.target


def _check_node(node: BuildNode, m: ClipMapping) -> None:
    if node.is_group:
        raise InverseError("grouping", f"group node {node!r} is not invertible")
    if len(node.incoming) != 1:
        raise InverseError("multi-builder", f"{node!r} joins several sources")
    if node.target is None:
        raise InverseError("context-only", f"{node!r} builds nothing")
    source_parent, target_parent = _node_parents(node, m)
    source = node.incoming[0].source
    if source.parent is not source_parent:
        raise InverseError(
            "deep-source",
            f"{source.path_string()} is not an immediate child of "
            f"{source_parent.path_string()}",
        )
    if node.target.parent is not target_parent:
        raise InverseError(
            "deep-target",
            f"{node.target.path_string()} is not an immediate child of "
            f"{target_parent.path_string()}",
        )
    if not node.target.is_repeating:
        raise InverseError(
            "rigid-target",
            f"{node.target.path_string()} is not repeating; the inverse "
            "could not iterate it",
        )


def _value_driver(m: ClipMapping, element: ElementDecl) -> Optional[BuildNode]:
    """The deepest build node whose source element is the element itself
    or an ancestor of it."""
    best: Optional[BuildNode] = None
    for node in m.build_nodes():
        source = node.incoming[0].source
        if source is element or source.is_ancestor_of(element):
            if best is None or source.depth() > best.incoming[0].source.depth():
                best = node
    return best


def _relative_chain(ancestor: ElementDecl, element: ElementDecl) -> list[ElementDecl]:
    """Elements strictly between ``ancestor`` and ``element`` plus the
    element itself; raises when any is repeating (the value would then
    span an iteration the inverse cannot replay)."""
    chain = [e for e in element.path() if e is not ancestor and ancestor.is_ancestor_of(e)]
    for link in chain:
        if link.is_repeating:
            raise InverseError(
                "repeating-value-path",
                f"{element.path_string()} sits under repeating "
                f"{link.path_string()}",
            )
    return chain


def _check_value(vm: ValueMapping, m: ClipMapping) -> BuildNode:
    if vm.is_aggregate or vm.function is not None or len(vm.sources) != 1:
        raise InverseError(
            "non-identity-value", f"{vm!r} is not an identity copy"
        )
    source_node = vm.sources[0]
    if not isinstance(source_node, ValueNode):
        raise InverseError("non-identity-value", f"{vm!r} reads an element")
    driver = _value_driver(m, source_node.element)
    if driver is None:
        raise InverseError(
            "undriven-value", f"{vm!r} has no covering build node"
        )
    source_base = driver.incoming[0].source
    target_base = driver.target
    if source_node.element is not source_base:
        if not source_base.is_ancestor_of(source_node.element):
            raise InverseError(
                "crossed-value",
                f"{vm!r} reads outside its driver's source subtree",
            )
        _relative_chain(source_base, source_node.element)
    if vm.target.element is not target_base:
        if not (
            target_base is vm.target.element
            or target_base.is_ancestor_of(vm.target.element)
        ):
            raise InverseError(
                "crossed-value",
                f"{vm!r} lands outside its driver's target subtree",
            )
        _relative_chain(target_base, vm.target.element)
    return driver


# -- the quasi-inverse mapping ---------------------------------------------


def quasi_inverse(m: ClipMapping) -> ClipMapping:
    """The quasi-inverse of a copy-like mapping: target schema back to
    source schema, builders and identity value mappings reversed.

    Raises :class:`InverseError` outside the invertible fragment.
    """
    for node in m.build_nodes():
        _check_node(node, m)
    drivers = [(vm, _check_value(vm, m)) for vm in m.value_mappings]
    inverse = ClipMapping(m.target, m.source)
    node_map: dict[int, BuildNode] = {}

    def mirror(node: BuildNode, parent: Optional[BuildNode]) -> None:
        inverted = inverse.build(
            node.target,
            node.incoming[0].source,
            parent=parent,
        )
        node_map[id(node)] = inverted
        for child in node.children:
            mirror(child, inverted)

    for root in m.roots:
        mirror(root, None)
    for vm, _driver in drivers:
        inverse.value(vm.target, vm.sources[0])
    return inverse


# -- the predicted core ----------------------------------------------------


def core_tgd(m: ClipMapping) -> NestedTgd:
    """A source→source tgd copying exactly what ``m`` transports.

    Derived by rewriting ``m``'s compiled tgd: each level keeps its
    source generators and filters, but rebuilds the *source* structure
    — the built element takes the source label, and every assignment
    writes the read value back to the location it was read from.
    """
    tgd = compile_clip(m)
    if tgd.functions:
        raise InverseError("grouping", "grouping Skolems are not invertible")

    def rewrite(level: TgdMapping, parent_target: Optional[str], counter: list[int]) -> TgdMapping:
        if level.skolem is not None or level.grouped_var is not None:
            raise InverseError("grouping", "grouping Skolems are not invertible")
        if len(level.source_gens) != 1:
            raise InverseError(
                "deep-source", "level iterates more than one collection"
            )
        gen = level.source_gens[0]
        labels = expr_labels(gen.expr)
        if len(labels) != 1:
            raise InverseError(
                "deep-source", f"generator {gen} skips levels"
            )
        quantified = [g for g in level.target_gens if g.quantified]
        if len(quantified) != len(level.target_gens) or len(quantified) != 1:
            raise InverseError(
                "deep-target", "level builds other than one quantified element"
            )
        built_var = quantified[0].var
        core_var = f"k{counter[0]}"
        counter[0] += 1
        base: TgdExpr = (
            SchemaRoot(tgd.source_root)
            if parent_target is None
            else Var(parent_target)
        )
        assignments = []
        for assignment in level.assignments:
            target_root = expr_root(assignment.target)
            if not isinstance(target_root, Var) or target_root.name != built_var:
                raise InverseError(
                    "crossed-value",
                    f"assignment {assignment} targets another level",
                )
            value = assignment.value
            if not isinstance(value, (SchemaRoot, Var, Proj)):
                raise InverseError(
                    "non-identity-value", f"assignment {assignment} computes"
                )
            value_root = expr_root(value)
            if not isinstance(value_root, Var) or value_root.name != gen.var:
                raise InverseError(
                    "crossed-value",
                    f"assignment {assignment} reads outside its level",
                )
            assignments.append(
                Assignment(
                    proj_path(Var(core_var), expr_labels(value)), value
                )
            )
        submappings = tuple(
            rewrite(sub, core_var, counter) for sub in level.submappings
        )
        return TgdMapping(
            source_gens=(gen,),
            where=level.where,
            target_gens=(
                TargetGenerator(core_var, Proj(base, labels[0])),
            ),
            assignments=tuple(assignments),
            submappings=submappings,
        )

    counter = [0]
    roots = tuple(rewrite(root, None, counter) for root in tgd.roots)
    return NestedTgd(
        roots=roots,
        functions=(),
        source_root=tgd.source_root,
        target_root=tgd.source_root,
    )


def predicted_core(m: ClipMapping, instance: XmlElement) -> XmlElement:
    """The round-trip prediction: the core sub-instance ``m`` transports.

    Executes :func:`core_tgd` with the reference engine settings (direct
    tgd evaluation, optimizer on) — an independent path from the
    ``m`` → ``quasi_inverse(m)`` round trip it is compared against.
    """
    from ..executor.engine import execute

    return execute(core_tgd(m), instance, optimize=True)
