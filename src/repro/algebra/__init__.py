"""Mapping algebra over nested tgds: compose, contain, invert.

Clip mappings compile to nested tgds (Section IV); this package gives
the reproduction the three algebraic operations the related work
defines on such mappings:

* :func:`compose` / :func:`compose_tgds` — Arenas–Pérez–Reutter–Riveros
  composition: an ``A→B`` and a ``B→C`` mapping fused into one ``A→C``
  tgd whose one-pass plan is byte-identical to the sequential pipeline;
* :func:`contains` / :func:`equivalent` — Calì–Torlone containment, a
  three-valued decision procedure over canonical tgd normal forms, also
  used to canonicalize plan-cache keys (``CLIP_CACHE_CANONICALIZE``);
* :func:`quasi_inverse` / :func:`predicted_core` — inversion of the
  copy-like fragment, powering the fuzz farm's source → target →
  source′ round-trip oracle.

Operations outside their decidable/symbolic fragments fail *loudly*
(:class:`repro.errors.ComposeError`, :class:`repro.errors.InverseError`)
or answer ``None`` — never silently wrong.
"""

from ..errors import AlgebraError, ComposeError, InverseError
from .compose import compose, compose_fingerprint, compose_tgds
from .containment import contains, equivalent, in_decidable_fragment
from .inverse import core_tgd, predicted_core, quasi_inverse
from .normalize import canonical_render, canonical_tgd

__all__ = [
    "AlgebraError",
    "ComposeError",
    "InverseError",
    "canonical_render",
    "canonical_tgd",
    "compose",
    "compose_fingerprint",
    "compose_tgds",
    "contains",
    "core_tgd",
    "equivalent",
    "in_decidable_fragment",
    "predicted_core",
    "quasi_inverse",
]
