"""Composition of nested tgds: ``A→B`` then ``B→C`` as one ``A→C`` tgd.

Following Arenas–Pérez–Reutter–Riveros, the composition of two schema
mappings is computed *symbolically*: every ``B``-side collection the
second mapping iterates is replaced by the first mapping's recipe for
building it (its source generators and filters), and every ``B``-side
value the second mapping reads is replaced by the term the first
mapping assigned there.  The result is a single nested tgd over ``A``
producing ``C`` directly — no intermediate instance is materialized,
and the one-pass plan is **byte-identical** to running the two
transforms in sequence:

* the first mapping appends ``B`` elements in the lexicographic order
  of its generator environments, so inlining its generator chains as
  nested loops reproduces the second mapping's iteration order exactly;
* an assignment whose value evaluates to nothing is skipped by the
  executor, and a read of the resulting absent node yields nothing —
  so dropping the corresponding composed assignment is exact.

Outside the symbolic fragment — grouping Skolems, aggregates in the
second mapping, distributed or unquantified builders in the first,
reads that cross a builder boundary — :class:`ComposeError` is raised
with a stable ``reason`` tag and callers fall back to sequential
execution.  The fallback is always available; composition is an
optimization, never a semantic gamble.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Union

from ..core.compile import compile_clip
from ..core.mapping import ClipMapping
from ..core.tgd import (
    AggregateApp,
    Assignment,
    Constant,
    FunctionApp,
    Membership,
    NestedTgd,
    Proj,
    SchemaRoot,
    SourceGenerator,
    TgdComparison,
    TgdExpr,
    TgdMapping,
    Term,
    Var,
    expr_labels,
    expr_root,
)
from ..errors import ComposeError
from .normalize import rename_condition, rename_term, rename_vars

__all__ = ["compose", "compose_tgds", "compose_fingerprint"]

_MappingLike = Union[ClipMapping, NestedTgd]

#: Marks a ``B`` location whose assigned term cannot be substituted
#: (written twice, or its value refers to variables below the builder).
_UNSAFE = object()

#: Marks a read of a ``B`` node the first mapping never writes: the
#: node is absent in every intermediate instance.
_ABSENT = object()


def _as_tgd(mapping: _MappingLike) -> NestedTgd:
    if isinstance(mapping, NestedTgd):
        return mapping
    return compile_clip(mapping)


def compose_fingerprint(first_fp: str, second_fp: str) -> str:
    """The cache fingerprint of a fused two-stage plan: a hash over the
    stage fingerprints, so the fused key inherits engine/optimize/exec
    markers (and canonicalization) from its parts."""
    payload = f"compose\n{first_fp}\n{second_fp}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


# -- indexing the first mapping's builders ---------------------------------


@dataclass
class _Entry:
    """One quantified builder of the first mapping: the recipe for a
    ``B`` collection at an absolute path below the ``B`` root."""

    path: tuple[str, ...]
    var: str
    #: Levels of the first tgd from its root down to (and including)
    #: the level that builds this entry.
    chain: tuple[TgdMapping, ...]
    #: Source variables bound along the chain.
    chain_vars: frozenset[str]
    parent: Optional["_Entry"]
    #: Relative value path → the assigned :data:`Term` (or ``_UNSAFE``).
    assignments: dict = field(default_factory=dict)


def _term_vars(term: Term) -> set[str]:
    if isinstance(term, Constant):
        return set()
    if isinstance(term, FunctionApp):
        found: set[str] = set()
        for arg in term.args:
            found |= _term_vars(arg)
        return found
    if isinstance(term, AggregateApp):
        return _term_vars(term.arg)
    root = expr_root(term)
    return {root.name} if isinstance(root, Var) else set()


def _index_first(tgd: NestedTgd) -> dict[tuple[str, ...], _Entry]:
    """Index every builder of the first mapping by its absolute ``B``
    path, rejecting shapes outside the symbolic fragment."""
    if tgd.functions:
        raise ComposeError("first-grouping", "first mapping uses grouping Skolems")
    entries: dict[tuple[str, ...], _Entry] = {}

    def walk(
        level: TgdMapping,
        chain: tuple[TgdMapping, ...],
        visible: dict[str, _Entry],
        chain_vars: set[str],
    ) -> None:
        if level.skolem is not None or level.grouped_var is not None:
            raise ComposeError("first-grouping", "first mapping uses grouping Skolems")
        new_chain = chain + (level,)
        new_vars = set(chain_vars)
        new_vars.update(gen.var for gen in level.source_gens)
        local = dict(visible)
        own_vars: set[str] = set()
        for gen in level.target_gens:
            if not gen.quantified or gen.distribute:
                raise ComposeError(
                    "first-unquantified",
                    "first mapping builds constant or distributed tags",
                )
            if not isinstance(gen.expr, Proj):
                raise ComposeError("first-shape", f"odd target generator {gen}")
            base = gen.expr.base
            if isinstance(base, SchemaRoot):
                parent_entry: Optional[_Entry] = None
                parent_path: tuple[str, ...] = ()
            elif isinstance(base, Var) and base.name in local:
                parent_entry = local[base.name]
                parent_path = parent_entry.path
            else:
                raise ComposeError("first-shape", f"odd target generator {gen}")
            path = parent_path + (gen.expr.label,)
            if path in entries:
                raise ComposeError(
                    "first-multi-builder",
                    f"two builders produce B path {'/'.join(path)}",
                )
            entry = _Entry(
                path=path,
                var=gen.var,
                chain=new_chain,
                chain_vars=frozenset(new_vars),
                parent=parent_entry,
            )
            entries[path] = entry
            local[gen.var] = entry
            own_vars.add(gen.var)
        for assignment in level.assignments:
            root = expr_root(assignment.target)
            if not isinstance(root, Var) or root.name not in local:
                raise ComposeError(
                    "first-shape", f"odd assignment target {assignment.target}"
                )
            entry = local[root.name]
            key = tuple(expr_labels(assignment.target))
            if key in entry.assignments or root.name not in own_vars:
                # Written twice, or written from a deeper level than the
                # builder (the write then depends on that level having
                # rows): not substitutable.
                entry.assignments[key] = _UNSAFE
            elif _term_vars(assignment.value) <= entry.chain_vars:
                entry.assignments[key] = assignment.value
            else:
                entry.assignments[key] = _UNSAFE
        for sub in level.submappings:
            walk(sub, new_chain, local, new_vars)

    for root in tgd.roots:
        walk(root, (), {}, set())
    return entries


# -- composing against the second mapping ----------------------------------


@dataclass
class _Site:
    """One inline site: a second-mapping variable bound to an entry,
    with the renaming of that entry's chain variables at this site."""

    entry: _Entry
    rename: dict[str, str]


class _FreshNames:
    """Composed-variable supply avoiding every name the second mapping
    already uses (its target variables survive into the composed tgd)."""

    def __init__(self, used: set[str]):
        self._used = used
        self._counter = 0

    def __call__(self) -> str:
        while True:
            name = f"z{self._counter}"
            self._counter += 1
            if name not in self._used:
                self._used.add(name)
                return name


def _used_names(tgd: NestedTgd) -> set[str]:
    used: set[str] = set()
    for level in tgd.walk():
        used.update(gen.var for gen in level.source_gens)
        used.update(gen.var for gen in level.target_gens)
        if level.skolem is not None:
            used.add(level.skolem[0])
        if level.grouped_var is not None:
            used.add(level.grouped_var)
    return used


class _Composer:
    def __init__(self, tgd_ab: NestedTgd, tgd_bc: NestedTgd):
        self.entries = _index_first(tgd_ab)
        self.fresh = _FreshNames(_used_names(tgd_bc) | _used_names(tgd_ab))

    # -- generator inlining ------------------------------------------

    def _inline_chain(
        self,
        levels: tuple[TgdMapping, ...],
        rename: dict[str, str],
        source_gens: list[SourceGenerator],
        where: list,
    ) -> None:
        """Append a builder chain's generators and filters, renaming its
        variables fresh for this inline site."""
        for level in levels:
            for gen in level.source_gens:
                expr = rename_vars(gen.expr, rename)
                fresh = self.fresh()
                source_gens.append(SourceGenerator(fresh, expr))
                rename[gen.var] = fresh
            where.extend(rename_condition(c, rename) for c in level.where)

    def _bind_generator(
        self,
        gen_expr: TgdExpr,
        sites: dict[str, _Site],
        source_gens: list[SourceGenerator],
        where: list,
    ) -> _Site:
        """Resolve one second-mapping source generator to a builder
        entry, inlining whatever part of its chain is not yet bound."""
        root = expr_root(gen_expr)
        labels = tuple(expr_labels(gen_expr))
        if isinstance(root, SchemaRoot):
            base: Optional[_Site] = None
            path = labels
        elif isinstance(root, Var) and root.name in sites:
            base = sites[root.name]
            path = base.entry.path + labels
        else:
            raise ComposeError("second-shape", f"odd generator collection {gen_expr}")
        entry = self.entries.get(path)
        if entry is None:
            raise ComposeError(
                "no-builder",
                f"second mapping iterates B path {'/'.join(path)} "
                "which the first mapping does not build",
            )
        if base is None:
            rename: dict[str, str] = {}
            suffix = entry.chain
        else:
            prefix = base.entry.chain
            if len(entry.chain) < len(prefix) or any(
                have is not want
                for have, want in zip(entry.chain[: len(prefix)], prefix)
            ):
                raise ComposeError(
                    "chain-mismatch",
                    f"builder of {'/'.join(path)} does not extend its parent's chain",
                )
            rename = dict(base.rename)
            suffix = entry.chain[len(prefix):]
        self._inline_chain(suffix, rename, source_gens, where)
        return _Site(entry=entry, rename=rename)

    # -- value substitution ------------------------------------------

    def _resolve_read(self, expr: TgdExpr, sites: dict[str, _Site]):
        """The term the first mapping assigned at the ``B`` location the
        second mapping reads — or ``_ABSENT`` when nothing writes it."""
        root = expr_root(expr)
        if not isinstance(root, Var) or root.name not in sites:
            raise ComposeError(
                "second-shape",
                f"read {expr} is not rooted in a bound generator variable",
            )
        site = sites[root.name]
        key = tuple(expr_labels(expr))
        term = site.entry.assignments.get(key)
        if term is _UNSAFE:
            raise ComposeError(
                "opaque-value", f"B value at {expr} is not substitutable"
            )
        if term is not None:
            return rename_term(term, site.rename)
        # Distinguish "never written" from "inside a nested builder":
        # a read that crosses into a deeper builder spans that builder's
        # iteration and has no single-row substitute.
        for cut in range(1, len(key) + 1):
            if site.entry.path + key[:cut] in self.entries:
                raise ComposeError(
                    "crosses-builder",
                    f"read {expr} descends into a nested builder",
                )
        return _ABSENT

    def _substitute_operand(self, operand, sites: dict[str, _Site]):
        if isinstance(operand, Constant):
            return operand
        resolved = self._resolve_read(operand, sites)
        if resolved is _ABSENT:
            raise ComposeError(
                "unassigned-condition",
                f"condition reads B value {operand} which is never written",
            )
        if isinstance(resolved, (FunctionApp, AggregateApp)):
            raise ComposeError(
                "operand-shape",
                f"condition operand {operand} substitutes to a computed term",
            )
        return resolved

    def _substitute_condition(self, condition, sites: dict[str, _Site]):
        if isinstance(condition, Membership):
            raise ComposeError(
                "second-membership", "second mapping uses membership conditions"
            )
        if isinstance(condition, TgdComparison):
            return TgdComparison(
                self._substitute_operand(condition.left, sites),
                condition.op,
                self._substitute_operand(condition.right, sites),
            )
        raise ComposeError("second-shape", f"unsupported condition {condition!r}")

    def _substitute_value(self, value: Term, sites: dict[str, _Site]):
        """The composed assignment value, or ``_ABSENT`` when the
        sequential run would skip the assignment on every row."""
        if isinstance(value, Constant):
            return value
        if isinstance(value, AggregateApp):
            raise ComposeError(
                "second-aggregate", "second mapping aggregates over B"
            )
        if isinstance(value, FunctionApp):
            args: list[TgdExpr] = []
            for arg in value.args:
                resolved = self._resolve_read(arg, sites)
                if resolved is _ABSENT:
                    # A scalar function of an absent argument is absent.
                    return _ABSENT
                if not isinstance(resolved, (SchemaRoot, Var, Proj)):
                    raise ComposeError(
                        "function-arg",
                        f"argument {arg} substitutes to a non-path term",
                    )
                args.append(resolved)
            return FunctionApp(value.function, tuple(args))
        return self._resolve_read(value, sites)

    # -- levels -------------------------------------------------------

    def compose_level(
        self, level: TgdMapping, sites: dict[str, _Site]
    ) -> TgdMapping:
        if level.skolem is not None or level.grouped_var is not None:
            raise ComposeError(
                "second-grouping", "second mapping uses grouping Skolems"
            )
        sites = dict(sites)
        source_gens: list[SourceGenerator] = []
        where: list = []
        for gen in level.source_gens:
            sites[gen.var] = self._bind_generator(
                gen.expr, sites, source_gens, where
            )
        for condition in level.where:
            where.append(self._substitute_condition(condition, sites))
        assignments: list[Assignment] = []
        for assignment in level.assignments:
            value = self._substitute_value(assignment.value, sites)
            if value is _ABSENT:
                continue  # the sequential run skips it on every row, too
            assignments.append(Assignment(assignment.target, value))
        submappings = tuple(
            self.compose_level(sub, sites) for sub in level.submappings
        )
        if not source_gens and where:
            # The executor treats a generator-less level as one
            # unconditional document-scope iteration; a filter with no
            # generators to filter cannot be expressed faithfully.
            raise ComposeError(
                "degenerate-level", "composed level filters without generators"
            )
        return TgdMapping(
            source_gens=tuple(source_gens),
            where=tuple(where),
            target_gens=level.target_gens,
            assignments=tuple(assignments),
            submappings=submappings,
        )


def compose_tgds(tgd_ab: NestedTgd, tgd_bc: NestedTgd) -> NestedTgd:
    """Symbolically compose two nested tgds into one ``A→C`` tgd.

    Raises :class:`ComposeError` (with a stable ``reason`` tag) when
    either mapping lies outside the symbolic fragment; callers should
    fall back to sequential execution in that case.
    """
    if tgd_ab.target_root != tgd_bc.source_root:
        raise ComposeError(
            "root-mismatch",
            f"first mapping produces <{tgd_ab.target_root}> but second "
            f"consumes <{tgd_bc.source_root}>",
        )
    if tgd_bc.functions:
        raise ComposeError("second-grouping", "second mapping uses grouping Skolems")
    composer = _Composer(tgd_ab, tgd_bc)
    roots = tuple(
        composer.compose_level(root, {}) for root in tgd_bc.roots
    )
    return NestedTgd(
        roots=roots,
        functions=(),
        source_root=tgd_ab.source_root,
        target_root=tgd_bc.target_root,
    )


def compose(m_ab: _MappingLike, m_bc: _MappingLike) -> NestedTgd:
    """Compose two Clip mappings (or nested tgds): the returned tgd maps
    the first mapping's source directly to the second mapping's target."""
    return compose_tgds(_as_tgd(m_ab), _as_tgd(m_bc))
