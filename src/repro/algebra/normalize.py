"""Canonical normal forms for nested tgds.

Two Clip mappings that differ only in *bound variable names* (the
``var=`` labels a user picks for builder arcs) compile to tgds that are
alpha-equivalent: they denote the same transformation and produce
byte-identical targets, because variable names never reach the output —
only the projection labels and constants do.  The same holds for the
*order of conjuncts* in a ``where`` clause: the executor filters an
enumerated environment by the conjunction, so permuting C1 cannot
change which rows survive.

``canonical_tgd`` rewrites a tgd into a normal form that is invariant
under exactly those two degrees of freedom and nothing else:

* every bound variable — source generators, target generators, grouping
  Skolems, group aliases — is renamed to ``c0, c1, …`` in one fixed
  traversal order (per root mapping: source generators, then the group
  alias, then target generators and the Skolem variable, then the
  submappings, depth-first);
* each level's ``where`` conjuncts are sorted by their rendered text.

Crucially the normal form does **not** reorder roots, generators,
assignments or submappings: the XML instance model is ordered, so those
orders are observable in the output bytes and two tgds differing there
are *not* interchangeable.

``canonical_render`` is the printable form of the normal form; the plan
cache hashes it (:func:`repro.runtime.plan.canonical_fingerprint`) so
alpha-renamed registrations share one compiled plan.
"""

from __future__ import annotations

from typing import Optional

from ..core.tgd import (
    AggregateApp,
    Assignment,
    Constant,
    FunctionApp,
    GroupByApp,
    Membership,
    NestedTgd,
    Proj,
    SourceGenerator,
    TargetGenerator,
    TgdComparison,
    TgdExpr,
    TgdMapping,
    Term,
    Var,
    render_tgd,
)

__all__ = ["canonical_tgd", "canonical_render", "rename_vars"]


class _Renamer:
    """Allocates ``c0, c1, …`` for bound names, first-come first-served."""

    __slots__ = ("mapping", "counter")

    def __init__(self):
        self.mapping: dict[str, str] = {}
        self.counter = 0

    def bind(self, name: str) -> str:
        fresh = self.mapping.get(name)
        if fresh is None:
            fresh = f"c{self.counter}"
            self.counter += 1
            self.mapping[name] = fresh
        return fresh

    def lookup(self, name: str) -> str:
        # Free names (none occur in well-formed tgds) pass through, so
        # normalization never invents a capture.
        return self.mapping.get(name, name)


def rename_vars(expr: TgdExpr, mapping: dict[str, str]) -> TgdExpr:
    """Rewrite every :class:`Var` in a projection chain through ``mapping``
    (names absent from the mapping are left untouched)."""
    if isinstance(expr, Proj):
        return Proj(rename_vars(expr.base, mapping), expr.label)
    if isinstance(expr, Var):
        return Var(mapping.get(expr.name, expr.name))
    return expr


def rename_term(term: Term, mapping: dict[str, str]) -> Term:
    """Rewrite a target-side term (expression, constant, function or
    aggregate application) through a variable renaming."""
    if isinstance(term, Constant):
        return term
    if isinstance(term, FunctionApp):
        return FunctionApp(
            term.function,
            tuple(rename_vars(arg, mapping) for arg in term.args),
        )
    if isinstance(term, AggregateApp):
        return AggregateApp(term.function, rename_vars(term.arg, mapping))
    return rename_vars(term, mapping)


def rename_condition(condition, mapping: dict[str, str]):
    """Rewrite a source condition through a variable renaming."""
    if isinstance(condition, Membership):
        return Membership(
            rename_vars(condition.member, mapping),
            rename_vars(condition.collection, mapping),
        )
    if isinstance(condition, TgdComparison):
        left = condition.left
        right = condition.right
        if not isinstance(left, Constant):
            left = rename_vars(left, mapping)
        if not isinstance(right, Constant):
            right = rename_vars(right, mapping)
        return TgdComparison(left, condition.op, right)
    raise TypeError(f"unsupported condition {condition!r}")


def _canonical_mapping(level: TgdMapping, renamer: _Renamer) -> TgdMapping:
    source_gens = []
    for gen in level.source_gens:
        # The generator expression refers only to *outer* names, so
        # rewrite it before binding the generator's own variable.
        expr = rename_vars(gen.expr, renamer.mapping)
        source_gens.append(SourceGenerator(renamer.bind(gen.var), expr))
    grouped_var = (
        renamer.bind(level.grouped_var) if level.grouped_var is not None else None
    )
    where = tuple(
        sorted(
            (rename_condition(c, renamer.mapping) for c in level.where),
            key=str,
        )
    )
    target_gens = []
    for gen in level.target_gens:
        expr = rename_vars(gen.expr, renamer.mapping)
        target_gens.append(
            TargetGenerator(
                renamer.bind(gen.var),
                expr,
                quantified=gen.quantified,
                distribute=gen.distribute,
            )
        )
    skolem: Optional[tuple[str, GroupByApp]] = None
    if level.skolem is not None:
        var, app = level.skolem
        skolem = (
            renamer.bind(var),
            GroupByApp(
                context=(
                    None
                    if app.context is None
                    else tuple(renamer.lookup(name) for name in app.context)
                ),
                attrs=tuple(rename_vars(a, renamer.mapping) for a in app.attrs),
            ),
        )
    assignments = tuple(
        Assignment(
            rename_vars(a.target, renamer.mapping),
            rename_term(a.value, renamer.mapping),
        )
        for a in level.assignments
    )
    submappings = tuple(
        _canonical_mapping(sub, renamer) for sub in level.submappings
    )
    return TgdMapping(
        source_gens=tuple(source_gens),
        where=where,
        target_gens=tuple(target_gens),
        assignments=assignments,
        submappings=submappings,
        skolem=skolem,
        grouped_var=grouped_var,
    )


def canonical_tgd(tgd: NestedTgd) -> NestedTgd:
    """The alpha-renaming / where-order normal form of a nested tgd.

    Idempotent: ``canonical_tgd(canonical_tgd(t)) == canonical_tgd(t)``.
    Each root mapping gets a fresh counter, so the normal form of a root
    does not depend on its siblings.
    """
    roots = []
    functions: list[str] = []
    for root in tgd.roots:
        renamer = _Renamer()
        roots.append(_canonical_mapping(root, renamer))
    # Function symbols name the grouping Skolems; their canonical
    # spelling is positional, mirroring the renamed skolem variables.
    for index, _name in enumerate(tgd.functions):
        functions.append(f"group-by#{index}")
    return NestedTgd(
        roots=tuple(roots),
        functions=tuple(functions),
        source_root=tgd.source_root,
        target_root=tgd.target_root,
    )


def canonical_render(tgd: NestedTgd) -> str:
    """The canonical printed form: schema roots, then the normalized tgd.

    This string — not the raw ``render_tgd`` output — is what
    canonicalized plan-cache fingerprints hash, so it embeds the source
    and target root tags (they are part of the transformation's
    identity but not of the rendered mapping body).
    """
    normal = canonical_tgd(tgd)
    return (
        f"source={normal.source_root}\n"
        f"target={normal.target_root}\n"
        f"{render_tgd(normal)}"
    )
