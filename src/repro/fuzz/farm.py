"""The differential fuzz farm: every corpus case, every engine, both
optimizer modes, dead-lettering divergences for replay.

The farm turns the corpus of :mod:`repro.generation.corpus` into a
continuous differential regression net.  For each case it executes a
*reference* combo — the tgd executor, join-aware planner on, in
process — and then cross-checks every other committed combo against
it:

* ``tgd`` with ``optimize=False`` (the naive reference path) must
  serialize **byte-identically**;
* ``tgd`` with ``exec_mode="codegen"`` (the specialized generated-
  Python backend of :mod:`repro.executor.codegen`) must serialize
  **byte-identically** — its dead-letter kit additionally captures the
  generated source (``generated.py``) for the diverging plan;
* ``xquery`` must serialize **byte-identically** (both full-coverage
  engines follow the paper's iteration order);
* ``xslt`` — probed per case via
  :func:`repro.runtime.eligible_engines`, since XSLT 1.0 covers the
  non-grouped, non-distributed subset only — must agree
  **canonically** (sibling order of unlike tags is unspecified there);
* ``workers > 1`` runs the reference engine through
  :class:`repro.runtime.BatchRunner`'s process pool and must reproduce
  the in-process bytes document-for-document;
* ``delta``-axis cases additionally run an *incremental* leg: the
  case's edit script is applied (:func:`~repro.generation.corpus
  .apply_edits`), and :func:`~repro.runtime.incremental.transform_delta`
  from the base document's target must reproduce a full recompute of
  the edited document **byte-identically** — whether it took the
  scoped path or fell back;
* ``composition``-axis cases additionally run a *compose* leg: the
  second-stage mapping carried in ``params["compose_with"]`` is
  composed with the case's own tgd
  (:func:`~repro.algebra.compose_tgds`), and the fused one-pass plan
  must reproduce the sequential two-stage execution
  **byte-identically**; when ``compose_tgds`` declines (sequential
  fallback) the leg verifies the corpus's ``expect_inlined``
  prediction instead;
* ``round-trip``-axis cases additionally run an *inversion* leg:
  :func:`~repro.algebra.quasi_inverse` is applied to the case's
  target, and the recovered source must match the
  containment-predicted core (:func:`~repro.algebra.predicted_core`)
  **byte-identically** — two independently derived tgds, one required
  answer.

Any disagreement (or an engine error where the reference succeeded)
becomes a :class:`~repro.fuzz.report.Divergence` in the
``clip-fuzz-report`` and — when a dead-letter root is given — a replay
directory holding the mapping, the source instance, both outputs, the
rendered diff, and the diverging combo's ``clip-trace``.
:func:`FuzzFarm.replay` re-runs a dead-lettered case from exactly
those artifacts.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from ..algebra import (
    compose_fingerprint,
    compose_tgds,
    predicted_core,
    quasi_inverse,
)
from ..errors import ComposeError, ReproError
from ..generation.corpus import (
    AXES,
    CorpusCase,
    apply_edits,
    generate_corpus,
    resolve_axes,
)
from ..io import load as load_mapping
from ..io import loads as loads_mapping
from ..io import save as save_mapping
from ..runtime import (
    ENGINES,
    BatchRunner,
    PlanCache,
    SpanTracer,
    eligible_engines,
    plan_from_tgd,
)
from ..runtime.incremental import transform_delta
from ..xml.diff import compute_delta, diff, render_diff
from ..xml.model import XmlElement
from ..xml.parser import parse_xml
from ..xml.serialize import to_xml
from .report import AxisCoverage, Divergence, FuzzReport

#: Manifest format written into each dead-letter case directory.
FUZZ_CASE_FORMAT = "clip-fuzz-case"
FUZZ_CASE_VERSION = 1

#: How many rendered diff lines a divergence carries in the report.
_DETAIL_LINES = 6


class FuzzError(ReproError):
    """A farm-level failure (bad configuration, unreadable case dir)."""


@dataclass(frozen=True)
class Combo:
    """One execution configuration cross-checked against the reference."""

    engine: str
    optimize: bool
    workers: int
    exec_mode: str = "interp"

    @property
    def slug(self) -> str:
        mode = "opt" if self.optimize else "naive"
        if self.exec_mode != "interp":
            mode = self.exec_mode
        return f"{self.engine}-{mode}-w{self.workers}"


@dataclass
class ReplayResult:
    """The outcome of re-running a dead-lettered case."""

    case_id: str
    combo: Combo
    diverged: bool
    differences: list[str] = field(default_factory=list)
    expected_xml: str = ""
    actual_xml: str = ""
    error: Optional[str] = None
    trace: Optional[dict] = None


class FuzzFarm:
    """Differential executor over corpus cases.

    ``engines`` defaults to every committed engine (``tgd``, ``xquery``
    and — where the per-case probe allows — ``xslt``).  ``workers``
    beyond 1 exercises the process-pool path and is markedly slower;
    the CLI and the tier-1 smoke slice keep the default ``(1,)``.
    """

    def __init__(
        self,
        *,
        engines: Optional[Sequence[str]] = None,
        optimize_modes: Sequence[bool] = (True, False),
        exec_modes: Sequence[str] = ("interp", "codegen"),
        workers: Sequence[int] = (1,),
        dead_letter_dir: Union[str, Path, None] = None,
        budget_seconds: Optional[float] = None,
        cache: Optional[PlanCache] = None,
    ):
        from ..executor.codegen import EXEC_MODES

        self.engines = tuple(engines) if engines is not None else ENGINES
        unknown = [e for e in self.engines if e not in ENGINES]
        if unknown:
            raise FuzzError(
                f"unknown engines {unknown}; choose from {', '.join(ENGINES)}"
            )
        if "tgd" not in self.engines:
            raise FuzzError("the tgd reference engine cannot be disabled")
        self.optimize_modes = tuple(optimize_modes)
        self.exec_modes = tuple(exec_modes)
        bad_modes = [m for m in self.exec_modes if m not in EXEC_MODES]
        if bad_modes:
            raise FuzzError(
                f"unknown exec modes {bad_modes}; choose from "
                f"{', '.join(EXEC_MODES)}"
            )
        if "interp" not in self.exec_modes:
            raise FuzzError("the interp reference mode cannot be disabled")
        self.workers = tuple(sorted(set(workers)))
        if any(w < 1 for w in self.workers):
            raise FuzzError(f"workers must be >= 1, got {list(workers)}")
        self.dead_letter_dir = (
            Path(dead_letter_dir) if dead_letter_dir is not None else None
        )
        self.budget_seconds = budget_seconds
        self.cache = cache if cache is not None else PlanCache(maxsize=512)

    # -- combo enumeration -------------------------------------------------

    def _combos(self, eligible: Sequence[str]) -> list[Combo]:
        """Every cross-check combo for one case, reference excluded.

        The optimizer toggle only exists on the tgd engine (xquery and
        xslt have no join-aware planner), so ``optimize=False`` is
        enumerated for tgd alone — anything else would re-run identical
        work under a different label.  Likewise ``codegen`` specializes
        the optimized tgd plan only, so it is enumerated as a fourth
        tgd-side axis (optimized, in-process).
        """
        combos: list[Combo] = []
        if False in self.optimize_modes:
            combos.append(Combo("tgd", False, 1))
        if "codegen" in self.exec_modes:
            combos.append(Combo("tgd", True, 1, "codegen"))
        for engine in ("xquery", "xslt"):
            if engine in self.engines and engine in eligible:
                combos.append(Combo(engine, True, 1))
        for w in self.workers:
            if w > 1:
                combos.append(Combo("tgd", True, w))
        return combos

    # -- execution ---------------------------------------------------------

    def _execute(
        self, case: CorpusCase, combo: Combo, *, trace: Optional[SpanTracer] = None
    ) -> XmlElement:
        if combo.workers > 1:
            runner = BatchRunner(
                case.mapping,
                engine=combo.engine,
                workers=combo.workers,
                optimize=combo.optimize,
                exec_mode=combo.exec_mode,
                cache=self.cache,
            )
            return runner.run([case.instance]).results[0]
        plan = self.cache.get_or_compile(
            case.mapping, combo.engine, optimize=combo.optimize,
            exec_mode=combo.exec_mode,
        )
        return plan.run(case.instance, trace=trace)

    def _check_case(
        self, case: CorpusCase, report: FuzzReport, coverage: AxisCoverage
    ) -> None:
        reference = self.cache.get_or_compile(
            case.mapping, "tgd", optimize=True
        )
        eligible = eligible_engines(reference.tgd)
        if "xslt" in eligible:
            coverage.xslt_eligible += 1
        expected = reference(case.instance)
        expected_xml = to_xml(expected)
        report.executions += 1
        for combo in self._combos(eligible):
            report.executions += 1
            report.comparisons += 1
            try:
                actual = self._execute(case, combo)
            except ReproError as exc:
                self._record(
                    case, combo, report,
                    kind="error",
                    detail=(f"{type(exc).__name__}: {exc}",),
                    expected=expected,
                )
                continue
            if combo.engine == "xslt":
                agree = expected.equals_canonically(actual)
                kind = "canonical"
            else:
                agree = expected_xml == to_xml(actual)
                kind = "bytes"
            if not agree:
                differences = diff(expected.canonical(), actual.canonical())
                if not differences:
                    # Canonically equal, byte-different: show the
                    # document-order diff instead.
                    differences = diff(expected, actual)
                detail = tuple(
                    render_diff(differences).splitlines()[:_DETAIL_LINES]
                )
                self._record(
                    case, combo, report,
                    kind=kind,
                    detail=detail,
                    expected=expected,
                    actual=actual,
                )
        if case.params.get("edits"):
            self._check_incremental(case, reference, expected, report)
        if case.params.get("compose_with"):
            self._check_composition(case, reference, expected, report)
        if case.params.get("round_trip"):
            self._check_roundtrip(case, expected, report)

    def _check_composition(
        self, case: CorpusCase, reference, expected: XmlElement,
        report: FuzzReport,
    ) -> None:
        """The ``composition``-axis leg: compose the case's ``A→B`` tgd
        with the ``B→C`` stage in ``params["compose_with"]`` and
        cross-check the fused one-pass plan against sequential
        two-stage execution, byte for byte."""
        combo = Combo("tgd", True, 1, "compose")
        report.compose_checks += 1
        second = loads_mapping(case.params["compose_with"])
        second_plan = self.cache.get_or_compile(
            second, "tgd", optimize=True
        )
        report.executions += 1
        sequential = second_plan(expected)
        expect_inlined = bool(case.params.get("expect_inlined"))
        try:
            fused_tgd = compose_tgds(reference.tgd, second_plan.tgd)
        except ComposeError as exc:
            report.compose_fallbacks += 1
            if expect_inlined:
                self._record(
                    case, combo, report,
                    kind="error",
                    detail=(
                        "compose declined where the corpus predicted"
                        " inlining",
                        f"{type(exc).__name__}: {exc}",
                    ),
                    expected=sequential,
                )
            return
        report.compose_inlined += 1
        report.executions += 1
        report.comparisons += 1
        if not expect_inlined:
            self._record(
                case, combo, report,
                kind="error",
                detail=(
                    "compose inlined where the corpus predicted a"
                    " sequential fallback",
                ),
                expected=sequential,
            )
            return
        fp = compose_fingerprint(
            self.cache.fingerprint_for(case.mapping, "tgd", optimize=True),
            self.cache.fingerprint_for(second, "tgd", optimize=True),
        )
        try:
            fused_plan = plan_from_tgd(
                fused_tgd, "tgd", fp=fp, optimize=True
            )
            actual = fused_plan.run(case.instance)
        except ReproError as exc:
            self._record(
                case, combo, report,
                kind="error",
                detail=(f"{type(exc).__name__}: {exc}",),
                expected=sequential,
            )
            return
        if to_xml(sequential) != to_xml(actual):
            differences = diff(sequential.canonical(), actual.canonical())
            if not differences:
                differences = diff(sequential, actual)
            detail = tuple(
                render_diff(differences).splitlines()[:_DETAIL_LINES]
            )
            self._record(
                case, combo, report,
                kind="bytes",
                detail=detail,
                expected=sequential,
                actual=actual,
            )

    def _check_roundtrip(
        self, case: CorpusCase, expected: XmlElement, report: FuzzReport
    ) -> None:
        """The ``round-trip``-axis leg: run the quasi-inverse over the
        case's target and cross-check the recovered source against the
        independently derived containment-predicted core."""
        combo = Combo("tgd", True, 1, "round-trip")
        report.round_trip_checks += 1
        report.executions += 2
        report.comparisons += 1
        try:
            inverse = quasi_inverse(case.mapping)
            inverse_plan = self.cache.get_or_compile(
                inverse, "tgd", optimize=True
            )
            actual = inverse_plan(expected)
            predicted = predicted_core(case.mapping, case.instance)
        except ReproError as exc:
            self._record(
                case, combo, report,
                kind="error",
                detail=(f"{type(exc).__name__}: {exc}",),
                expected=expected,
            )
            return
        if to_xml(predicted) != to_xml(actual):
            differences = diff(predicted.canonical(), actual.canonical())
            if not differences:
                differences = diff(predicted, actual)
            detail = tuple(
                render_diff(differences).splitlines()[:_DETAIL_LINES]
            )
            self._record(
                case, combo, report,
                kind="bytes",
                detail=detail,
                expected=predicted,
                actual=actual,
            )

    def _check_incremental(
        self, case: CorpusCase, reference, prev_target: XmlElement,
        report: FuzzReport,
    ) -> None:
        """The ``delta``-axis leg: apply the case's edit script and
        cross-check :func:`transform_delta` (from the base document's
        previous target) against a full recompute of the edited one."""
        combo = Combo("tgd", True, 1, "incremental")
        report.executions += 2
        report.comparisons += 1
        report.incremental_checks += 1
        edited = apply_edits(case.instance, case.params["edits"])
        expected = reference(edited)
        try:
            delta = compute_delta(case.instance, edited)
            actual, inc_report = transform_delta(
                reference, case.instance, prev_target, delta,
                new_source=edited,
            )
        except ReproError as exc:
            self._record(
                case, combo, report,
                kind="error",
                detail=(f"{type(exc).__name__}: {exc}",),
                expected=expected,
            )
            return
        if inc_report.incremental:
            report.incremental_hits += 1
        else:
            report.incremental_fallbacks += 1
        if to_xml(expected) != to_xml(actual):
            differences = diff(expected.canonical(), actual.canonical())
            if not differences:
                differences = diff(expected, actual)
            detail = tuple(
                render_diff(differences).splitlines()[:_DETAIL_LINES]
            )
            self._record(
                case, combo, report,
                kind="bytes",
                detail=detail,
                expected=expected,
                actual=actual,
            )

    def _record(
        self,
        case: CorpusCase,
        combo: Combo,
        report: FuzzReport,
        *,
        kind: str,
        detail: tuple[str, ...],
        expected: XmlElement,
        actual: Optional[XmlElement] = None,
    ) -> None:
        letter_name = None
        if self.dead_letter_dir is not None:
            letter_name = self._dead_letter(
                case, combo, kind=kind, detail=detail,
                expected=expected, actual=actual,
            )
        report.divergences.append(
            Divergence(
                case_id=case.case_id,
                axis=case.axis,
                engine=combo.engine,
                optimize=combo.optimize,
                workers=combo.workers,
                kind=kind,
                detail=detail,
                dead_letter=letter_name,
                exec_mode=combo.exec_mode,
            )
        )

    # -- dead letters ------------------------------------------------------

    def _dead_letter(
        self,
        case: CorpusCase,
        combo: Combo,
        *,
        kind: str,
        detail: tuple[str, ...],
        expected: XmlElement,
        actual: Optional[XmlElement],
    ) -> str:
        assert self.dead_letter_dir is not None
        name = f"{case.case_id}--{combo.slug}"
        directory = self.dead_letter_dir / name
        directory.mkdir(parents=True, exist_ok=True)
        save_mapping(case.mapping, str(directory / "mapping.json"))
        (directory / "source.xml").write_text(
            to_xml(case.instance), encoding="utf-8"
        )
        (directory / "expected.xml").write_text(
            to_xml(expected), encoding="utf-8"
        )
        if actual is not None:
            (directory / "actual.xml").write_text(
                to_xml(actual), encoding="utf-8"
            )
        trace = self._capture_trace(case, combo)
        if trace is not None:
            (directory / "trace.json").write_text(
                json.dumps(trace, indent=2, sort_keys=True), encoding="utf-8"
            )
        if combo.exec_mode == "codegen":
            source = self._generated_source(case)
            if source is not None:
                (directory / "generated.py").write_text(
                    source, encoding="utf-8"
                )
        manifest = {
            "format": FUZZ_CASE_FORMAT,
            "version": FUZZ_CASE_VERSION,
            "case_id": case.case_id,
            "axis": case.axis,
            "seed": case.seed,
            "index": case.index,
            "params": dict(case.params),
            "fingerprint": case.fingerprint(),
            "combo": {
                "engine": combo.engine,
                "optimize": combo.optimize,
                "workers": combo.workers,
                "exec_mode": combo.exec_mode,
            },
            "kind": kind,
            "detail": list(detail),
        }
        (directory / "case.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
        )
        return name

    def _capture_trace(self, case: CorpusCase, combo: Combo) -> Optional[dict]:
        """Re-run the diverging combo under a tracer, best effort.

        Pool combos fall back to an in-process traced run — the pool
        merges worker spans already, but a deterministic single-process
        trace is the more useful replay artifact.
        """
        tracer = SpanTracer()
        try:
            plan = self.cache.get_or_compile(
                case.mapping, combo.engine, optimize=combo.optimize,
                exec_mode=combo.exec_mode,
            )
            plan.run(case.instance, trace=tracer)
        except ReproError:
            pass  # the error itself is in the manifest
        trace = tracer.to_trace()
        return trace.to_dict() if trace.spans else None

    def _generated_source(self, case: CorpusCase) -> Optional[str]:
        """The codegen backend's generated Python for this case's plan,
        best effort — the replay kit's most useful artifact when the
        specialized program disagrees with the interpreter."""
        try:
            plan = self.cache.get_or_compile(
                case.mapping, "tgd", optimize=True, exec_mode="codegen"
            )
        except ReproError:
            return None
        if plan.tgd_plan is None or plan.tgd_plan.program is None:
            return None
        return plan.tgd_plan.program.source

    # -- entry points ------------------------------------------------------

    def run(self, cases: Iterable[CorpusCase], report: FuzzReport) -> FuzzReport:
        """Cross-check ``cases``, mutating and returning ``report``."""
        started = time.monotonic()
        pending = list(cases)
        report.cases = len(pending)
        for axis in report.axes:
            report.axis_coverage.setdefault(axis, AxisCoverage())
        for case in pending:
            coverage = report.axis_coverage.setdefault(
                case.axis, AxisCoverage()
            )
            coverage.cases += 1
        for position, case in enumerate(pending):
            if self.budget_seconds is not None and (
                time.monotonic() - started >= self.budget_seconds
            ):
                report.exhausted_budget = True
                report.skipped = len(pending) - position
                break
            coverage = report.axis_coverage[case.axis]
            self._check_case(case, report, coverage)
            coverage.executed += 1
        return report

    def run_corpus(
        self,
        seed: int = 7,
        count: int = 100,
        *,
        axes: Optional[Sequence[str]] = None,
    ) -> FuzzReport:
        """Generate the ``(seed, count, axes)`` corpus and cross-check it."""
        selected = resolve_axes(axes)
        report = FuzzReport(
            seed=seed,
            count=count,
            axes=selected,
            engines=self.engines,
            optimize_modes=self.optimize_modes,
            workers=self.workers,
            exec_modes=self.exec_modes,
            budget_seconds=self.budget_seconds,
        )
        return self.run(generate_corpus(seed, count, axes=selected), report)

    # -- replay ------------------------------------------------------------

    def replay(self, case_dir: Union[str, Path]) -> ReplayResult:
        """Re-run one dead-lettered divergence from its artifacts.

        Loads the persisted mapping and source instance, re-executes
        the reference and the recorded combo, and reports whether the
        divergence still reproduces — after an engine fix, a replay
        comes back clean.
        """
        directory = Path(case_dir)
        manifest_path = directory / "case.json"
        if not manifest_path.is_file():
            raise FuzzError(f"no case.json in {directory}")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("format") != FUZZ_CASE_FORMAT:
            raise FuzzError(
                f"{manifest_path} is not a {FUZZ_CASE_FORMAT} document"
            )
        mapping = load_mapping(str(directory / "mapping.json"))
        instance = parse_xml(
            (directory / "source.xml").read_text(encoding="utf-8"),
            mapping.source,
        )
        combo = Combo(
            engine=manifest["combo"]["engine"],
            optimize=bool(manifest["combo"]["optimize"]),
            workers=int(manifest["combo"]["workers"]),
            # Pre-codegen kits carry no exec_mode; default to interp.
            exec_mode=manifest["combo"].get("exec_mode", "interp"),
        )
        case = CorpusCase(
            case_id=manifest["case_id"],
            axis=manifest["axis"],
            seed=manifest["seed"],
            index=manifest["index"],
            mapping=mapping,
            instance=instance,
            params=manifest.get("params", {}),
        )
        reference = self.cache.get_or_compile(mapping, "tgd", optimize=True)
        if combo.exec_mode == "incremental":
            return self._replay_incremental(case, combo, reference)
        if combo.exec_mode == "compose":
            return self._replay_composition(case, combo, reference)
        if combo.exec_mode == "round-trip":
            return self._replay_roundtrip(case, combo, reference)
        expected = reference(instance)
        expected_xml = to_xml(expected)
        tracer = SpanTracer()
        try:
            actual = self._execute(case, combo, trace=tracer if combo.workers == 1 else None)
        except ReproError as exc:
            return ReplayResult(
                case_id=case.case_id,
                combo=combo,
                diverged=True,
                expected_xml=expected_xml,
                error=f"{type(exc).__name__}: {exc}",
                trace=None,
            )
        if combo.engine == "xslt":
            diverged = not expected.equals_canonically(actual)
        else:
            diverged = expected_xml != to_xml(actual)
        differences = []
        if diverged:
            rendered = render_diff(diff(expected.canonical(), actual.canonical()))
            differences = rendered.splitlines()
        trace = tracer.to_trace()
        return ReplayResult(
            case_id=case.case_id,
            combo=combo,
            diverged=diverged,
            differences=differences,
            expected_xml=expected_xml,
            actual_xml=to_xml(actual),
            trace=trace.to_dict() if trace.spans else None,
        )

    def _replay_composition(
        self, case: CorpusCase, combo: Combo, reference
    ) -> ReplayResult:
        """Replay a ``composition``-axis kit: re-derive the fused plan
        from the manifest's second-stage mapping and re-check it
        against sequential two-stage execution."""
        second = loads_mapping(case.params["compose_with"])
        second_plan = self.cache.get_or_compile(second, "tgd", optimize=True)
        expected = second_plan(reference(case.instance))
        expected_xml = to_xml(expected)
        try:
            fused_tgd = compose_tgds(reference.tgd, second_plan.tgd)
            fp = compose_fingerprint(
                self.cache.fingerprint_for(
                    case.mapping, "tgd", optimize=True
                ),
                self.cache.fingerprint_for(second, "tgd", optimize=True),
            )
            fused_plan = plan_from_tgd(fused_tgd, "tgd", fp=fp, optimize=True)
            actual = fused_plan.run(case.instance)
        except ReproError as exc:
            return ReplayResult(
                case_id=case.case_id,
                combo=combo,
                diverged=bool(case.params.get("expect_inlined")),
                expected_xml=expected_xml,
                error=f"{type(exc).__name__}: {exc}",
            )
        diverged = expected_xml != to_xml(actual)
        differences = []
        if diverged:
            rendered = render_diff(
                diff(expected.canonical(), actual.canonical())
            )
            differences = rendered.splitlines()
        return ReplayResult(
            case_id=case.case_id,
            combo=combo,
            diverged=diverged,
            differences=differences,
            expected_xml=expected_xml,
            actual_xml=to_xml(actual),
        )

    def _replay_roundtrip(
        self, case: CorpusCase, combo: Combo, reference
    ) -> ReplayResult:
        """Replay a ``round-trip``-axis kit: re-run the quasi-inverse
        over the target and re-check against the predicted core."""
        target = reference(case.instance)
        try:
            expected = predicted_core(case.mapping, case.instance)
        except ReproError as exc:
            return ReplayResult(
                case_id=case.case_id,
                combo=combo,
                diverged=True,
                error=f"{type(exc).__name__}: {exc}",
            )
        expected_xml = to_xml(expected)
        try:
            inverse = quasi_inverse(case.mapping)
            inverse_plan = self.cache.get_or_compile(
                inverse, "tgd", optimize=True
            )
            actual = inverse_plan(target)
        except ReproError as exc:
            return ReplayResult(
                case_id=case.case_id,
                combo=combo,
                diverged=True,
                expected_xml=expected_xml,
                error=f"{type(exc).__name__}: {exc}",
            )
        diverged = expected_xml != to_xml(actual)
        differences = []
        if diverged:
            rendered = render_diff(
                diff(expected.canonical(), actual.canonical())
            )
            differences = rendered.splitlines()
        return ReplayResult(
            case_id=case.case_id,
            combo=combo,
            diverged=diverged,
            differences=differences,
            expected_xml=expected_xml,
            actual_xml=to_xml(actual),
        )

    def _replay_incremental(
        self, case: CorpusCase, combo: Combo, reference
    ) -> ReplayResult:
        """Replay a ``delta``-axis kit: re-derive the edited document
        from the manifest's edit script and re-check the incremental
        path against the full recompute."""
        edited = apply_edits(case.instance, case.params.get("edits", []))
        prev_target = reference(case.instance)
        expected = reference(edited)
        expected_xml = to_xml(expected)
        try:
            delta = compute_delta(case.instance, edited)
            actual, _ = transform_delta(
                reference, case.instance, prev_target, delta,
                new_source=edited,
            )
        except ReproError as exc:
            return ReplayResult(
                case_id=case.case_id,
                combo=combo,
                diverged=True,
                expected_xml=expected_xml,
                error=f"{type(exc).__name__}: {exc}",
            )
        diverged = expected_xml != to_xml(actual)
        differences = []
        if diverged:
            rendered = render_diff(
                diff(expected.canonical(), actual.canonical())
            )
            differences = rendered.splitlines()
        return ReplayResult(
            case_id=case.case_id,
            combo=combo,
            diverged=diverged,
            differences=differences,
            expected_xml=expected_xml,
            actual_xml=to_xml(actual),
        )


def run_fuzz(
    seed: int = 7,
    count: int = 100,
    *,
    axes: Optional[Sequence[str]] = None,
    workers: Sequence[int] = (1,),
    exec_modes: Sequence[str] = ("interp", "codegen"),
    budget_seconds: Optional[float] = None,
    dead_letter_dir: Union[str, Path, None] = None,
    cache: Optional[PlanCache] = None,
) -> FuzzReport:
    """One-call farm run over the ``(seed, count, axes)`` corpus."""
    farm = FuzzFarm(
        workers=workers,
        exec_modes=exec_modes,
        budget_seconds=budget_seconds,
        dead_letter_dir=dead_letter_dir,
        cache=cache,
    )
    return farm.run_corpus(seed, count, axes=axes)


__all__ = [
    "AXES",
    "Combo",
    "FuzzError",
    "FuzzFarm",
    "ReplayResult",
    "run_fuzz",
]
