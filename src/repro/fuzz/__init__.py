"""Continuous differential fuzzing across engines and optimizer modes.

* :mod:`repro.fuzz.farm` — :class:`FuzzFarm`, the differential runner:
  every corpus case through tgd (optimized and naive), XQuery, XSLT
  (where eligible) and the process-pool path, dead-lettering any
  divergence with its ``clip-trace`` for replay;
* :mod:`repro.fuzz.report` — the byte-deterministic
  ``clip-fuzz-report`` v1 document (``docs/FORMATS.md`` §9).

Quickstart::

    from repro.fuzz import run_fuzz

    report = run_fuzz(seed=7, count=100, dead_letter_dir="dead-letters")
    assert report.status == "ok", report.to_json()
"""

from __future__ import annotations

from .farm import Combo, FuzzError, FuzzFarm, ReplayResult, run_fuzz
from .report import (
    FUZZ_REPORT_FORMAT,
    FUZZ_REPORT_VERSION,
    PARSEABLE_FUZZ_VERSIONS,
    AxisCoverage,
    Divergence,
    FuzzReport,
    parse_report,
)

__all__ = [
    "AxisCoverage",
    "Combo",
    "Divergence",
    "FUZZ_REPORT_FORMAT",
    "FUZZ_REPORT_VERSION",
    "FuzzError",
    "FuzzFarm",
    "FuzzReport",
    "PARSEABLE_FUZZ_VERSIONS",
    "ReplayResult",
    "parse_report",
    "run_fuzz",
]
