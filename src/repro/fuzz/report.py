"""The ``clip-fuzz-report`` document: one fuzz run, machine readable.

Format v1 (specified in ``docs/FORMATS.md`` §9) summarizes a farm run:
the seed window, per-axis coverage, every engine/optimize/workers combo
exercised, and each divergence with a pointer to its dead-letter case
directory.  The report is *byte-deterministic*: it carries no wall
clocks, host names or absolute paths, so re-running the same seed
window over the same code yields the identical document — which is the
regression contract CI diffs against.

The only sanctioned nondeterminism is budget truncation: a run under
``--budget-seconds`` may stop early, and ``exhausted_budget`` +
``skipped`` record that honestly.  Unbudgeted runs of the same seed
window are byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

FUZZ_REPORT_FORMAT = "clip-fuzz-report"
FUZZ_REPORT_VERSION = 1

#: Versions :func:`parse_report` accepts.
PARSEABLE_FUZZ_VERSIONS = (1,)


@dataclass(frozen=True)
class Divergence:
    """One combo whose output disagreed with the reference execution."""

    case_id: str
    axis: str
    engine: str
    optimize: bool
    workers: int
    #: ``"bytes"`` (tgd/xquery serialize differently) or ``"canonical"``
    #: (XSLT disagrees even modulo sibling order) or ``"error"`` (the
    #: combo raised where the reference succeeded).
    kind: str
    #: First few rendered difference lines (or the error message).
    detail: tuple[str, ...] = ()
    #: Dead-letter case directory name (not an absolute path), when the
    #: farm was given a dead-letter root.
    dead_letter: Optional[str] = None
    #: The combo's execution mode: ``"interp"`` or ``"codegen"``
    #: (additive in format v1; absent readers default to interp).
    exec_mode: str = "interp"

    def to_dict(self) -> dict:
        out: dict = {
            "case_id": self.case_id,
            "axis": self.axis,
            "engine": self.engine,
            "optimize": self.optimize,
            "exec_mode": self.exec_mode,
            "workers": self.workers,
            "kind": self.kind,
            "detail": list(self.detail),
        }
        if self.dead_letter is not None:
            out["dead_letter"] = self.dead_letter
        return out


@dataclass
class AxisCoverage:
    """How thoroughly one corpus axis was exercised."""

    cases: int = 0
    executed: int = 0
    xslt_eligible: int = 0

    def to_dict(self) -> dict:
        return {
            "cases": self.cases,
            "executed": self.executed,
            "xslt_eligible": self.xslt_eligible,
        }


@dataclass
class FuzzReport:
    """The full run summary; serialize with :meth:`to_json`."""

    seed: int
    count: int
    axes: Sequence[str]
    engines: Sequence[str]
    optimize_modes: Sequence[bool]
    workers: Sequence[int]
    exec_modes: Sequence[str] = ("interp",)
    cases: int = 0
    executions: int = 0
    comparisons: int = 0
    #: Incremental (``delta``-axis) legs: transform_delta cross-checked
    #: against a full recompute of the edited document.  Additive in
    #: format v1, like ``exec_mode``.
    incremental_checks: int = 0
    incremental_hits: int = 0
    incremental_fallbacks: int = 0
    #: Composition (``composition``-axis) legs: the fused one-pass plan
    #: cross-checked byte-for-byte against sequential two-stage
    #: execution.  ``compose_inlined``/``compose_fallbacks`` split the
    #: checks by whether :func:`~repro.algebra.compose_tgds` produced a
    #: fused tgd or declined (sequential fallback).  Additive in v1.
    compose_checks: int = 0
    compose_inlined: int = 0
    compose_fallbacks: int = 0
    #: Round-trip (``round-trip``-axis) legs: source → target →
    #: quasi-inverse(source′) cross-checked against the
    #: containment-predicted core.  Additive in v1.
    round_trip_checks: int = 0
    budget_seconds: Optional[float] = None
    exhausted_budget: bool = False
    skipped: int = 0
    axis_coverage: Mapping[str, AxisCoverage] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def status(self) -> str:
        return "divergent" if self.divergences else "ok"

    def to_dict(self) -> dict:
        return {
            "format": FUZZ_REPORT_FORMAT,
            "version": FUZZ_REPORT_VERSION,
            "seed": self.seed,
            "count": self.count,
            "axes": list(self.axes),
            "engines": list(self.engines),
            "optimize_modes": list(self.optimize_modes),
            "exec_modes": list(self.exec_modes),
            "workers": list(self.workers),
            "cases": self.cases,
            "executions": self.executions,
            "comparisons": self.comparisons,
            "incremental_checks": self.incremental_checks,
            "incremental_hits": self.incremental_hits,
            "incremental_fallbacks": self.incremental_fallbacks,
            "compose_checks": self.compose_checks,
            "compose_inlined": self.compose_inlined,
            "compose_fallbacks": self.compose_fallbacks,
            "round_trip_checks": self.round_trip_checks,
            "budget_seconds": self.budget_seconds,
            "exhausted_budget": self.exhausted_budget,
            "skipped": self.skipped,
            "axis_coverage": {
                axis: cov.to_dict()
                for axis, cov in sorted(self.axis_coverage.items())
            },
            "divergences": [d.to_dict() for d in self.divergences],
            "status": self.status,
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def parse_report(text: str) -> dict:
    """Validate and load a ``clip-fuzz-report`` document."""
    document = json.loads(text)
    if document.get("format") != FUZZ_REPORT_FORMAT:
        raise ValueError(
            f"not a {FUZZ_REPORT_FORMAT} document: "
            f"format={document.get('format')!r}"
        )
    version = document.get("version")
    if version not in PARSEABLE_FUZZ_VERSIONS:
        raise ValueError(
            f"unsupported {FUZZ_REPORT_FORMAT} version {version!r}; "
            f"parseable: {PARSEABLE_FUZZ_VERSIONS}"
        )
    return document
