"""Persistence: mapping documents (save/load Clip projects as JSON)."""

from .documents import dumps, from_document, load, loads, save, to_document

__all__ = ["dumps", "loads", "save", "load", "to_document", "from_document"]
