"""Persistent mapping documents.

A schema-mapping tool must save and reload what the user drew.  This
module serializes a complete mapping project — the two schemas and the
Clip mapping (value mappings, builders, build/group nodes, context
arcs, conditions, functions) — to a JSON document, and loads it back.

The format is deliberately explicit and version-tagged::

    {
      "format": "clip-mapping",
      "version": 1,
      "source": "<xsd text>",
      "target": "<xsd text>",
      "value_mappings": [
        {"sources": ["dept/regEmp/ename/text()"], "target": "…/@name",
         "function": null, "aggregate": null}, …
      ],
      "build_nodes": [
        {"id": 0, "parent": null, "sources": ["dept"], "variables": ["d"],
         "target": "department", "condition": null, "group_by": []}, …
      ]
    }

Schemas travel as embedded XSD text (the subset of
:mod:`repro.xsd.parser`), so a document is self-contained.
Round-trip property: ``loads(dumps(clip))`` reproduces the mapping —
same compiled tgd, same transformation results.
"""

from __future__ import annotations

import json

from ..core.functions import aggregate as _aggregate, scalar as _scalar
from ..core.mapping import BuildNode, ClipMapping, ValueMapping
from ..errors import MappingError
from ..xsd.parser import parse_xsd, to_xsd
from ..xsd.schema import ElementDecl, Schema, ValueNode

FORMAT = "clip-mapping"
VERSION = 1


def _node_path(node) -> str:
    """A loadable path for a schema node (without the root segment)."""
    if isinstance(node, ValueNode):
        inner = "/".join(node.element.path_string().split("/")[1:])
        leaf = f"@{node.attribute}" if node.attribute is not None else "text()"
        return f"{inner}/{leaf}" if inner else leaf
    return "/".join(node.path_string().split("/")[1:])


def _dump_value_mapping(vm: ValueMapping) -> dict:
    return {
        "sources": [_node_path(s) for s in vm.sources],
        "target": _node_path(vm.target),
        "function": vm.function.name if vm.function else None,
        "aggregate": vm.aggregate.name if vm.aggregate else None,
    }


def _dump_build_nodes(clip: ClipMapping) -> list[dict]:
    entries: list[dict] = []
    ids: dict[int, int] = {}
    for node in clip.build_nodes():  # pre-order: parents precede children
        ids[id(node)] = len(entries)
        entries.append(
            {
                "id": ids[id(node)],
                "parent": ids[id(node.parent)] if node.parent is not None else None,
                "sources": [_node_path(arc.source) for arc in node.incoming],
                "variables": [arc.variable for arc in node.incoming],
                "target": _node_path(node.target) if node.target is not None else None,
                "condition": str(node.condition) if node.condition else None,
                "group_by": [str(g) for g in node.grouping],
            }
        )
    return entries


def to_document(clip: ClipMapping) -> dict:
    """Serialize a mapping project to a plain dict (JSON-ready)."""
    return {
        "format": FORMAT,
        "version": VERSION,
        "source": to_xsd(clip.source),
        "target": to_xsd(clip.target),
        "value_mappings": [_dump_value_mapping(vm) for vm in clip.value_mappings],
        "build_nodes": _dump_build_nodes(clip),
    }


def dumps(clip: ClipMapping, *, indent: int = 2) -> str:
    """Serialize a mapping project to JSON text."""
    return json.dumps(to_document(clip), indent=indent)


def _load_value_source(schema: Schema, path: str, aggregate: bool):
    node = schema.node(path)
    if isinstance(node, ElementDecl) and not aggregate:
        raise MappingError(
            f"value-mapping source {path!r} is an element but the mapping "
            "carries no aggregate"
        )
    return node


def from_document(document: dict) -> ClipMapping:
    """Rebuild a mapping project from a dict produced by :func:`to_document`."""
    if document.get("format") != FORMAT:
        raise MappingError(
            f"not a {FORMAT} document (format={document.get('format')!r})"
        )
    if document.get("version") != VERSION:
        raise MappingError(
            f"unsupported document version {document.get('version')!r}"
        )
    source = parse_xsd(document["source"])
    target = parse_xsd(document["target"])
    clip = ClipMapping(source, target)

    for entry in document.get("value_mappings", ()):
        aggregate_name = entry.get("aggregate")
        function_name = entry.get("function")
        sources = [
            _load_value_source(source, path, aggregate_name is not None)
            for path in entry["sources"]
        ]
        vm = ValueMapping(
            sources,
            target.value(entry["target"]),
            function=_scalar(function_name) if function_name else None,
            aggregate=_aggregate(aggregate_name) if aggregate_name else None,
        )
        clip.value_mappings.append(vm)

    nodes: dict[int, BuildNode] = {}
    for entry in document.get("build_nodes", ()):
        parent_id = entry.get("parent")
        parent = None
        if parent_id is not None:
            try:
                parent = nodes[parent_id]
            except KeyError:
                raise MappingError(
                    f"build node {entry.get('id')} refers to unknown parent "
                    f"{parent_id}"
                ) from None
        grouping = entry.get("group_by") or []
        kwargs = dict(
            var=entry.get("variables"),
            condition=entry.get("condition"),
            parent=parent,
        )
        if entry.get("target") is None:
            if grouping:
                raise MappingError("a group node requires an outgoing builder")
            node = clip.context(entry["sources"], **kwargs)
        elif grouping:
            node = clip.group(entry["sources"], entry["target"], by=grouping, **kwargs)
        else:
            node = clip.build(entry["sources"], entry["target"], **kwargs)
        nodes[entry["id"]] = node
    return clip


def loads(text: str) -> ClipMapping:
    """Rebuild a mapping project from JSON text."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise MappingError(f"malformed mapping document: {exc}") from exc
    return from_document(document)


def save(clip: ClipMapping, path: str) -> None:
    """Write a mapping project to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(clip))


def load(path: str) -> ClipMapping:
    """Read a mapping project from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
