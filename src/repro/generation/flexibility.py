"""Flexibility measurement — the machinery behind Table I.

"The main 'performance' metric for Clip is the number of legal Clip
mappings that can be generated for a given set of value mappings. …
Table I shows a lower-bound of how many more different meaningful
mappings we could draw using Clip starting from the same value
mappings" (Section VII).

:func:`measure_flexibility` makes this operational:

1. enumerate the Clip mappings a user could draw over the given value
   mappings — builders for every mapped target, optional context
   builders for shared ancestors, context-arc toggles, group-node
   toggles (grouped by the element's own mapped value), and join-
   condition toggles where a referential constraint suggests one;
2. keep the candidates that pass the Section III validity rules and
   compile;
3. execute each on a witness instance and identify *meaningful,
   different* mappings with distinct canonical outputs;
4. compare against the outputs of Clio's own generation (the nested
   mappings of [2]): the *extra* count is the number of distinct Clip
   outputs that Clio's generation cannot produce.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..core.compile import compile_clip
from ..core.mapping import BuildNode, ClipMapping, ValueMapping
from ..core.validity import check as check_validity
from ..errors import ReproError
from ..executor import execute
from ..xml.model import XmlElement
from ..xsd.constraints import suggest_join
from ..xsd.schema import ElementDecl, Schema
from .clio import generate_clio


@dataclass(frozen=True)
class Candidate:
    """One enumerated Clip mapping with a human-readable description."""

    description: str
    clip: ClipMapping


@dataclass
class FlexibilityResult:
    """The outcome of a flexibility measurement."""

    candidates_total: int
    candidates_valid: int
    clio_outputs: list
    clip_outputs: list
    #: Distinct valid Clip outputs that Clio's generation cannot produce.
    extra_descriptions: list[str] = field(default_factory=list)

    @property
    def extra(self) -> int:
        return len(self.extra_descriptions)


# -- planning ---------------------------------------------------------------


def _deepest_repeating(element: ElementDecl) -> Optional[ElementDecl]:
    repeating = [e for e in element.path() if e.is_repeating]
    return repeating[-1] if repeating else None


@dataclass
class _NodePlan:
    """One prospective build node: a mapped target element, the source
    elements its arcs come from, and its value mappings."""

    target: ElementDecl
    arcs: list[ElementDecl]
    vms: list[ValueMapping]


def _plan_nodes(source: Schema, vms: Sequence[ValueMapping]) -> list[_NodePlan]:
    plans: dict[int, _NodePlan] = {}
    order: list[int] = []
    for vm in vms:
        built = _deepest_repeating(vm.target.element)
        if built is None:
            continue  # mapped onto non-repeating content: wrapper-only
        plan = plans.get(id(built))
        if plan is None:
            plan = _NodePlan(built, [], [])
            plans[id(built)] = plan
            order.append(id(built))
        plan.vms.append(vm)
        for element in vm.source_elements():
            anchor = _deepest_repeating(element)
            if anchor is not None and all(a is not anchor for a in plan.arcs):
                plan.arcs.append(anchor)
    plans_list = [plans[key] for key in order]
    plans_list.sort(key=lambda p: p.target.depth())
    return plans_list


def _context_elements(
    target: Schema, plans: Sequence[_NodePlan]
) -> list[ElementDecl]:
    """Repeating target elements above the mapped ones that could carry
    their own (context) builder."""
    built_ids = {id(p.target) for p in plans}
    out: list[ElementDecl] = []
    for plan in plans:
        for ancestor in plan.target.path()[:-1]:
            if ancestor.is_repeating and id(ancestor) not in built_ids:
                if all(e is not ancestor for e in out):
                    out.append(ancestor)
    return out


def _context_sources(
    source: Schema, plans: Sequence[_NodePlan]
) -> list[ElementDecl]:
    """Source elements that could drive a context builder: repeating
    ancestors of the planned arcs."""
    out: list[ElementDecl] = []
    for plan in plans:
        for arc in plan.arcs:
            for ancestor in arc.path()[:-1]:
                if ancestor.is_repeating and all(e is not ancestor for e in out):
                    out.append(ancestor)
    return out


def _grouping_options(plan: _NodePlan, limit: int = 1) -> list[Optional[tuple[str, ...]]]:
    """Group-by candidates for a node: ``None`` (no grouping), the first
    mapped value(s) of its primary arc element, and — when several
    values are mapped — the *full key* (group by all of them, the
    deduplication mapping).  Grouping by a strict subset while mapping
    the rest is invalid per Section II, so those combinations are not
    proposed."""
    options: list[Optional[tuple[str, ...]]] = [None]
    primary = plan.arcs[0] if plan.arcs else None
    if primary is None:
        return options
    attrs: list[str] = []
    for vm in plan.vms:
        if vm.is_aggregate or len(vm.sources) != 1:
            continue
        node = vm.sources[0]
        holder = getattr(node, "element", node)
        if _deepest_repeating(holder) is not primary:
            continue
        segments = _relative_dotted(primary, node)
        if segments is not None:
            attrs.append(segments)
    if not attrs:
        return options
    for single in attrs[:limit]:
        options.append((single,))
    if len(attrs) > 1:
        options.append(tuple(attrs))
    return options


def _relative_dotted(anchor: ElementDecl, node) -> Optional[str]:
    holder = getattr(node, "element", node)
    path = list(holder.path())
    if anchor not in path:
        return None
    labels = [e.name for e in path[path.index(anchor) + 1 :]]
    attribute = getattr(node, "attribute", None)
    if isinstance(node, ElementDecl):
        leaf: Optional[str] = None
    elif attribute is not None:
        leaf = f"@{attribute}"
    else:
        leaf = "value"
    segments = labels + ([leaf] if leaf else [])
    if not segments:
        return None
    return ".".join(segments)


# -- enumeration ---------------------------------------------------------------


def enumerate_candidates(
    source: Schema,
    target: Schema,
    vms: Sequence[ValueMapping],
    *,
    grouping_limit: int = 1,
) -> Iterator[Candidate]:
    """Enumerate the drawable Clip mappings for the given value mappings."""
    plans = _plan_nodes(source, vms)
    if not plans:
        return
    ctx_elements = _context_elements(target, plans)
    ctx_source_options: list[Optional[ElementDecl]] = [None]
    ctx_source_options.extend(_context_sources(source, plans))

    # The no-builders default is always drawable.
    yield Candidate("no builders (default generation)", _assemble(source, target, vms, None, {}, {}, {}, set()))

    node_group_options = [_grouping_options(p, grouping_limit) for p in plans]
    # Parent options per node: root, the context node (if chosen), or a
    # sibling node whose target is a proper ancestor.
    parent_options: list[list[Optional[object]]] = []
    for index, plan in enumerate(plans):
        options: list[Optional[object]] = [None, "ctx"]
        for other_index, other in enumerate(plans):
            if other_index != index and other.target.is_ancestor_of(plan.target):
                options.append(other_index)
        parent_options.append(options)

    join_toggles: list[list[bool]] = []
    for index, plan in enumerate(plans):
        has_join = len(plan.arcs) >= 2 and suggest_join(source, plan.arcs[0], plan.arcs[1])
        # A parent-correlated join is also drawable: the child node's
        # condition equates its arc with the parent node's arc over the
        # keyref (the natural company/grant join of Figure 1 in [1]).
        if not has_join:
            for other_index, other in enumerate(plans):
                if (
                    other_index != index
                    and other.target.is_ancestor_of(plan.target)
                    and plan.arcs
                    and other.arcs
                    and suggest_join(source, plan.arcs[0], other.arcs[0])
                ):
                    has_join = True
                    break
        join_toggles.append([True, False] if has_join else [False])

    for ctx_source in ctx_source_options:
        for parents in itertools.product(*parent_options):
            for groupings in itertools.product(*node_group_options):
                for joins in itertools.product(*join_toggles):
                    if ctx_source is None and any(p == "ctx" for p in parents):
                        continue
                    description = _describe(plans, ctx_source, parents, groupings, joins)
                    try:
                        clip = _assemble_nodes(
                            source, target, vms, plans, ctx_elements,
                            ctx_source, parents, groupings, joins,
                        )
                    except ReproError:
                        continue
                    yield Candidate(description, clip)


def _describe(plans, ctx_source, parents, groupings, joins) -> str:
    bits = []
    if ctx_source is not None:
        bits.append(f"context {ctx_source.name}")
    for plan, parent, grouping, join in zip(plans, parents, groupings, joins):
        part = plan.target.name
        if grouping:
            part += " group-by " + "+".join(grouping)
        if parent == "ctx":
            part += " (in context)"
        elif isinstance(parent, int):
            part += f" (under {plans[parent].target.name})"
        if join:
            part += " join"
        bits.append(part)
    return "; ".join(bits) or "plain"


def _assemble(source, target, vms, ctx_source, a, b, c, d) -> ClipMapping:
    clip = ClipMapping(source, target)
    clip.value_mappings.extend(vms)
    return clip


def _assemble_nodes(
    source: Schema,
    target: Schema,
    vms: Sequence[ValueMapping],
    plans: Sequence[_NodePlan],
    ctx_elements: Sequence[ElementDecl],
    ctx_source: Optional[ElementDecl],
    parents: Sequence[object],
    groupings: Sequence[Optional[str]],
    joins: Sequence[bool],
) -> ClipMapping:
    clip = ClipMapping(source, target)
    clip.value_mappings.extend(vms)
    var_counter = itertools.count(1)
    node_vars: dict[int, list[str]] = {}

    ctx_node: Optional[BuildNode] = None
    if ctx_source is not None:
        # The context builder targets the deepest context element the
        # mapped nodes share; with none, it is a context-only node.
        ctx_target = ctx_elements[-1] if ctx_elements else None
        var = f"c{next(var_counter)}"
        if ctx_target is not None:
            ctx_node = clip.build(ctx_source, ctx_target, var=var)
        else:
            ctx_node = clip.context(ctx_source, var=var)

    nodes: list[Optional[BuildNode]] = [None] * len(plans)

    def build_plan(index: int) -> BuildNode:
        if nodes[index] is not None:
            return nodes[index]
        plan = plans[index]
        parent_choice = parents[index]
        parent_node: Optional[BuildNode] = None
        if parent_choice == "ctx":
            parent_node = ctx_node
        elif isinstance(parent_choice, int):
            parent_node = build_plan(parent_choice)
        arc_vars = [f"x{next(var_counter)}" for _ in plan.arcs]
        node_vars[index] = arc_vars
        condition = None
        if joins[index] and len(plan.arcs) >= 2:
            suggestion = suggest_join(source, plan.arcs[0], plan.arcs[1])
            if suggestion is not None:
                left, right = suggestion
                condition = _join_condition(
                    suggestion,
                    {id(plan.arcs[0]): arc_vars[0], id(plan.arcs[1]): arc_vars[1]},
                    (plan.arcs[0], plan.arcs[1]),
                )
        elif joins[index] and isinstance(parent_choice, int) and plan.arcs:
            parent_plan = plans[parent_choice]
            suggestion = (
                suggest_join(source, plan.arcs[0], parent_plan.arcs[0])
                if parent_plan.arcs
                else None
            )
            if suggestion is not None:
                parent_vars = node_vars[parent_choice]
                condition = _join_condition(
                    suggestion,
                    {
                        id(plan.arcs[0]): arc_vars[0],
                        id(parent_plan.arcs[0]): parent_vars[0],
                    },
                    (plan.arcs[0], parent_plan.arcs[0]),
                )
        grouping = groupings[index]
        if grouping:
            node = clip.group(
                list(plan.arcs),
                plan.target,
                var=arc_vars,
                by=[f"${arc_vars[0]}.{attr}" for attr in grouping],
                condition=condition,
                parent=parent_node,
            )
        else:
            node = clip.build(
                list(plan.arcs),
                plan.target,
                var=arc_vars,
                condition=condition,
                parent=parent_node,
            )
        nodes[index] = node
        return node

    for index in range(len(plans)):
        build_plan(index)
    return clip


# -- measurement ---------------------------------------------------------------


def _leaf_of(value_node) -> str:
    return f"@{value_node.attribute}" if value_node.attribute else "value"


def _join_condition(suggestion, var_by_arc, arcs) -> Optional[str]:
    """A condition label equating the suggested value-node pair, with
    each side's path written relative to the arc element that covers
    its holder."""
    sides = []
    for value_node in suggestion:
        anchor = None
        for arc in arcs:
            holder = value_node.element
            if arc is holder or arc.is_ancestor_of(holder):
                anchor = arc
                break
        if anchor is None:
            return None
        dotted = _relative_dotted(anchor, value_node)
        if dotted is None:
            return None
        sides.append(f"${var_by_arc[id(anchor)]}.{dotted}")
    return f"{sides[0]} = {sides[1]}"


def _canonical_key(instance: XmlElement):
    return instance.canonical()._key()


def measure_flexibility(
    source: Schema,
    target: Schema,
    vms: Sequence[ValueMapping],
    witness: XmlElement,
    *,
    grouping_limit: int = 1,
) -> FlexibilityResult:
    """Count the distinct meaningful Clip mappings beyond Clio's."""
    clio_keys = {}
    try:
        clio = generate_clio(source, target, list(vms))
        clio_keys[_canonical_key(execute(clio.tgd, witness))] = "clio nested"
    except ReproError:
        pass

    clip_keys: dict = {}
    total = 0
    valid = 0
    for candidate in enumerate_candidates(
        source, target, vms, grouping_limit=grouping_limit
    ):
        total += 1
        report = check_validity(candidate.clip)
        if not report.is_valid:
            continue
        try:
            tgd = compile_clip(candidate.clip)
            output = execute(tgd, witness)
        except ReproError:
            continue
        valid += 1
        key = _canonical_key(output)
        if key not in clip_keys:
            clip_keys[key] = candidate.description
    extra = [
        description
        for key, description in clip_keys.items()
        if key not in clio_keys
    ]
    return FlexibilityResult(
        candidates_total=total,
        candidates_valid=valid,
        clio_outputs=list(clio_keys.values()),
        clip_outputs=list(clip_keys.values()),
        extra_descriptions=extra,
    )
