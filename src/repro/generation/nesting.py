"""Nested-mapping rewriting (the [2] refinement, Section V-A).

Logical mappings that share part of their source and target expressions
can be nested inside one another, "reducing the overall number of
mapping expressions" and — crucially for the paper's Figure 1 problem —
sharing the construction of the common target elements.

A mapping ``m1`` nests under ``m2`` when ``m2``'s tableaux are
componentwise subsets of ``m1``'s and ``m2``'s *target* tableau is a
proper subset ("ABD → FG is not a sub-mapping of AB → FG … because the
target side of the mappings is the same").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .skeletons import ActiveSkeleton


@dataclass
class NestNode:
    """One node of the nesting forest."""

    active: ActiveSkeleton
    children: list["NestNode"] = field(default_factory=list)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def can_nest_under(child: ActiveSkeleton, parent: ActiveSkeleton) -> bool:
    """May ``child`` be nested inside ``parent``?"""
    ps, cs = parent.skeleton, child.skeleton
    if not ps.is_componentwise_subset_of(cs):
        return False
    return ps.target != cs.target


def nest_forest(emitted: Sequence[ActiveSkeleton]) -> list[NestNode]:
    """Arrange emitted mappings into the nesting forest.

    Each mapping hangs under its most specific admissible parent; the
    rest become roots.
    """
    nodes = [NestNode(active) for active in emitted]
    roots: list[NestNode] = []
    for node in nodes:
        admissible = [
            candidate
            for candidate in nodes
            if candidate is not node and can_nest_under(node.active, candidate.active)
        ]
        # Most specific parent: one that no other admissible parent
        # properly contains.
        parent: Optional[NestNode] = None
        for candidate in admissible:
            if not any(
                other is not candidate
                and candidate.active.skeleton.is_componentwise_subset_of(
                    other.active.skeleton
                )
                for other in admissible
            ):
                parent = candidate
                break
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots
