"""Mapping generation: tableaux, skeletons, Clio baseline, Clip
extension, flexibility measurement, and the seeded scenario corpus.

The public entry points — :func:`generate_corpus`, the tableau
machinery, and :func:`measure_flexibility` — are exported here so the
CLI and tests never reach into submodules.
"""

from .clio import GenerationResult, generate_clio
from .clip_ext import (
    add_product_tableau,
    clip_mapping_from_forest,
    explain_generation,
    find_general_root,
    generate_clip,
    skeleton_for_build_node,
)
from .corpus import (
    AXES,
    CorpusCase,
    CorpusError,
    generate_case,
    generate_corpus,
    resolve_axes,
)
from .flexibility import (
    Candidate,
    FlexibilityResult,
    enumerate_candidates,
    measure_flexibility,
)
from .nesting import NestNode, can_nest_under, nest_forest
from .skeletons import (
    ActiveSkeleton,
    Skeleton,
    activate,
    emitted_skeletons,
    skeleton_matrix,
)
from .tableaux import (
    JoinCondition,
    Tableau,
    chase,
    compute_tableaux,
    dependency_graph,
    primary_tableaux,
    product_tableau,
)

__all__ = [
    "AXES",
    "Candidate",
    "CorpusCase",
    "CorpusError",
    "FlexibilityResult",
    "enumerate_candidates",
    "generate_case",
    "generate_corpus",
    "measure_flexibility",
    "resolve_axes",
    "generate_clio",
    "generate_clip",
    "GenerationResult",
    "find_general_root",
    "add_product_tableau",
    "skeleton_for_build_node",
    "clip_mapping_from_forest",
    "explain_generation",
    "NestNode",
    "nest_forest",
    "can_nest_under",
    "Skeleton",
    "ActiveSkeleton",
    "skeleton_matrix",
    "activate",
    "emitted_skeletons",
    "Tableau",
    "JoinCondition",
    "primary_tableaux",
    "chase",
    "compute_tableaux",
    "product_tableau",
    "dependency_graph",
]
