"""Mapping generation: tableaux, skeletons, Clio baseline, Clip extension."""

from .clio import GenerationResult, generate_clio
from .clip_ext import (
    add_product_tableau,
    clip_mapping_from_forest,
    explain_generation,
    find_general_root,
    generate_clip,
    skeleton_for_build_node,
)
from .nesting import NestNode, can_nest_under, nest_forest
from .skeletons import (
    ActiveSkeleton,
    Skeleton,
    activate,
    emitted_skeletons,
    skeleton_matrix,
)
from .tableaux import (
    JoinCondition,
    Tableau,
    chase,
    compute_tableaux,
    dependency_graph,
    primary_tableaux,
    product_tableau,
)

__all__ = [
    "generate_clio",
    "generate_clip",
    "GenerationResult",
    "find_general_root",
    "add_product_tableau",
    "skeleton_for_build_node",
    "clip_mapping_from_forest",
    "explain_generation",
    "NestNode",
    "nest_forest",
    "can_nest_under",
    "Skeleton",
    "ActiveSkeleton",
    "skeleton_matrix",
    "activate",
    "emitted_skeletons",
    "Tableau",
    "JoinCondition",
    "primary_tableaux",
    "chase",
    "compute_tableaux",
    "product_tableau",
    "dependency_graph",
]
