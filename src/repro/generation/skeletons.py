"""Mapping skeletons: the source × target tableau matrix (Section V-A).

"Clio creates a matrix source vs. target tableaux.  Each entry … is
called a mapping skeleton.  For each value mapping entered by the user,
Clio matches the source and target end-points … and marks as active
those skeletons encompassing some value mappings.  Each active skeleton
that is not implied or subsumed by others emits a logical mapping."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.mapping import ValueMapping
from .tableaux import Tableau


@dataclass(frozen=True)
class Skeleton:
    """One matrix entry: a source tableau paired with a target tableau."""

    source: Tableau
    target: Tableau

    def encompasses(self, vm: ValueMapping) -> bool:
        """Does this skeleton cover the value mapping's end points?"""
        if not self.target.covers_value(vm.target):
            return False
        return all(self.source.covers_value(s) for s in vm.sources)

    def is_componentwise_subset_of(self, other: "Skeleton") -> bool:
        return self.source.is_subset_of(other.source) and self.target.is_subset_of(
            other.target
        )

    def shorthand(self) -> str:
        return f"{self.source.shorthand()} -> {self.target.shorthand()}"

    def __repr__(self) -> str:
        return f"Skeleton({self.shorthand()})"


@dataclass(frozen=True)
class ActiveSkeleton:
    """An active skeleton together with the value mappings it covers."""

    skeleton: Skeleton
    value_mappings: tuple[ValueMapping, ...]


def skeleton_matrix(
    source_tableaux: Sequence[Tableau], target_tableaux: Sequence[Tableau]
) -> list[Skeleton]:
    """The full source × target matrix."""
    return [
        Skeleton(source, target)
        for source in source_tableaux
        for target in target_tableaux
    ]


def activate(
    matrix: Sequence[Skeleton], value_mappings: Sequence[ValueMapping]
) -> list[ActiveSkeleton]:
    """Mark the skeletons that encompass at least one value mapping."""
    active: list[ActiveSkeleton] = []
    for skeleton in matrix:
        covered = tuple(vm for vm in value_mappings if skeleton.encompasses(vm))
        if covered:
            active.append(ActiveSkeleton(skeleton, covered))
    return active


def emitted_skeletons(
    active: Sequence[ActiveSkeleton],
    user_source_tableaux: Sequence[Tableau] = (),
) -> list[ActiveSkeleton]:
    """The active skeletons that emit logical mappings.

    Every value mapping is emitted at its componentwise-*minimal*
    covering skeletons (larger skeletons covering the same value mapping
    are *implied* and dropped — ``{A-B-C} → {F-G}`` never fires when
    ``{A-B} → {F-G}`` covers the correspondence).  Skeletons whose
    source tableau was added explicitly by the user (the ``A(B×D)``
    product of Figure 10) are emitted with everything they cover and
    *subsume* the minimal skeletons whose value mappings they contain —
    reproducing the paper's second Section V-B walkthrough, where
    ``ABD → FG`` replaces ``AB → FG`` and ``AD → FG``.
    """
    user_ids = {id(t) for t in user_source_tableaux}

    # Group the active skeletons by the value mappings they cover.
    buckets: dict[int, tuple[ValueMapping, list[ActiveSkeleton]]] = {}
    for candidate in active:
        for vm in candidate.value_mappings:
            bucket = buckets.get(id(vm))
            if bucket is None:
                buckets[id(vm)] = (vm, [candidate])
            else:
                bucket[1].append(candidate)

    chosen: dict[int, tuple[Skeleton, list[ValueMapping]]] = {}
    for vm, coverers in buckets.values():
        for candidate in coverers:
            if id(candidate.skeleton.source) in user_ids:
                continue  # user products are handled below
            is_minimal = not any(
                other.skeleton != candidate.skeleton
                and other.skeleton.is_componentwise_subset_of(candidate.skeleton)
                for other in coverers
            )
            if not is_minimal:
                continue
            entry = chosen.get(id(candidate.skeleton))
            if entry is None:
                chosen[id(candidate.skeleton)] = (candidate.skeleton, [vm])
            elif all(existing is not vm for existing in entry[1]):
                entry[1].append(vm)

    emitted = [
        ActiveSkeleton(skeleton, tuple(vms)) for skeleton, vms in chosen.values()
    ]
    # User-requested products emit with everything they cover and
    # subsume the minimal skeletons they contain.
    for candidate in active:
        if id(candidate.skeleton.source) not in user_ids:
            continue
        covered = set(map(id, candidate.value_mappings))
        emitted = [
            entry
            for entry in emitted
            if not set(map(id, entry.value_mappings)) <= covered
        ]
        emitted.append(candidate)
    return emitted
