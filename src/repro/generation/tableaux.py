"""Tableau computation (Section V-A).

"A tableau is a set of schema elements (or attributes) that are
semantically related" — one primary tableau per repeating element (its
chain of repeating ancestors), extended by *chasing* over referential
constraints: a tableau whose elements carry a foreign key is enlarged
with the referred element's primary path plus the join condition.

For the paper's source schema this produces exactly the three tableaux
of Section V-A: ``{dept}``, ``{dept-Proj}`` and
``{dept-Proj-regEmp, @pid=@pid}``.

Users may additionally register *product* tableaux (the ``A(B×D)``
tableau of Figure 10) with :func:`product_tableau`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import GenerationError
from ..xsd.constraints import KeyRef
from ..xsd.schema import ElementDecl, Schema, ValueNode


@dataclass(frozen=True)
class JoinCondition:
    """An equality between two value nodes, introduced by the chase."""

    left: ValueNode
    right: ValueNode

    def shorthand(self) -> str:
        left = f"@{self.left.attribute}" if self.left.attribute else "value"
        right = f"@{self.right.attribute}" if self.right.attribute else "value"
        return f"{left}={right}"

    def __str__(self) -> str:
        return f"{self.left.path_string()} = {self.right.path_string()}"


@dataclass(frozen=True)
class Tableau:
    """A set of related repeating elements plus join conditions.

    ``generators`` keeps discovery order (outermost first for primary
    paths); identity is set-based, so ``{A,B}`` equals ``{B,A}``.
    """

    generators: tuple[ElementDecl, ...]
    conditions: tuple[JoinCondition, ...] = ()

    def element_set(self) -> frozenset[int]:
        return frozenset(id(e) for e in self.generators)

    def covers_element(self, element: ElementDecl) -> bool:
        """All repeating elements on the element's root path belong to
        this tableau (so the tableau can iterate down to it)."""
        ids = self.element_set()
        return all(
            id(ancestor) in ids
            for ancestor in element.path()
            if ancestor.is_repeating
        )

    def covers_value(self, node) -> bool:
        element = node.element if isinstance(node, ValueNode) else node
        return self.covers_element(element)

    def is_subset_of(self, other: "Tableau") -> bool:
        if not self.element_set() <= other.element_set():
            return False
        mine = {(c.left.path_string(), c.right.path_string()) for c in self.conditions}
        theirs = {(c.left.path_string(), c.right.path_string()) for c in other.conditions}
        return mine <= theirs

    def is_proper_subset_of(self, other: "Tableau") -> bool:
        return self.is_subset_of(other) and not other.is_subset_of(self)

    def shorthand(self) -> str:
        names = "-".join(e.name for e in self.generators) or "∅"
        if self.conditions:
            conds = ", ".join(c.shorthand() for c in self.conditions)
            return f"{{{names}, {conds}}}"
        return f"{{{names}}}"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Tableau):
            return NotImplemented
        return self.is_subset_of(other) and other.is_subset_of(self)

    def __hash__(self) -> int:
        return hash(
            (
                self.element_set(),
                frozenset(
                    (c.left.path_string(), c.right.path_string())
                    for c in self.conditions
                ),
            )
        )

    def __repr__(self) -> str:
        return f"Tableau{self.shorthand()}"


def primary_tableaux(schema: Schema) -> list[Tableau]:
    """One tableau per repeating element: its repeating root path."""
    out = []
    for element in schema.repeating_elements():
        out.append(Tableau(schema.repeating_path(element)))
    return out


def chase(tableau: Tableau, schema: Schema) -> Tableau:
    """Chase a tableau over the schema's keyrefs to fixpoint."""
    generators = list(tableau.generators)
    conditions = list(tableau.conditions)
    changed = True
    while changed:
        changed = False
        ids = {id(e) for e in generators}
        for constraint in schema.constraints:
            if not isinstance(constraint, KeyRef):
                continue
            if id(constraint.referring_element) not in ids:
                continue
            if id(constraint.referred_element) in ids:
                continue
            for ancestor in schema.repeating_path(constraint.referred_element):
                if id(ancestor) not in ids:
                    generators.append(ancestor)
                    ids.add(id(ancestor))
            conditions.append(JoinCondition(constraint.referring, constraint.referred))
            changed = True
    return Tableau(tuple(generators), tuple(conditions))


def compute_tableaux(schema: Schema, *, use_chase: bool = True) -> list[Tableau]:
    """All tableaux of a schema: primary paths, chased over constraints.

    With ``use_chase=False`` the raw primary tableaux are returned — the
    ablation showing why ``{dept-regEmp}`` alone cannot express the
    project/employee association.
    """
    tableaux = primary_tableaux(schema)
    if use_chase:
        tableaux = [chase(t, schema) for t in tableaux]
    unique: list[Tableau] = []
    for tableau in tableaux:
        if tableau not in unique:
            unique.append(tableau)
    return unique


def product_tableau(
    schema: Schema, elements: Iterable[ElementDecl]
) -> Tableau:
    """A user-added product tableau (Figure 10's ``A(B×D)``): the union
    of the repeating paths of the given elements, with no conditions."""
    generators: list[ElementDecl] = []
    ids: set[int] = set()
    for element in elements:
        for ancestor in schema.repeating_path(element):
            if id(ancestor) not in ids:
                generators.append(ancestor)
                ids.add(id(ancestor))
    if not generators:
        raise GenerationError("a product tableau needs at least one repeating element")
    return Tableau(tuple(generators))


def dependency_graph(tableaux: list[Tableau]) -> list[tuple[Tableau, Tableau]]:
    """The Hasse diagram of the tableau subset order (Figure 10's
    dependency graph): edges (general, specific) with no tableau in
    between."""
    edges: list[tuple[Tableau, Tableau]] = []
    for lower in tableaux:
        for upper in tableaux:
            if not lower.is_proper_subset_of(upper):
                continue
            if any(
                lower.is_proper_subset_of(mid) and mid.is_proper_subset_of(upper)
                for mid in tableaux
            ):
                continue
            edges.append((lower, upper))
    return edges
