"""The Clio baseline: schemas + value mappings → (nested) tgds.

This reimplements the published Clio pipeline the paper extends:

1. compute source and target tableaux (with chase over constraints);
2. build the skeleton matrix and activate skeletons covering the given
   value mappings;
3. emit the active skeletons that are neither implied nor subsumed;
4. optionally nest the emitted mappings ([2]).

Every target generator is existentially quantified per iteration —
Clio's semantics, which is exactly what produces the Figure 1 problem
("it compiles to a transformation that … encloses each node in a
different department element").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.mapping import ValueMapping
from ..core.tgd import (
    AggregateApp,
    Assignment,
    FunctionApp,
    NestedTgd,
    Proj,
    SchemaRoot,
    SourceGenerator,
    TargetGenerator,
    TgdComparison,
    TgdExpr,
    TgdMapping,
    Var,
    proj_path,
)
from ..errors import GenerationError
from ..xsd.schema import ElementDecl, Schema, ValueNode
from .nesting import NestNode, nest_forest
from .skeletons import ActiveSkeleton, activate, emitted_skeletons, skeleton_matrix
from .tableaux import Tableau, compute_tableaux


@dataclass
class GenerationResult:
    """Everything the pipeline computed, for inspection and tests."""

    tgd: NestedTgd
    source_tableaux: list[Tableau]
    target_tableaux: list[Tableau]
    active: list[ActiveSkeleton]
    emitted: list[ActiveSkeleton]
    forest: list[NestNode]


class _Namer:
    def __init__(self):
        self._used: set[str] = set()

    def fresh(self, hint: str, primed: bool = False) -> str:
        base = (hint[:1] or "x").lower() + ("'" if primed else "")
        if base not in self._used:
            self._used.add(base)
            return base
        stem = base[:-1] if primed else base
        index = 2
        while True:
            name = f"{stem}{index}" + ("'" if primed else "")
            if name not in self._used:
                self._used.add(name)
                return name
            index += 1


class _ForestEmitter:
    """Emit a nesting forest as a nested tgd."""

    def __init__(self, source: Schema, target: Schema, quantify_all: bool = True):
        self.source = source
        self.target = target
        self.quantify_all = quantify_all
        self.namer = _Namer()

    def emit(self, roots: Sequence[NestNode]) -> NestedTgd:
        mappings = tuple(self._emit_node(node, {}, {}) for node in roots)
        return NestedTgd(
            mappings,
            source_root=self.source.root.name,
            target_root=self.target.root.name,
        )

    # ``bindings``: element id → variable name, for both sides.

    def _emit_node(
        self,
        node: NestNode,
        source_bindings: dict[int, str],
        target_bindings: dict[int, str],
    ) -> TgdMapping:
        skeleton = node.active.skeleton
        src_bind = dict(source_bindings)
        tgt_bind = dict(target_bindings)
        source_gens = self._generators(
            skeleton.source.generators, self.source, src_bind, primed=False
        )
        conditions = tuple(
            self._join_condition(cond, src_bind)
            for cond in skeleton.source.conditions
            if self._is_new_condition(cond, source_bindings)
        )
        target_gens_raw = self._generators(
            skeleton.target.generators, self.target, tgt_bind, primed=True
        )
        target_gens = tuple(
            TargetGenerator(g.var, g.expr, quantified=True) for g in target_gens_raw
        )
        assignments = tuple(
            self._assignment(vm, src_bind, tgt_bind)
            for vm in node.active.value_mappings
        )
        children = tuple(
            self._emit_node(child, src_bind, tgt_bind) for child in node.children
        )
        return TgdMapping(
            source_gens=tuple(source_gens),
            where=conditions,
            target_gens=target_gens,
            assignments=assignments,
            submappings=children,
        )

    def _generators(
        self,
        elements: Sequence[ElementDecl],
        schema: Schema,
        bindings: dict[int, str],
        primed: bool,
    ) -> list[SourceGenerator]:
        """Generators for the tableau elements not already bound by an
        ancestor mapping, each rebased on the nearest bound ancestor."""
        gens: list[SourceGenerator] = []
        for element in elements:
            if id(element) in bindings:
                continue
            var = self.namer.fresh(element.name, primed=primed)
            expr = self._element_expr(element, schema, bindings)
            gens.append(SourceGenerator(var, expr))
            bindings[id(element)] = var
        return gens

    def _element_expr(
        self, element: ElementDecl, schema: Schema, bindings: dict[int, str]
    ) -> TgdExpr:
        anchor: Optional[ElementDecl] = None
        for ancestor in element.path()[:-1]:
            if id(ancestor) in bindings:
                anchor = ancestor
        if anchor is None:
            base: TgdExpr = SchemaRoot(schema.root.name)
            labels = [e.name for e in element.path()[1:]]
        else:
            base = Var(bindings[id(anchor)])
            path = list(element.path())
            labels = [e.name for e in path[path.index(anchor) + 1 :]]
        return proj_path(base, labels)

    @staticmethod
    def _is_new_condition(cond, parent_bindings: dict[int, str]) -> bool:
        """A join condition already enforced by an ancestor level (both
        element end-points bound there) is not repeated."""
        return not (
            id(cond.left.element) in parent_bindings
            and id(cond.right.element) in parent_bindings
        )

    def _value_expr(self, node, bindings: dict[int, str]) -> TgdExpr:
        element = node.element if isinstance(node, ValueNode) else node
        anchor: Optional[ElementDecl] = None
        for ancestor in element.path():
            if id(ancestor) in bindings:
                anchor = ancestor
        if anchor is None:
            raise GenerationError(
                f"value node {node} is not covered by the skeleton's tableau"
            )
        path = list(element.path())
        labels = [e.name for e in path[path.index(anchor) + 1 :]]
        base: TgdExpr = Var(bindings[id(anchor)])
        expr = proj_path(base, labels)
        if isinstance(node, ValueNode):
            leaf = f"@{node.attribute}" if node.attribute is not None else "value"
            expr = Proj(expr, leaf)
        return expr

    def _join_condition(self, cond, bindings: dict[int, str]) -> TgdComparison:
        return TgdComparison(
            self._value_expr(cond.left, bindings),
            "=",
            self._value_expr(cond.right, bindings),
        )

    def _assignment(
        self, vm: ValueMapping, src_bind: dict[int, str], tgt_bind: dict[int, str]
    ) -> Assignment:
        target_expr = self._value_expr(vm.target, tgt_bind)
        if vm.is_aggregate:
            value = AggregateApp(vm.aggregate, self._value_expr(vm.sources[0], src_bind))
        elif vm.function is not None:
            value = FunctionApp(
                vm.function,
                tuple(self._value_expr(s, src_bind) for s in vm.sources),
            )
        else:
            value = self._value_expr(vm.sources[0], src_bind)
        return Assignment(target_expr, value)


def generate_clio(
    source: Schema,
    target: Schema,
    value_mappings: Sequence[ValueMapping],
    *,
    nest: bool = True,
    use_chase: bool = True,
    extra_source_tableaux: Sequence[Tableau] = (),
) -> GenerationResult:
    """Run the Clio pipeline end to end.

    ``extra_source_tableaux`` lets callers register user-added product
    tableaux (the ``A(B×D)`` of Figure 10); ``nest=False`` emits the
    flat [1]-style mappings, ``use_chase=False`` disables constraint
    chasing (ablations).
    """
    source_tableaux = compute_tableaux(source, use_chase=use_chase)
    for extra in extra_source_tableaux:
        if extra not in source_tableaux:
            source_tableaux.append(extra)
    target_tableaux = compute_tableaux(target, use_chase=use_chase)
    matrix = skeleton_matrix(source_tableaux, target_tableaux)
    active = activate(matrix, value_mappings)
    emitted = emitted_skeletons(active, user_source_tableaux=extra_source_tableaux)
    if nest:
        forest = nest_forest(emitted)
    else:
        forest = [NestNode(a) for a in emitted]
    tgd = _ForestEmitter(source, target).emit(forest)
    return GenerationResult(
        tgd=tgd,
        source_tableaux=source_tableaux,
        target_tableaux=target_tableaux,
        active=active,
        emitted=emitted,
        forest=forest,
    )
