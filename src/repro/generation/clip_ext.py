"""Clip's extension to Clio's mapping generation (Section V-B).

Clio cannot nest ``AB → FG`` and ``AD → FG`` (Figure 10) because the
more general skeleton ``A → F`` is not active.  The extension:

1. compute the nested mappings as usual;
2. identify the *root* nested mappings;
3. walk up the skeleton hierarchy looking for a more general skeleton
   that intersects all the roots' upward paths — the most specific
   ``(s, t)`` with ``s`` contained in every active mapping's source
   tableau and ``t`` properly contained in every root's target tableau;
4. activate it (with no value mappings of its own) and recompute the
   nesting.

The second half of Section V-B — build nodes correspond to mapping
skeletons and a CPT *is* a nested mapping — is implemented by
:func:`clip_mapping_from_forest`, which synthesizes an explicit Clip
mapping (builders, build nodes, context arcs) from the generated
nesting forest, and by :func:`skeleton_for_build_node`, which maps a
drawn build node back onto the skeleton matrix.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.mapping import BuildNode, ClipMapping, ValueMapping
from ..xsd.schema import ElementDecl, Schema
from .clio import GenerationResult, _ForestEmitter, generate_clio
from .nesting import NestNode, nest_forest
from .skeletons import ActiveSkeleton, Skeleton
from .tableaux import Tableau, compute_tableaux, product_tableau


def _intersection_candidates(
    tableaux: Sequence[Tableau], bounds: Sequence[Tableau]
) -> list[Tableau]:
    """Tableaux contained in every bound."""
    return [
        t for t in tableaux if all(t.is_subset_of(bound) for bound in bounds)
    ]


def _most_specific(tableaux: Sequence[Tableau]) -> Optional[Tableau]:
    for candidate in tableaux:
        if not any(
            candidate.is_proper_subset_of(other) for other in tableaux
        ):
            return candidate
    return None


def find_general_root(
    result: GenerationResult,
) -> Optional[Skeleton]:
    """The more general skeleton Clip activates over the current roots.

    Source side: the most specific tableau contained in every *active*
    mapping's source.  Target side: the most specific tableau properly
    contained in every root's target (so each root can nest under it).
    Returns ``None`` when no such skeleton exists or when it is already
    a root.
    """
    roots = [node.active.skeleton for node in result.forest]
    if not roots:
        return None
    source_bounds = [a.skeleton.source for a in result.active] or [
        r.source for r in roots
    ]
    source_candidates = _intersection_candidates(result.source_tableaux, source_bounds)
    target_candidates = [
        t
        for t in _intersection_candidates(
            result.target_tableaux, [r.target for r in roots]
        )
        if all(t != r.target for r in roots)
    ]
    source = _most_specific(
        sorted(source_candidates, key=lambda t: -len(t.generators))
    ) if source_candidates else None
    target = _most_specific(
        sorted(target_candidates, key=lambda t: -len(t.generators))
    ) if target_candidates else None
    if source is None or target is None:
        return None
    general = Skeleton(source, target)
    if any(general == r for r in roots):
        return None
    return general


def generate_clip(
    source: Schema,
    target: Schema,
    value_mappings: Sequence[ValueMapping],
    *,
    use_chase: bool = True,
    extra_source_tableaux: Sequence[Tableau] = (),
) -> GenerationResult:
    """Clio's pipeline followed by Clip's root-generalization extension."""
    result = generate_clio(
        source,
        target,
        value_mappings,
        nest=True,
        use_chase=use_chase,
        extra_source_tableaux=extra_source_tableaux,
    )
    for _ in range(8):  # generalization reaches fixpoint quickly
        general = find_general_root(result)
        if general is None:
            break
        emitted = [ActiveSkeleton(general, ())] + list(result.emitted)
        forest = nest_forest(emitted)
        tgd = _ForestEmitter(source, target).emit(forest)
        result = GenerationResult(
            tgd=tgd,
            source_tableaux=result.source_tableaux,
            target_tableaux=result.target_tableaux,
            active=result.active,
            emitted=emitted,
            forest=forest,
        )
    return result


def add_product_tableau(
    schema: Schema, elements: Sequence[ElementDecl]
) -> Tableau:
    """Register the user-added product tableau of Figure 10 (``A(B×D)``)."""
    return product_tableau(schema, elements)


# -- build nodes ↔ skeletons ------------------------------------------------


def skeleton_for_build_node(
    clip: ClipMapping, node: BuildNode
) -> Skeleton:
    """The mapping skeleton that matches a drawn build node.

    "For each build node, we look at all its source side builders and
    match them against the computed source tableaux.  If a build node
    appears in a context propagation tree, we collect all source-side
    builder arcs [of the node and its ancestors] … If no source tableau
    is found, we create a new tableau that will cover our source
    builders."  The same happens on the target side.
    """
    source_tableaux = compute_tableaux(clip.source)
    target_tableaux = compute_tableaux(clip.target)
    source_elements = [arc.source for _, arc in node.arcs_in_scope()]
    source = _matching_tableau(source_tableaux, source_elements)
    if source is None:
        source = product_tableau(clip.source, source_elements)
    target_elements = [
        n.target
        for n in [node, *node.ancestors()]
        if n.target is not None
    ]
    if target_elements:
        target = _matching_tableau(target_tableaux, target_elements)
        if target is None:
            target = product_tableau(clip.target, target_elements)
    else:
        target = Tableau(())
    return Skeleton(source, target)


def _matching_tableau(
    tableaux: Sequence[Tableau], elements: Sequence[ElementDecl]
) -> Optional[Tableau]:
    """The most general tableau covering all the given elements."""
    covering = [
        t for t in tableaux if all(t.covers_element(e) for e in elements)
    ]
    for candidate in sorted(covering, key=lambda t: len(t.generators)):
        return candidate
    return None


def clip_mapping_from_forest(
    source: Schema,
    target: Schema,
    value_mappings: Sequence[ValueMapping],
    forest: Sequence[NestNode],
) -> ClipMapping:
    """Synthesize an explicit Clip mapping (builders + CPT) from a
    generated nesting forest — "a CPT is a nested mapping"."""
    clip = ClipMapping(source, target)
    for vm in value_mappings:
        clip.value_mappings.append(vm)

    def convert(node: NestNode, parent: Optional[BuildNode], bound_src, bound_tgt):
        skeleton = node.active.skeleton
        new_sources = [
            e for e in skeleton.source.generators if id(e) not in bound_src
        ]
        new_targets = [
            e for e in skeleton.target.generators if id(e) not in bound_tgt
        ]
        built = new_targets[-1] if new_targets else None
        arcs = new_sources or [skeleton.source.generators[-1]]
        if built is not None:
            build_node = clip.build(arcs, built, parent=parent)
        else:
            build_node = clip.context(arcs, parent=parent)
        next_src = set(bound_src) | {id(e) for e in new_sources}
        next_tgt = set(bound_tgt) | {id(e) for e in new_targets}
        for child in node.children:
            convert(child, build_node, next_src, next_tgt)

    for root in forest:
        convert(root, None, set(), set())
    return clip


def explain_generation(result: GenerationResult) -> str:
    """A human-readable account of the pipeline, used by examples."""
    lines = ["source tableaux:"]
    lines.extend(f"  {t.shorthand()}" for t in result.source_tableaux)
    lines.append("target tableaux:")
    lines.extend(f"  {t.shorthand()}" for t in result.target_tableaux)
    lines.append("active skeletons:")
    lines.extend(
        f"  {a.skeleton.shorthand()}  covering {len(a.value_mappings)} value mapping(s)"
        for a in result.active
    )
    lines.append("emitted (not implied/subsumed):")
    lines.extend(f"  {a.skeleton.shorthand()}" for a in result.emitted)

    def draw(node: NestNode, depth: int):
        lines.append("  " * (depth + 1) + node.active.skeleton.shorthand())
        for child in node.children:
            draw(child, depth + 1)

    lines.append("nesting forest:")
    for root in result.forest:
        draw(root, 0)
    return "\n".join(lines)
