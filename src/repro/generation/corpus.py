"""Seeded scenario corpus: deterministic (schema, mapping, instance) triples.

The paper demonstrates Clip on a handful of figures; the differential
fuzz farm (:mod:`repro.fuzz`) needs the *same semantic constructs* in
hundreds of shapes.  :func:`generate_corpus` grows the figure scenarios
and the synthetic-workload machinery into a corpus generator spanning
nine axes:

* ``deep-cpt`` — context-propagation chains three to five levels deep
  over synthetic chain schemas, with a pushed filter on the deepest
  level;
* ``aggregates`` — mixed ``count``/``sum``/``avg``/``min``/``max``
  aggregate value mappings over the paper's department store;
* ``inversion`` — hierarchy inversion (Figure 8's shape): departments
  nested under projects grouped by name, with cross-department
  homonyms;
* ``fanout-join`` — the Figure 6 join of projects and employees with
  controlled fan-outs and dangling references, plus a filtered sibling
  node (a pushed single-variable predicate);
* ``skewed-groups`` — Figure 7 grouping under a skewed name
  distribution (one hot group absorbs most members);
* ``value-functions`` — scalar functions (``concat``/``add``/
  ``multiply``) over multi-source value mappings crossing CPT scopes;
* ``delta`` — incremental-recomputation cases: a department-store
  mapping (grouped or plain) paired with a deterministic *edit script*
  in ``params["edits"]``; the fuzz farm re-applies the script with
  :func:`apply_edits` and checks
  :func:`repro.runtime.incremental.transform_delta` byte-for-byte
  against a full recompute of the edited document;
* ``composition`` — mapping-algebra cases: the case's mapping is an
  ``A→B`` stage and ``params["compose_with"]`` carries a serialized
  ``B→C`` stage; the farm checks
  :func:`repro.algebra.compose_tgds`'s one-pass plan byte-for-byte
  against sequential execution (shapes drawn mostly from the
  composable fragment, with grouped/aggregating second stages mixed in
  to exercise the sequential fallback);
* ``round-trip`` — quasi-invertible copy-like mappings
  (``params["round_trip"]``): immediate-child build chains with
  identity value copies, optional filters, and optionally dropped
  attributes; the farm replays source → target → source′ through
  :func:`repro.algebra.quasi_inverse` and checks the bytes against the
  independently derived :func:`repro.algebra.predicted_core`.

Everything is deterministic in ``seed``: the same ``(seed, count,
axes)`` triple reproduces each case byte for byte — the property the
fuzz report's byte-identity contract builds on.  Every generated
mapping passes the Section III validity rules by construction;
:func:`generate_corpus` checks and refuses to emit an invalid case.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..core.compile import compile_clip
from ..core.functions import scalar
from ..core.mapping import ClipMapping
from ..core.validity import check
from ..errors import ReproError
from ..xml.model import XmlElement, element
from ..xsd.dsl import attr, elem, schema
from ..xsd.types import FLOAT, INT, STRING

#: The corpus axes, in round-robin emission order.
AXES = (
    "deep-cpt",
    "aggregates",
    "inversion",
    "fanout-join",
    "skewed-groups",
    "value-functions",
    "delta",
    "composition",
    "round-trip",
)

_FIRST = ["John", "Mary", "Andrew", "Lucy", "Mark", "Jim", "Sara", "Paul",
          "Rita", "Tom", "Nina", "Carl"]
_LAST = ["Smith", "Clarence", "Tane", "Bellish", "Dawson", "Aiking",
         "Rossi", "Verdi", "Kent", "Lane"]
_PROJECTS = ["Appliances", "Robotics", "Brand promotion", "Analytics",
             "Cloud", "Mobility", "Security", "Logistics"]
_DEPARTMENTS = ["ICT", "Marketing", "Sales", "R&D", "Finance", "Legal",
                "Operations", "Support"]


class CorpusError(ReproError):
    """A generated case failed its own validity gate — a generator bug."""


@dataclass(frozen=True)
class CorpusCase:
    """One deterministic (schema, mapping, instance) triple.

    The schemas travel inside ``mapping`` (`mapping.source` /
    ``mapping.target``); ``instance`` conforms to the source schema by
    construction.  ``params`` records the drawn shape knobs so reports
    and dead letters can describe the case without re-deriving it.
    """

    case_id: str
    axis: str
    seed: int
    index: int
    mapping: ClipMapping
    instance: XmlElement
    params: Mapping[str, object] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """A stable content digest of the whole triple.

        Byte-identical regeneration (same seed, same index) yields the
        same fingerprint; any change to the schemas, the drawn lines,
        the instance or the parameters changes it.
        """
        from ..io import dumps as dump_mapping
        from ..xml.serialize import to_xml

        payload = "\n".join(
            (
                self.case_id,
                dump_mapping(self.mapping),
                to_xml(self.instance),
                json.dumps(dict(self.params), sort_keys=True),
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _case_rng(seed: int, axis: str, index: int) -> random.Random:
    """One independent, deterministic stream per (seed, axis, index)."""
    return random.Random(f"clip-corpus|{seed}|{axis}|{index}")


# -- shared source-side machinery (the paper's department store) -------------


def _deptstore_schema():
    from ..scenarios.deptstore import source_schema

    return source_schema()


def _dept_instance(
    rng: random.Random,
    *,
    departments: int,
    projects_range: tuple[int, int],
    employees_range: tuple[int, int],
    name_pool: int,
    hot_weight: float = 0.0,
    dangling: float = 0.0,
    salary_range: tuple[int, int] = (8000, 16000),
) -> XmlElement:
    """A synthetic department-store instance with controlled shape.

    ``hot_weight`` skews project names toward the pool's first entry
    (grouping cardinality skew); ``dangling`` is the probability that
    an employee's ``@pid`` references no project (a join must drop it).
    """
    root = element("source")
    pool = [
        _PROJECTS[i % len(_PROJECTS)] + ("" if i < len(_PROJECTS) else f" {i}")
        for i in range(max(1, name_pool))
    ]
    lo, hi = salary_range
    for d in range(departments):
        dname = _DEPARTMENTS[d % len(_DEPARTMENTS)] + (
            "" if d < len(_DEPARTMENTS) else f" {d}"
        )
        dept = element("dept", element("dname", text=dname))
        pids: list[int] = []
        for p in range(rng.randint(*projects_range)):
            pid = p + 1
            pids.append(pid)
            if hot_weight and rng.random() < hot_weight:
                pname = pool[0]
            else:
                pname = rng.choice(pool)
            dept.append(element("Proj", element("pname", text=pname), pid=pid))
        for _ in range(rng.randint(*employees_range)):
            if pids and rng.random() >= dangling:
                pid = rng.choice(pids)
            else:
                pid = 9999  # refers to no project: the join drops it
            ename = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
            dept.append(
                element(
                    "regEmp",
                    element("ename", text=ename),
                    element("sal", text=rng.randrange(lo, hi, 250)),
                    pid=pid,
                )
            )
        root.append(dept)
    return root


# -- axis builders -----------------------------------------------------------


def _build_deep_cpt(rng: random.Random):
    """A context-propagation chain ``N1 → … → Nd`` copied level by
    level onto a mirrored target chain, with a pushed filter on the
    deepest level."""
    depth = rng.randint(3, 5)
    threshold = rng.randrange(0, 6)
    src = elem(f"N{depth}", "[0..*]", attr("k", INT))
    tgt = elem(f"M{depth}", "[0..*]", attr("c", INT, required=False))
    for level in range(depth - 1, 0, -1):
        src = elem(f"N{level}", "[0..*]", attr("k", INT), src)
        tgt = elem(f"M{level}", "[0..*]", attr("c", INT, required=False), tgt)
    source = schema(elem("S", src))
    target = schema(elem("T", tgt))

    clip = ClipMapping(source, target)
    parent = None
    spath = tpath = ""
    for level in range(1, depth + 1):
        spath = f"{spath}/N{level}" if spath else f"N{level}"
        tpath = f"{tpath}/M{level}" if tpath else f"M{level}"
        condition = f"$x{level}.@k > {threshold}" if level == depth else None
        parent = clip.build(
            spath, tpath, var=f"x{level}", condition=condition, parent=parent
        )
        clip.value(f"{spath}/@k", f"{tpath}/@c")

    instance = element("S")

    def grow(holder: XmlElement, level: int) -> None:
        if level > depth:
            return
        fanout = rng.randint(1, 3) if level == 1 else rng.randint(0, 3)
        for _ in range(fanout):
            child = element(f"N{level}", k=rng.randrange(10))
            holder.append(child)
            grow(child, level + 1)

    grow(instance, 1)
    return clip, instance, {"depth": depth, "threshold": threshold}


#: The aggregate menu: (label, kind, aggregate name, source path).
_AGG_MENU = (
    ("numProj", "count", "dept/Proj"),
    ("numEmps", "count", "dept/regEmp"),
    ("sumSal", "sum", "dept/regEmp/sal/value"),
    ("avgSal", "avg", "dept/regEmp/sal/value"),
    ("minSal", "min", "dept/regEmp/sal/value"),
    ("maxSal", "max", "dept/regEmp/sal/value"),
)


def _build_aggregates(rng: random.Random):
    """Per-department mixed aggregates (Figure 9's shape, randomized)."""
    picks = sorted(rng.sample(range(len(_AGG_MENU)), rng.randint(2, 4)))
    chosen = [_AGG_MENU[i] for i in picks]
    target = schema(
        elem(
            "target",
            elem(
                "department",
                "[1..*]",
                attr("name", STRING),
                *[attr(label, FLOAT, required=False) for label, _, _ in chosen],
            ),
        )
    )
    clip = ClipMapping(_deptstore_schema(), target)
    clip.build("dept", "department", var="d")
    clip.value("dept/dname/value", "department/@name")
    for label, agg, path in chosen:
        clip.value_aggregate(agg, path, f"department/@{label}")
    instance = _dept_instance(
        rng,
        departments=rng.randint(1, 4),
        projects_range=(0, 4),
        employees_range=(0, 5),
        name_pool=rng.randint(2, 6),
    )
    return clip, instance, {"aggregates": [f"{a}({p})" for _, a, p in chosen]}


def _build_inversion(rng: random.Random):
    """Hierarchy inversion: departments under projects grouped by name
    (Figure 8's shape), with homonym projects across departments."""
    target = schema(
        elem(
            "target",
            elem(
                "project",
                "[1..*]",
                attr("name", STRING),
                elem("department", "[0..*]", attr("name", STRING)),
            ),
        )
    )
    clip = ClipMapping(_deptstore_schema(), target)
    group = clip.group("dept/Proj", "project", var="p", by=["$p.pname.value"])
    clip.build("dept", "project/department", var="d2", parent=group)
    clip.value("dept/Proj/pname/value", "project/@name")
    clip.value("dept/dname/value", "project/department/@name")
    name_pool = rng.randint(2, 4)
    instance = _dept_instance(
        rng,
        departments=rng.randint(2, 4),
        projects_range=(1, 5),
        employees_range=(0, 2),
        name_pool=name_pool,
    )
    return clip, instance, {"name_pool": name_pool}


def _build_fanout_join(rng: random.Random):
    """The Figure 6 join with controlled fan-out and dangling ``@pid``
    references, plus a filtered sibling node whose single-variable
    predicate the planner pushes into the generator sequence."""
    threshold = rng.randrange(9000, 15000, 500)
    # `rich` is a *separate root mapping*, not a sibling under the dept
    # context: the tgd executor interleaves sibling generators per
    # context iteration while the XQuery emitter runs one FLWOR per
    # generator, so sharing the context would make document order
    # engine-dependent.  Root mappings run in declaration order on
    # every engine.
    target = schema(
        elem(
            "target",
            elem(
                "project-emp",
                "[0..*]",
                attr("pname", STRING),
                attr("ename", STRING),
            ),
            elem("rich", "[0..*]", attr("ename", STRING)),
        )
    )
    clip = ClipMapping(_deptstore_schema(), target)
    ctx = clip.context("dept", var="d")
    clip.build(
        ["dept/Proj", "dept/regEmp"],
        "project-emp",
        var=["p", "r"],
        condition="$p.@pid = $r.@pid",
        parent=ctx,
    )
    clip.build(
        "dept/regEmp",
        "rich",
        var="r2",
        condition=f"$r2.sal.value > {threshold}",
    )
    clip.value("dept/Proj/pname/value", "project-emp/@pname")
    clip.value("dept/regEmp/ename/value", "project-emp/@ename")
    clip.value("dept/regEmp/ename/value", "rich/@ename")
    dangling = rng.choice((0.0, 0.2, 0.4))
    instance = _dept_instance(
        rng,
        departments=rng.randint(1, 3),
        projects_range=(0, 5),
        employees_range=(0, 6),
        name_pool=rng.randint(3, 8),
        dangling=dangling,
        salary_range=(8000, 17000),
    )
    return clip, instance, {"threshold": threshold, "dangling": dangling}


def _build_skewed_groups(rng: random.Random):
    """Figure 7 grouping (projects by name, employees joined per group)
    under a skewed name distribution: one hot group absorbs most
    members while the rest stay small."""
    hot_weight = rng.choice((0.5, 0.7, 0.9))
    target = schema(
        elem(
            "target",
            elem(
                "project",
                "[1..*]",
                attr("name", STRING),
                elem("employee", "[0..*]", attr("name", STRING)),
            ),
        )
    )
    clip = ClipMapping(_deptstore_schema(), target)
    group = clip.group("dept/Proj", "project", var="p", by=["$p.pname.value"])
    clip.build(
        ["dept/Proj", "dept/regEmp"],
        "project/employee",
        var=["p2", "r"],
        condition="$p2.@pid = $r.@pid",
        parent=group,
    )
    clip.value("dept/Proj/pname/value", "project/@name")
    clip.value("dept/regEmp/ename/value", "project/employee/@name")
    instance = _dept_instance(
        rng,
        departments=rng.randint(2, 4),
        projects_range=(2, 6),
        employees_range=(0, 6),
        name_pool=rng.randint(2, 5),
        hot_weight=hot_weight,
    )
    return clip, instance, {"hot_weight": hot_weight}


def _build_value_functions(rng: random.Random):
    """Scalar value functions over multi-source mappings that cross CPT
    scopes: ``concat(ename, dname)`` plus a drawn numeric function."""
    numeric = rng.choice(("add", "multiply"))
    target = schema(
        elem(
            "target",
            elem(
                "rec",
                "[0..*]",
                attr("label", STRING),
                attr("pay", FLOAT, required=False),
            ),
        )
    )
    clip = ClipMapping(_deptstore_schema(), target)
    ctx = clip.context("dept", var="d")
    clip.build("dept/regEmp", "rec", var="r", parent=ctx)
    clip.value(
        ["dept/regEmp/ename/value", "dept/dname/value"],
        "rec/@label",
        function=scalar("concat"),
    )
    clip.value(
        ["dept/regEmp/sal/value", "dept/regEmp/sal/value"],
        "rec/@pay",
        function=scalar(numeric),
    )
    instance = _dept_instance(
        rng,
        departments=rng.randint(1, 3),
        projects_range=(0, 2),
        employees_range=(1, 5),
        name_pool=3,
    )
    return clip, instance, {"numeric": numeric}


#: The edit operations a ``delta``-axis script may carry.  Every op is
#: JSON-safe and addresses elements *positionally* (indices are taken
#: modulo the current population, so scripts stay applicable as earlier
#: edits shrink or grow the document).
_EDIT_OPS = (
    "set-dname", "set-pname", "set-ename", "set-sal",
    "add-proj", "remove-proj", "add-emp", "remove-emp",
    "add-dept", "remove-dept",
)


def _draw_edits(rng: random.Random) -> list[dict]:
    edits: list[dict] = []
    for _ in range(rng.randint(1, 4)):
        op = rng.choice(_EDIT_OPS)
        edit: dict = {"op": op, "dept": rng.randrange(8)}
        if op == "set-dname":
            edit["text"] = rng.choice(_DEPARTMENTS) + " renamed"
        elif op == "set-pname":
            edit["proj"] = rng.randrange(8)
            edit["text"] = rng.choice(_PROJECTS)
        elif op == "set-ename":
            edit["emp"] = rng.randrange(8)
            edit["text"] = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
        elif op == "set-sal":
            edit["emp"] = rng.randrange(8)
            edit["value"] = rng.randrange(8000, 17000, 250)
        elif op == "add-proj":
            edit["pid"] = rng.randrange(1, 7)
            edit["text"] = rng.choice(_PROJECTS)
            edit["position"] = rng.randrange(8)
        elif op == "remove-proj":
            edit["proj"] = rng.randrange(8)
        elif op == "add-emp":
            edit["pid"] = rng.randrange(1, 7)
            edit["text"] = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
            edit["value"] = rng.randrange(8000, 17000, 250)
        elif op == "remove-emp":
            edit["emp"] = rng.randrange(8)
        elif op == "add-dept":
            edit["text"] = rng.choice(_DEPARTMENTS) + " new"
        edits.append(edit)
    return edits


def apply_edits(instance: XmlElement, edits: Sequence[Mapping]) -> XmlElement:
    """Apply a ``delta``-axis edit script to a *copy* of ``instance``.

    Deterministic and total: element indices wrap modulo the current
    population, and an op whose target population is empty is a no-op —
    so any script applies to any department-store instance, and the
    same (instance, script) pair always yields the same document.
    """
    edited = instance.copy()
    for edit in edits:
        op = edit["op"]
        if op == "add-dept":
            edited.append(element("dept", element("dname", text=edit["text"])))
            continue
        depts = edited.findall("dept")
        if not depts:
            continue
        dept = depts[edit["dept"] % len(depts)]
        if op == "remove-dept":
            edited.remove(dept)
        elif op == "set-dname":
            node = dept.find("dname")
            if node is not None:
                node.clear_text()
                node.set_text(edit["text"])
        elif op == "set-pname":
            projects = dept.findall("Proj")
            if projects:
                node = projects[edit["proj"] % len(projects)].find("pname")
                node.clear_text()
                node.set_text(edit["text"])
        elif op == "set-ename":
            employees = dept.findall("regEmp")
            if employees:
                node = employees[edit["emp"] % len(employees)].find("ename")
                node.clear_text()
                node.set_text(edit["text"])
        elif op == "set-sal":
            employees = dept.findall("regEmp")
            if employees:
                node = employees[edit["emp"] % len(employees)].find("sal")
                node.clear_text()
                node.set_text(edit["value"])
        elif op == "add-proj":
            position = edit["position"] % (len(dept.children) + 1)
            dept.insert(
                position,
                element(
                    "Proj", element("pname", text=edit["text"]),
                    pid=edit["pid"],
                ),
            )
        elif op == "remove-proj":
            projects = dept.findall("Proj")
            if projects:
                dept.remove(projects[edit["proj"] % len(projects)])
        elif op == "add-emp":
            dept.append(
                element(
                    "regEmp",
                    element("ename", text=edit["text"]),
                    element("sal", text=edit["value"]),
                    pid=edit["pid"],
                )
            )
        elif op == "remove-emp":
            employees = dept.findall("regEmp")
            if employees:
                dept.remove(employees[edit["emp"] % len(employees)])
        else:
            raise CorpusError(f"unknown delta edit op {op!r}")
    return edited


def _build_delta(rng: random.Random):
    """Incremental-recomputation cases: a grouped (Figure 7) or plain
    (Figure 5) mapping plus an edit script the farm applies with
    :func:`apply_edits` to drive ``transform_delta`` differentially."""
    grouped = rng.random() < 0.5
    params: dict = {"grouped": grouped}
    if grouped:
        target = schema(
            elem(
                "target",
                elem(
                    "project",
                    "[1..*]",
                    attr("name", STRING),
                    elem("employee", "[0..*]", attr("name", STRING)),
                ),
            )
        )
        clip = ClipMapping(_deptstore_schema(), target)
        group = clip.group(
            "dept/Proj", "project", var="p", by=["$p.pname.value"]
        )
        clip.build(
            ["dept/Proj", "dept/regEmp"],
            "project/employee",
            var=["p2", "r"],
            condition="$p2.@pid = $r.@pid",
            parent=group,
        )
        clip.value("dept/Proj/pname/value", "project/@name")
        clip.value("dept/regEmp/ename/value", "project/employee/@name")
    else:
        threshold = rng.randrange(9000, 14000, 500)
        params["threshold"] = threshold
        target = schema(
            elem(
                "target",
                elem(
                    "department",
                    "[1..*]",
                    attr("name", STRING),
                    elem("employee", "[0..*]", attr("name", STRING)),
                ),
            )
        )
        clip = ClipMapping(_deptstore_schema(), target)
        parent = clip.build("dept", "department", var="d")
        clip.build(
            "dept/regEmp",
            "department/employee",
            var="r",
            condition=f"$r.sal.value > {threshold}",
            parent=parent,
        )
        clip.value("dept/dname/value", "department/@name")
        clip.value("dept/regEmp/ename/value", "department/employee/@name")
    instance = _dept_instance(
        rng,
        departments=rng.randint(2, 5),
        projects_range=(1, 5),
        employees_range=(1, 6),
        name_pool=rng.randint(2, 6),
    )
    params["edits"] = _draw_edits(rng)
    return clip, instance, params


def _composition_source_instance(rng: random.Random) -> XmlElement:
    """A small ``S/dept/emp`` instance for the composition axis."""
    root = element("S")
    for d in range(rng.randint(1, 4)):
        dept = element(
            "dept", dname=_DEPARTMENTS[d % len(_DEPARTMENTS)]
        )
        for _ in range(rng.randint(0, 5)):
            dept.append(
                element(
                    "emp",
                    ename=f"{rng.choice(_FIRST)} {rng.choice(_LAST)}",
                    sal=rng.randrange(500, 3000, 50),
                )
            )
        root.append(dept)
    return root


def _build_composition(rng: random.Random):
    """Mapping-algebra composition cases: an ``A→B`` stage (the case's
    mapping) plus a serialized ``B→C`` stage in ``params``.

    Three second-stage shapes: ``filter`` and ``copy`` lie in the
    composable fragment (the farm demands a fused plan with
    byte-identical output); ``group`` deliberately falls outside it
    (grouping Skolems), exercising the sequential fallback and its
    :class:`~repro.errors.ComposeError` reason.
    """
    from ..io import dumps as dump_mapping

    src_a = schema(
        elem(
            "S",
            elem(
                "dept", "[0..*]", attr("dname", STRING),
                elem("emp", "[0..*]", attr("ename", STRING), attr("sal", INT)),
            ),
        )
    )
    src_b = schema(
        elem(
            "B",
            elem(
                "division", "[0..*]", attr("dn", STRING),
                elem(
                    "worker", "[0..*]",
                    attr("wname", STRING), attr("pay", INT),
                ),
            ),
        )
    )

    first_threshold = (
        None if rng.random() < 0.5 else rng.randrange(600, 2400, 100)
    )
    m_ab = ClipMapping(src_a, src_b)
    division = m_ab.build("dept", "division", var="d")
    m_ab.build(
        "dept/emp", "division/worker", var="e", parent=division,
        condition=(
            None if first_threshold is None
            else f"$e.@sal > {first_threshold}"
        ),
    )
    m_ab.value("dept/@dname", "division/@dn")
    m_ab.value("dept/emp/@ename", "division/worker/@wname")
    m_ab.value("dept/emp/@sal", "division/worker/@pay")

    shape = rng.choices(("filter", "copy", "group"), weights=(5, 3, 2))[0]
    if shape == "filter":
        # Context + filtered build reading one level up: composable.
        second_threshold = rng.randrange(800, 2600, 100)
        src_c = schema(
            elem(
                "C",
                elem(
                    "rich", "[0..*]",
                    attr("who", STRING), attr("unit", STRING),
                ),
            )
        )
        m_bc = ClipMapping(src_b, src_c)
        ctx = m_bc.context("division", var="x")
        m_bc.build(
            "division/worker", "rich", var="w", parent=ctx,
            condition=f"$w.@pay > {second_threshold}",
        )
        m_bc.value("division/worker/@wname", "rich/@who")
        m_bc.value("division/@dn", "rich/@unit")
    elif shape == "copy":
        # Structure-preserving copy of the whole chain: composable.
        src_c = schema(
            elem(
                "C",
                elem(
                    "unit", "[0..*]", attr("un", STRING),
                    elem("person", "[0..*]", attr("pn", STRING)),
                ),
            )
        )
        m_bc = ClipMapping(src_b, src_c)
        unit = m_bc.build("division", "unit", var="v")
        m_bc.build(
            "division/worker", "unit/person", var="w", parent=unit
        )
        m_bc.value("division/@dn", "unit/@un")
        m_bc.value("division/worker/@wname", "unit/person/@pn")
    else:
        # Grouping second stage: outside the composable fragment, the
        # farm checks the sequential fallback instead.
        src_c = schema(
            elem(
                "C",
                elem(
                    "crew", "[0..*]", attr("cname", STRING),
                    elem("member", "[0..*]", attr("mn", STRING)),
                ),
            )
        )
        m_bc = ClipMapping(src_b, src_c)
        group = m_bc.group(
            "division/worker", "crew", var="w", by=["$w.@wname"]
        )
        m_bc.value("division/worker/@wname", "crew/@cname")
        m_bc.build(
            "division/worker", "crew/member", var="w2", parent=group
        )
        m_bc.value("division/worker/@wname", "crew/member/@mn")
    report = check(m_bc)
    if not report.is_valid:
        raise CorpusError(
            f"composition second stage ({shape}) is invalid: "
            + "; ".join(str(issue) for issue in report.errors())
        )
    compile_clip(m_bc, require_valid=True, report=report)
    instance = _composition_source_instance(rng)
    params = {
        "compose_with": dump_mapping(m_bc),
        "compose_shape": shape,
        "expect_inlined": shape != "group",
    }
    if first_threshold is not None:
        params["first_threshold"] = first_threshold
    return m_ab, instance, params


def _build_round_trip(rng: random.Random):
    """Quasi-invertible copy-like chains for the round-trip oracle.

    A ``depth``-level repeating chain copied level by level (immediate
    children, repeating targets, identity value copies) — the fragment
    :func:`repro.algebra.quasi_inverse` accepts.  Optional: a filter on
    the deepest level (the round trip then recovers only the rows that
    pass) and a dropped attribute (never transported, so absent from
    the predicted core too).
    """
    depth = rng.randint(2, 3)
    filtered = rng.random() < 0.5
    drop_attr = rng.random() < 0.4
    threshold = rng.randrange(2, 8)
    src = None
    tgt = None
    for level in range(depth, 0, -1):
        src_children = [attr("a", INT), attr("b", INT)]
        tgt_children = [
            attr("p", INT, required=False),
            attr("q", INT, required=False),
        ]
        if src is not None:
            src_children.append(src)
            tgt_children.append(tgt)
        src = elem(f"R{level}", "[0..*]", *src_children)
        tgt = elem(f"W{level}", "[0..*]", *tgt_children)
    source = schema(elem("S", src))
    target = schema(elem("T", tgt))

    clip = ClipMapping(source, target)
    parent = None
    spath = tpath = ""
    for level in range(1, depth + 1):
        spath = f"{spath}/R{level}" if spath else f"R{level}"
        tpath = f"{tpath}/W{level}" if tpath else f"W{level}"
        condition = (
            f"$v{level}.@a > {threshold}"
            if filtered and level == depth
            else None
        )
        parent = clip.build(
            spath, tpath, var=f"v{level}", condition=condition,
            parent=parent,
        )
        clip.value(f"{spath}/@a", f"{tpath}/@p")
        if not (drop_attr and level == depth):
            clip.value(f"{spath}/@b", f"{tpath}/@q")

    instance = element("S")

    def grow(holder: XmlElement, level: int) -> None:
        if level > depth:
            return
        fanout = rng.randint(1, 3) if level == 1 else rng.randint(0, 3)
        for _ in range(fanout):
            child = element(
                f"R{level}", a=rng.randrange(10), b=rng.randrange(100)
            )
            holder.append(child)
            grow(child, level + 1)

    grow(instance, 1)
    params = {
        "round_trip": True,
        "depth": depth,
        "filtered": filtered,
        "drop_attr": drop_attr,
    }
    if filtered:
        params["threshold"] = threshold
    return clip, instance, params


_BUILDERS = {
    "deep-cpt": _build_deep_cpt,
    "aggregates": _build_aggregates,
    "inversion": _build_inversion,
    "fanout-join": _build_fanout_join,
    "skewed-groups": _build_skewed_groups,
    "value-functions": _build_value_functions,
    "delta": _build_delta,
    "composition": _build_composition,
    "round-trip": _build_round_trip,
}

assert tuple(_BUILDERS) == AXES


def resolve_axes(axes: Optional[Sequence[str]]) -> tuple[str, ...]:
    """Validate an axis selection, preserving :data:`AXES` order."""
    if axes is None:
        return AXES
    requested = list(axes)
    unknown = [axis for axis in requested if axis not in AXES]
    if unknown:
        raise CorpusError(
            f"unknown corpus axes {unknown}; choose from {', '.join(AXES)}"
        )
    if not requested:
        raise CorpusError("at least one corpus axis is required")
    return tuple(axis for axis in AXES if axis in requested)


def generate_case(seed: int, axis: str, index: int) -> CorpusCase:
    """Generate the single deterministic case ``(seed, axis, index)``.

    The case is validity-gated: a generated mapping that fails the
    Section III rules (or does not compile) raises :class:`CorpusError`
    rather than entering the corpus.
    """
    if axis not in _BUILDERS:
        raise CorpusError(
            f"unknown corpus axis {axis!r}; choose from {', '.join(AXES)}"
        )
    rng = _case_rng(seed, axis, index)
    clip, instance, params = _BUILDERS[axis](rng)
    report = check(clip)
    if not report.is_valid:
        issues = "; ".join(str(issue) for issue in report.errors())
        raise CorpusError(
            f"generated case {axis}-{index:04d} (seed {seed}) is invalid: "
            f"{issues}"
        )
    try:
        compile_clip(clip, require_valid=True, report=report)
    except ReproError as exc:
        raise CorpusError(
            f"generated case {axis}-{index:04d} (seed {seed}) does not "
            f"compile: {exc}"
        ) from exc
    return CorpusCase(
        case_id=f"{axis}-{index:04d}",
        axis=axis,
        seed=seed,
        index=index,
        mapping=clip,
        instance=instance,
        params=params,
    )


def generate_corpus(
    seed: int = 7,
    count: int = 100,
    *,
    axes: Optional[Sequence[str]] = None,
) -> list[CorpusCase]:
    """Generate ``count`` deterministic cases, round-robin over ``axes``.

    Case ``i`` draws axis ``axes[i % len(axes)]`` with per-axis index
    ``i // len(axes)``, so growing ``count`` extends the corpus without
    disturbing earlier cases — seed 7's case ``deep-cpt-0003`` is the
    same triple whether the corpus holds 30 cases or 300.
    """
    if count < 0:
        raise CorpusError(f"count must be >= 0, got {count}")
    selected = resolve_axes(axes)
    return [
        generate_case(seed, selected[i % len(selected)], i // len(selected))
        for i in range(count)
    ]
