"""clip-repro: a reproduction of *Clip: a Visual Language for Explicit
Schema Mappings* (Raffio, Braga, Ceri, Papotti, Hernández — ICDE 2008).

The package implements the full pipeline the paper describes:

* **schemas & instances** (:mod:`repro.xsd`, :mod:`repro.xml`) — the XML
  Schema trees the figures draw and the instance model they transform;
* **the Clip language** (:mod:`repro.core`) — value mappings, builders,
  build/group nodes, context propagation trees; Section III validity;
  Section IV nested-tgd semantics via :func:`repro.core.compile_clip`;
* **execution** (:mod:`repro.executor`) — direct minimum-cardinality
  evaluation of nested tgds;
* **XQuery** (:mod:`repro.xquery`) — the Section VI tgd → XQuery
  translation plus an interpreter for the emitted subset;
* **generation** (:mod:`repro.generation`) — Clio's tableaux/skeleton
  pipeline and Clip's Section V extension, plus the Table I flexibility
  measurement;
* **scenarios** (:mod:`repro.scenarios`) — every paper figure as an
  executable object, and synthetic workloads for the benchmarks.

Quickstart::

    from repro import Transformer
    from repro.scenarios import deptstore

    transformer = Transformer(deptstore.mapping_fig5())
    result = transformer(deptstore.source_instance())
    print(transformer.tgd)          # the paper's nested tgd notation
    print(transformer.xquery_text)  # the generated XQuery
"""

from __future__ import annotations

from . import (
    algebra,
    core,
    errors,
    executor,
    generation,
    runtime,
    scenarios,
    xml,
    xquery,
    xsd,
)
from .algebra import compose_fingerprint, compose_tgds
from .errors import ComposeError
from .core.compile import compile_clip
from .core.mapping import ClipMapping
from .core.tgd import NestedTgd
from .core.validity import ValidityReport, check
from .executor.engine import execute
from .xml.model import XmlElement
from .xquery.emit import emit_xquery
from .xquery.interp import run_query
from .xquery.serialize import serialize as serialize_xquery

__version__ = "1.0.0"


class Transformer:
    """End-to-end convenience wrapper: Clip mapping → tgd → execution.

    Compiles the mapping once; calling the transformer converts source
    instances to target instances.  ``engine`` selects the direct tgd
    executor (``"tgd"``, default), the generated-XQuery interpreter
    (``"xquery"``), or the generated-XSLT interpreter (``"xslt"``,
    supported for non-grouped, non-distributed mappings) — all engines
    produce identical instances, which the test suite verifies
    extensively.
    """

    def __init__(self, mapping: ClipMapping, *, engine: str = "tgd",
                 require_valid: bool = True, optimize: bool | None = None,
                 exec_mode: str | None = None, trace=None):
        if engine not in ("tgd", "xquery", "xslt"):
            raise ValueError(
                f"unknown engine {engine!r}; use 'tgd', 'xquery' or 'xslt'"
            )
        self.mapping = mapping
        self.engine = engine
        #: Tgd-engine evaluation strategy: ``True`` join-aware compiled
        #: plans, ``False`` the naive reference path, ``None`` the
        #: ``CLIP_OPTIMIZE`` environment default (on).
        self.optimize = optimize
        #: Tgd-engine execution mode: ``"interp"`` walks the compiled
        #: plans through the interpreter, ``"codegen"`` runs the
        #: specialized generated-Python program (optimized plans only),
        #: ``None`` the ``CLIP_EXEC_MODE`` environment default (interp).
        self.exec_mode = exec_mode
        #: Optional :class:`repro.runtime.trace.SpanTracer`: every call
        #: records compile → prepare → execute spans into it (see
        #: :mod:`repro.runtime.trace`); ``None`` records nothing and
        #: costs nothing.
        self._trace = trace
        if trace:
            span = trace.begin("compile")
            self.report = check(mapping)
            self.tgd = compile_clip(
                mapping, require_valid=require_valid, report=self.report
            )
            trace.end(span, valid=self.report.is_valid)
            self._seed_trace(trace)
        else:
            self.report: ValidityReport = check(mapping)
            self.tgd: NestedTgd = compile_clip(
                mapping, require_valid=require_valid, report=self.report
            )
        self._plan = None
        self._query = None
        self._stylesheet = None

    def _seed_trace(self, trace) -> None:
        """Namespace the tracer's span ids under this mapping's base
        fingerprint (first mapping wins when a tracer is shared)."""
        if not trace.seed:
            from .runtime.plan import trace_seed

            trace.seed = trace_seed(self.mapping, self.engine)
        if not trace.engine:
            trace.engine = self.engine

    @property
    def plan(self):
        """The prepared tgd evaluation plan (built lazily, reused across
        calls)."""
        if self._plan is None:
            from .executor import prepare

            self._plan = prepare(
                self.tgd, optimize=self.optimize, exec_mode=self.exec_mode
            )
        return self._plan

    @property
    def xquery(self):
        """The emitted XQuery AST (built lazily)."""
        if self._query is None:
            self._query = emit_xquery(self.tgd)
        return self._query

    @property
    def xquery_text(self) -> str:
        """The generated XQuery, as query text."""
        return serialize_xquery(self.xquery)

    @property
    def stylesheet(self):
        """The emitted XSLT stylesheet (built lazily; may raise
        :class:`repro.xslt.UnsupportedForXslt`)."""
        if self._stylesheet is None:
            from .xslt import emit_xslt

            self._stylesheet = emit_xslt(self.tgd)
        return self._stylesheet

    @property
    def xslt_text(self) -> str:
        """The generated XSLT, as stylesheet text."""
        return self.stylesheet.serialize()

    def __call__(self, source_instance: XmlElement) -> XmlElement:
        return self.apply(source_instance)

    def apply(self, source_instance: XmlElement, *,
              trace=None) -> XmlElement:
        """Transform one source instance.

        ``trace`` overrides the constructor's tracer for this call; a
        falsy tracer (the default when neither is set) runs the exact
        untraced path.  Traced calls record a ``prepare`` span (the
        lazy engine-artifact build; instantaneous once built) and a
        ``transform`` span containing the engine's execute/plan/eval
        subtree — traced and untraced runs produce byte-identical
        outputs, which the differential suite asserts.
        """
        if trace is None:
            trace = self._trace
        if not trace:
            if self.engine == "xquery":
                return run_query(self.xquery, source_instance)
            if self.engine == "xslt":
                from .xslt import apply_stylesheet

                return apply_stylesheet(self.stylesheet, source_instance)
            return self.plan.run(source_instance)
        self._seed_trace(trace)
        # The prepare span is always present (stable trace shape across
        # repeated calls); after the first call it is an instant no-op.
        span = trace.begin("prepare")
        if self.engine == "xquery":
            artifact = self.xquery
        elif self.engine == "xslt":
            artifact = self.stylesheet
        else:
            artifact = self.plan
        trace.end(span)
        span = trace.begin("transform")
        try:
            if self.engine == "xquery":
                result = run_query(artifact, source_instance, trace=trace)
            elif self.engine == "xslt":
                from .xslt import apply_stylesheet

                execute = trace.begin("execute")
                try:
                    result = apply_stylesheet(artifact, source_instance)
                except Exception:
                    execute.attrs["status"] = "error"
                    trace.end(execute)
                    raise
                trace.end(
                    execute, status="ok",
                    source_elements=source_instance.size(),
                    target_elements=result.size(),
                )
            else:
                result = artifact.run(source_instance, trace=trace)
        except Exception:
            span.attrs["status"] = "error"
            trace.end(span)
            raise
        trace.end(span, status="ok")
        return result

    def explain(self, source_instance: XmlElement):
        """Run the mapping with per-level counters (iterations, filtered
        tuples, elements built, groups); returns an
        :class:`repro.executor.ExecutionReport` whose ``result`` equals
        what calling the transformer would produce."""
        from .executor import explain as _explain

        return _explain(self.tgd, source_instance)

    def explain_plan(self, source_instance: XmlElement):
        """Compile and run the mapping through the join-aware planner,
        returning a :class:`repro.executor.PlanExplain` — the compiled
        plan (joins, pushed filters, generator order) plus runtime
        counters, renderable as text or ``clip-plan-explain`` JSON."""
        from .executor import explain_plan as _explain_plan

        return _explain_plan(self.tgd, source_instance,
                             optimize=self.optimize,
                             exec_mode=self.exec_mode)

    def compose(self, other) -> "ComposedTransformer":
        """Fuse this ``A→B`` transformer with a ``B→C`` mapping (or
        transformer) into one ``A→C`` transformer.

        When the pair lies in the composable fragment
        (:func:`repro.algebra.compose_tgds`) the result runs a single
        fused one-pass plan; otherwise it silently degrades to
        sequential execution — either way the output is byte-identical
        to applying the two stages in order, and
        :attr:`ComposedTransformer.mode` says which path runs.
        """
        if not isinstance(other, Transformer):
            other = Transformer(
                other, engine=self.engine,
                optimize=self.optimize, exec_mode=self.exec_mode,
            )
        return ComposedTransformer(self, other)


class ComposedTransformer:
    """An ``A→C`` transformer built from an ``A→B`` and a ``B→C`` one.

    Construction attempts algebraic composition
    (:func:`repro.algebra.compose_tgds`): inside the composable
    fragment the two tgds fuse into one, whose single-pass plan is
    byte-identical to chaining the stages (``mode == "inlined"``).
    Outside the fragment — grouping, aggregates, opaque value flow —
    the transformer keeps both stages and runs them in sequence
    (``mode == "sequential"``), recording the machine-readable
    :attr:`fallback_reason` from the :class:`~repro.errors.ComposeError`.
    Either mode produces the same bytes, which the test suite asserts
    across the corpus.
    """

    def __init__(self, first: Transformer, second: Transformer):
        if first.engine != second.engine:
            raise ValueError(
                f"cannot compose transformers on different engines "
                f"({first.engine!r} vs {second.engine!r})"
            )
        self.first = first
        self.second = second
        self.engine = first.engine
        #: ``"inlined"`` (one fused plan) or ``"sequential"`` (fallback).
        self.mode = "inlined"
        #: The :class:`~repro.errors.ComposeError` reason tag when the
        #: pair fell outside the composable fragment, else ``None``.
        self.fallback_reason: str | None = None
        #: The fused ``A→C`` nested tgd (``None`` in sequential mode).
        self.tgd: NestedTgd | None = None
        try:
            self.tgd = compose_tgds(first.tgd, second.tgd)
        except ComposeError as error:
            self.mode = "sequential"
            self.fallback_reason = error.reason
        self._plan = None

    @property
    def fingerprint(self) -> str:
        """The fused cache key: :func:`repro.algebra.compose_fingerprint`
        over the two stages' structural fingerprints (stable whether or
        not the pair actually inlined)."""
        from .runtime.plan import fingerprint as _fingerprint

        return compose_fingerprint(
            _fingerprint(self.first.mapping, self.engine,
                         optimize=self.first.optimize,
                         exec_mode=self.first.exec_mode),
            _fingerprint(self.second.mapping, self.engine,
                         optimize=self.second.optimize,
                         exec_mode=self.second.exec_mode),
        )

    @property
    def plan(self):
        """The fused :class:`repro.runtime.CompiledPlan` (inlined mode
        only), compiled lazily and registered in the default plan cache
        under the compose fingerprint."""
        if self.mode != "inlined":
            raise ComposeError(
                self.fallback_reason or "sequential",
                "this composition runs sequentially; it has no fused plan",
            )
        if self._plan is None:
            from .runtime import default_cache, plan_from_tgd

            cache = default_cache()
            fp = self.fingerprint
            plan = cache.peek(fp)
            if plan is None:
                plan = plan_from_tgd(
                    self.tgd, self.engine, fp=fp,
                    optimize=self.second.optimize,
                    exec_mode=self.second.exec_mode,
                )
                cache.put(plan)
            self._plan = plan
        return self._plan

    def __call__(self, source_instance: XmlElement) -> XmlElement:
        return self.apply(source_instance)

    def apply(self, source_instance: XmlElement) -> XmlElement:
        """Transform ``A`` documents straight to ``C``: the fused
        one-pass plan when inlined, the two stages in order when not."""
        if self.mode == "inlined":
            return self.plan.run(source_instance)
        return self.second.apply(self.first.apply(source_instance))


__all__ = [
    "Transformer",
    "ComposedTransformer",
    "ClipMapping",
    "NestedTgd",
    "XmlElement",
    "compile_clip",
    "check",
    "execute",
    "emit_xquery",
    "run_query",
    "serialize_xquery",
    "compose_fingerprint",
    "compose_tgds",
    "algebra",
    "core",
    "errors",
    "executor",
    "generation",
    "runtime",
    "scenarios",
    "xml",
    "xquery",
    "xsd",
    "__version__",
]
