"""The paper's running example: the department/project/employee source.

This module transcribes, verbatim from the paper:

* the source XML Schema (left side of Figure 1) with the ``@pid``
  referential constraint;
* the two-department source instance of Section I-A;
* for every figure (1, 3–9), the target schema, the Clip mapping and
  the expected output instance printed in the paper.

Each figure is packaged as a :class:`FigureScenario` so tests, examples
and benchmarks can all iterate over the same objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.mapping import ClipMapping
from ..xml.model import XmlElement, element
from ..xsd.dsl import attr, elem, keyref, schema
from ..xsd.schema import Schema
from ..xsd.types import FLOAT, INT, STRING


# -- source side -----------------------------------------------------------


def source_schema() -> Schema:
    """The source schema on the left of Figure 1."""
    return schema(
        elem(
            "source",
            elem(
                "dept",
                "[1..*]",
                elem("dname", text=STRING),
                elem(
                    "Proj",
                    "[0..*]",
                    attr("pid", INT),
                    elem("pname", text=STRING),
                ),
                elem(
                    "regEmp",
                    "[0..*]",
                    attr("pid", INT),
                    elem("ename", text=STRING),
                    elem("sal", text=INT),
                ),
            ),
        ),
        keyref("dept/regEmp/@pid", "dept/Proj/@pid"),
    )


def _proj(pid: int, pname: str) -> XmlElement:
    return element("Proj", element("pname", text=pname), pid=pid)


def _emp(pid: int, ename: str, sal: int) -> XmlElement:
    return element(
        "regEmp", element("ename", text=ename), element("sal", text=sal), pid=pid
    )


def source_instance() -> XmlElement:
    """The two-department instance of Section I-A."""
    return element(
        "source",
        element(
            "dept",
            element("dname", text="ICT"),
            _proj(1, "Appliances"),
            _proj(2, "Robotics"),
            _emp(1, "John Smith", 10000),
            _emp(1, "Andrew Clarence", 12000),
            _emp(2, "Mark Tane", 10500),
            _emp(2, "Jim Bellish", 11000),
        ),
        element(
            "dept",
            element("dname", text="Marketing"),
            _proj(1, "Brand promotion"),
            _proj(32, "Appliances"),
            _emp(1, "Richard Dawson", 30000),
            _emp(32, "Mark Tane", 10000),
            _emp(1, "Steven Aiking", 20000),
        ),
    )


# -- target schemas ----------------------------------------------------------


def target_schema_departments() -> Schema:
    """The target on the right of Figures 1 and 5: departments with
    nested projects and employees."""
    return schema(
        elem(
            "target",
            elem(
                "department",
                "[1..*]",
                elem("project", "[0..*]", attr("name", STRING)),
                elem("employee", "[0..*]", attr("name", STRING)),
            ),
        )
    )


def target_schema_fig3() -> Schema:
    """The Figure 3 target: employees (with optional works-in) and areas."""
    return schema(
        elem(
            "target",
            elem(
                "department",
                "[1..*]",
                elem(
                    "employee",
                    "[0..*]",
                    attr("name", STRING),
                    elem("works-in", "[0..1]", text=INT),
                ),
                elem("area", "[0..*]", text=INT),
            ),
        )
    )


def target_schema_projemp() -> Schema:
    """The Figure 6 target: a flat list of project-emp associations."""
    return schema(
        elem(
            "target",
            elem(
                "project-emp",
                "[1..*]",
                attr("pname", STRING),
                attr("ename", STRING),
            ),
        )
    )


def target_schema_grouped_projects() -> Schema:
    """The Figure 7 target: projects (grouped by name) with employees."""
    return schema(
        elem(
            "target",
            elem(
                "project",
                "[1..*]",
                attr("name", STRING),
                elem("employee", "[0..*]", attr("name", STRING)),
            ),
        )
    )


def target_schema_inverted() -> Schema:
    """The Figure 8 target: projects with the departments they run in."""
    return schema(
        elem(
            "target",
            elem(
                "project",
                "[1..*]",
                attr("name", STRING),
                elem("department", "[0..*]", attr("name", STRING)),
            ),
        )
    )


def target_schema_aggregates() -> Schema:
    """The Figure 9 target: departments with aggregate attributes.

    ``@avg-sal`` is optional — XQuery's ``avg(())`` is the empty
    sequence, so a department without employees carries no average —
    and decimal-typed, since averages need not be integral (the paper
    writes ``int`` because its example data happens to average evenly).
    """
    return schema(
        elem(
            "target",
            elem(
                "department",
                "[1..*]",
                attr("name", STRING),
                attr("numProj", INT),
                attr("numEmps", INT),
                attr("avg-sal", FLOAT, required=False),
            ),
        )
    )


# -- figure mappings ------------------------------------------------------------


def mapping_fig3() -> ClipMapping:
    """Figure 3: an employee per regEmp with salary > 11000."""
    clip = ClipMapping(source_schema(), target_schema_fig3())
    clip.build("dept/regEmp", "department/employee", var="r",
               condition="$r.sal.value > 11000")
    clip.value("dept/regEmp/ename/value", "department/employee/@name")
    return clip


def mapping_fig4(*, context_arc: bool = True) -> ClipMapping:
    """Figure 4: context propagation — employees within their dept's
    department.  With ``context_arc=False``, the paper's variant where
    employees repeat within all departments."""
    clip = ClipMapping(source_schema(), target_schema_departments())
    dept_node = clip.build("dept", "department", var="d")
    clip.build(
        "dept/regEmp",
        "department/employee",
        var="r",
        condition="$r.sal.value > 11000",
        parent=dept_node if context_arc else None,
    )
    clip.value("dept/regEmp/ename/value", "department/employee/@name")
    return clip


def mapping_fig5() -> ClipMapping:
    """Figure 5: a CPT propagating the dept context to both projects
    and employees — the mapping 'no state-of-the-art tool' captures."""
    clip = ClipMapping(source_schema(), target_schema_departments())
    dept_node = clip.build("dept", "department", var="d")
    clip.build("dept/Proj", "department/project", var="p", parent=dept_node)
    clip.build("dept/regEmp", "department/employee", var="r", parent=dept_node)
    clip.value("dept/Proj/pname/value", "department/project/@name")
    clip.value("dept/regEmp/ename/value", "department/employee/@name")
    return clip


def mapping_fig1_desired() -> ClipMapping:
    """The Section I motivating mapping, expressed correctly in Clip
    (it coincides with Figure 5's CPT)."""
    return mapping_fig5()


def mapping_fig6(
    *, join_condition: bool = True, outer_context: bool = True
) -> ClipMapping:
    """Figure 6: join of Projs and regEmps within a dept context.

    The flags give the paper's two variants: without the join condition
    (full per-dept Cartesian product) and additionally without the
    top-level build node (document-wide Cartesian product).
    """
    clip = ClipMapping(source_schema(), target_schema_projemp())
    parent = clip.context("dept", var="d") if outer_context else None
    clip.build(
        ["dept/Proj", "dept/regEmp"],
        "project-emp",
        var=["p", "r"],
        condition="$p.@pid = $r.@pid" if join_condition else None,
        parent=parent,
    )
    clip.value("dept/Proj/pname/value", "project-emp/@pname")
    clip.value("dept/regEmp/ename/value", "project-emp/@ename")
    return clip


def mapping_fig7() -> ClipMapping:
    """Figure 7: group Projs by name; employees joined per group."""
    clip = ClipMapping(source_schema(), target_schema_grouped_projects())
    group = clip.group(
        "dept/Proj", "project", var="p", by=["$p.pname.value"]
    )
    clip.build(
        ["dept/Proj", "dept/regEmp"],
        "project/employee",
        var=["p2", "r"],
        condition="$p2.@pid = $r.@pid",
        parent=group,
    )
    clip.value("dept/Proj/pname/value", "project/@name")
    clip.value("dept/regEmp/ename/value", "project/employee/@name")
    return clip


def mapping_fig8() -> ClipMapping:
    """Figure 8: invert the hierarchy — departments under grouped projects."""
    clip = ClipMapping(source_schema(), target_schema_inverted())
    group = clip.group(
        "dept/Proj", "project", var="p", by=["$p.pname.value"]
    )
    clip.build("dept", "project/department", var="d2", parent=group)
    clip.value("dept/Proj/pname/value", "project/@name")
    clip.value("dept/dname/value", "project/department/@name")
    return clip


def mapping_fig9() -> ClipMapping:
    """Figure 9: per-dept aggregates (counts and average salary)."""
    clip = ClipMapping(source_schema(), target_schema_aggregates())
    clip.build("dept", "department", var="d")
    clip.value("dept/dname/value", "department/@name")
    clip.value_aggregate("count", "dept/Proj", "department/@numProj")
    clip.value_aggregate("count", "dept/regEmp", "department/@numEmps")
    clip.value_aggregate("avg", "dept/regEmp/sal/value", "department/@avg-sal")
    return clip


# -- expected outputs (transcribed from the paper) ----------------------------------


def expected_fig3() -> XmlElement:
    return element(
        "target",
        element(
            "department",
            element("employee", name="Andrew Clarence"),
            element("employee", name="Richard Dawson"),
            element("employee", name="Steven Aiking"),
        ),
    )


def expected_fig4() -> XmlElement:
    return element(
        "target",
        element("department", element("employee", name="Andrew Clarence")),
        element(
            "department",
            element("employee", name="Richard Dawson"),
            element("employee", name="Steven Aiking"),
        ),
    )


def expected_fig4_no_arc() -> XmlElement:
    employees = ["Andrew Clarence", "Richard Dawson", "Steven Aiking"]
    return element(
        "target",
        element("department", *[element("employee", name=n) for n in employees]),
        element("department", *[element("employee", name=n) for n in employees]),
    )


def expected_fig5() -> XmlElement:
    """Also the desired output of the Section I motivating example."""
    return element(
        "target",
        element(
            "department",
            element("project", name="Appliances"),
            element("project", name="Robotics"),
            element("employee", name="John Smith"),
            element("employee", name="Andrew Clarence"),
            element("employee", name="Mark Tane"),
            element("employee", name="Jim Bellish"),
        ),
        element(
            "department",
            element("project", name="Brand promotion"),
            element("project", name="Appliances"),
            element("employee", name="Richard Dawson"),
            element("employee", name="Mark Tane"),
            element("employee", name="Steven Aiking"),
        ),
    )


def expected_fig6() -> XmlElement:
    pairs = [
        ("Appliances", "John Smith"),
        ("Appliances", "Andrew Clarence"),
        ("Robotics", "Mark Tane"),
        ("Robotics", "Jim Bellish"),
        ("Brand promotion", "Richard Dawson"),
        ("Appliances", "Mark Tane"),
        ("Brand promotion", "Steven Aiking"),
    ]
    return element(
        "target",
        *[element("project-emp", pname=p, ename=e) for p, e in pairs],
    )


def expected_fig7() -> XmlElement:
    return element(
        "target",
        element(
            "project",
            element("employee", name="John Smith"),
            element("employee", name="Andrew Clarence"),
            element("employee", name="Mark Tane"),
            name="Appliances",
        ),
        element(
            "project",
            element("employee", name="Mark Tane"),
            element("employee", name="Jim Bellish"),
            name="Robotics",
        ),
        element(
            "project",
            element("employee", name="Richard Dawson"),
            element("employee", name="Steven Aiking"),
            name="Brand promotion",
        ),
    )


def expected_fig8() -> XmlElement:
    return element(
        "target",
        element(
            "project",
            element("department", name="ICT"),
            element("department", name="Marketing"),
            name="Appliances",
        ),
        element("project", element("department", name="ICT"), name="Robotics"),
        element(
            "project",
            element("department", name="Marketing"),
            name="Brand promotion",
        ),
    )


def expected_fig9() -> XmlElement:
    return element(
        "target",
        element("department", **{"name": "ICT", "numProj": 2, "numEmps": 4, "avg-sal": 10875}),
        element(
            "department",
            **{"name": "Marketing", "numProj": 2, "numEmps": 3, "avg-sal": 20000},
        ),
    )


# -- packaged scenarios ------------------------------------------------------------


@dataclass(frozen=True)
class FigureScenario:
    """One executable paper figure: mapping factory plus expected output."""

    figure: str
    description: str
    make_mapping: Callable[[], ClipMapping]
    expected: Callable[[], XmlElement]
    #: True when sibling order in the expected output is semantically
    #: meaningful in the paper's printed result.
    ordered: bool = True


FIGURES: tuple[FigureScenario, ...] = (
    FigureScenario(
        "fig3",
        "simple filtered mapping with minimum-cardinality department",
        mapping_fig3,
        expected_fig3,
    ),
    FigureScenario(
        "fig4",
        "context propagation: employees nested per department",
        mapping_fig4,
        expected_fig4,
    ),
    FigureScenario(
        "fig4-no-arc",
        "no context arc: employees repeated within all departments",
        lambda: mapping_fig4(context_arc=False),
        expected_fig4_no_arc,
    ),
    FigureScenario(
        "fig5",
        "context propagation tree: the Section I motivating mapping",
        mapping_fig5,
        expected_fig5,
    ),
    FigureScenario(
        "fig6",
        "join of Projs and regEmps constrained by a CPT",
        mapping_fig6,
        expected_fig6,
        # The paper's engine produced the join pairs regEmp-major; ours
        # iterates Proj-major.  The multiset of pairs is identical, so
        # the comparison is order-insensitive.
        ordered=False,
    ),
    FigureScenario(
        "fig7",
        "grouping by project name with per-group join",
        mapping_fig7,
        expected_fig7,
    ),
    FigureScenario(
        "fig8",
        "hierarchy inversion: departments under grouped projects",
        mapping_fig8,
        expected_fig8,
    ),
    FigureScenario(
        "fig9",
        "aggregates: project/employee counts and average salary",
        mapping_fig9,
        expected_fig9,
    ),
)


def scenario(figure: str) -> FigureScenario:
    """Look up a packaged figure scenario by id (e.g. ``"fig7"``)."""
    for candidate in FIGURES:
        if candidate.figure == figure:
            return candidate
    raise KeyError(f"unknown figure scenario {figure!r}")
