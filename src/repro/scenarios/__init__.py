"""Paper scenarios: the running example, Figure 10, Table I rows, workloads."""

from . import deptstore, generic, published, workload
from .deptstore import FIGURES, FigureScenario, scenario
from .published import TABLE1_ROWS, PublishedExample
from .workload import (
    DeptstoreSpec,
    GenericSpec,
    make_deptstore_instance,
    make_generic_instance,
)

__all__ = [
    "deptstore",
    "generic",
    "published",
    "workload",
    "FIGURES",
    "FigureScenario",
    "scenario",
    "TABLE1_ROWS",
    "PublishedExample",
    "DeptstoreSpec",
    "GenericSpec",
    "make_deptstore_instance",
    "make_generic_instance",
]
