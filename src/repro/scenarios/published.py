"""Reconstructions of the published examples behind Table I.

Table I measures Clip's *flexibility* — how many more meaningful
mappings Clip can draw than Clio generates — on three published Clio
examples plus this paper's Figure 1:

====================  ==============  =====================
Example (source)      Value mappings  Extra mappings (Clip)
====================  ==============  =====================
Figure 1 in [2]       7               4
Figure 3 in [2]       4               1
Figure 1 in [1]       3               1
Figure 1 (this paper) 2               4
====================  ==============  =====================

We only know those figures through this paper's citation, so the
schemas below are reconstructions built from the original papers'
well-known running examples, each with the *same number of value
mappings* as the row reports (see DESIGN.md, substitutions).  The
quantity under reproduction is the relationship — Clip expresses
strictly more meaningful mappings, with at least the reported extras —
not the pixel-exact schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.mapping import ValueMapping
from ..xml.model import XmlElement, element
from ..xsd.dsl import attr, elem, keyref, schema
from ..xsd.schema import Schema
from ..xsd.types import INT, STRING
from . import deptstore


@dataclass(frozen=True)
class PublishedExample:
    """One Table I row: schemas, value mappings, witness instance."""

    row: str
    paper_value_mappings: int
    paper_extra: int
    source: Schema
    target: Schema
    value_mappings: tuple[ValueMapping, ...]
    witness: XmlElement


def _vm(source: Schema, target: Schema, src_path: str, tgt_path: str) -> ValueMapping:
    return ValueMapping([source.value(src_path)], target.value(tgt_path))


# -- Figure 1 in [2] (Fuxman et al., Nested Mappings, VLDB 2006) --------------


def fuxman_fig1() -> PublishedExample:
    """Departments with nested employees, seven attribute-level
    correspondences — the motivating example of the nested-mappings
    paper."""
    source = schema(
        elem(
            "src",
            elem(
                "dept",
                "[0..*]",
                elem("dname", text=STRING),
                elem("budget", text=INT),
                elem(
                    "emp",
                    "[0..*]",
                    elem("ename", text=STRING),
                    elem("salary", text=INT),
                    elem("addr", text=STRING),
                    elem("phone", text=STRING),
                    elem("office", text=STRING),
                ),
            ),
        )
    )
    target = schema(
        elem(
            "tgt",
            elem(
                "department",
                "[0..*]",
                attr("name", STRING, required=False),
                attr("funds", INT, required=False),
                elem(
                    "employee",
                    "[0..*]",
                    attr("name", STRING, required=False),
                    attr("pay", INT, required=False),
                    attr("address", STRING, required=False),
                    attr("phone", STRING, required=False),
                    attr("office", STRING, required=False),
                ),
            ),
        )
    )
    vms = (
        _vm(source, target, "dept/dname/value", "department/@name"),
        _vm(source, target, "dept/budget/value", "department/@funds"),
        _vm(source, target, "dept/emp/ename/value", "department/employee/@name"),
        _vm(source, target, "dept/emp/salary/value", "department/employee/@pay"),
        _vm(source, target, "dept/emp/addr/value", "department/employee/@address"),
        _vm(source, target, "dept/emp/phone/value", "department/employee/@phone"),
        _vm(source, target, "dept/emp/office/value", "department/employee/@office"),
    )
    # The witness has a homonymous department (two "CS" sites) and a
    # cross-department homonymous employee, so grouping variants are
    # observably different from the ungrouped mappings.
    witness = element(
        "src",
        element(
            "dept",
            element("dname", text="CS"),
            element("budget", text=100),
            _fuxman_emp("Ann", 50, "12 Oak", "555-1", "B1"),
            _fuxman_emp("Bob", 60, "3 Elm", "555-2", "B2"),
        ),
        element(
            "dept",
            element("dname", text="EE"),
            element("budget", text=80),
            # Ann appears verbatim in two departments: full-key employee
            # grouping merges her, per-department nesting does not.
            _fuxman_emp("Ann", 50, "12 Oak", "555-1", "B1"),
        ),
        element(
            "dept",
            element("dname", text="CS"),
            element("budget", text=100),
            _fuxman_emp("Cid", 45, "9 Fir", "555-3", "D1"),
        ),
    )
    return PublishedExample("Figure 1 in [2]", 7, 4, source, target, vms, witness)


def _fuxman_emp(name: str, salary: int, addr: str, phone: str, office: str) -> XmlElement:
    return element(
        "emp",
        element("ename", text=name),
        element("salary", text=salary),
        element("addr", text=addr),
        element("phone", text=phone),
        element("office", text=office),
    )


# -- Figure 3 in [2]: flattening projects and employees -------------------------


def fuxman_fig3() -> PublishedExample:
    """Sibling projects and employees related by a key, flattened into
    assignment associations — four correspondences.  The one extra
    meaningful Clip mapping is the full Cartesian product obtained by
    dropping the join condition the referential constraint suggests."""
    source = schema(
        elem(
            "src",
            elem(
                "proj",
                "[0..*]",
                attr("pid", INT),
                elem("pname", text=STRING),
                elem("budget", text=INT),
            ),
            elem(
                "emp",
                "[0..*]",
                attr("pid", INT),
                elem("ename", text=STRING),
                elem("sal", text=INT),
            ),
        ),
        keyref("emp/@pid", "proj/@pid"),
    )
    target = schema(
        elem(
            "tgt",
            elem(
                "assignment",
                "[0..*]",
                attr("project", STRING, required=False),
                attr("funds", INT, required=False),
                attr("employee", STRING, required=False),
                attr("salary", INT, required=False),
            ),
        )
    )
    vms = (
        _vm(source, target, "proj/pname/value", "assignment/@project"),
        _vm(source, target, "proj/budget/value", "assignment/@funds"),
        _vm(source, target, "emp/ename/value", "assignment/@employee"),
        _vm(source, target, "emp/sal/value", "assignment/@salary"),
    )
    witness = element(
        "src",
        element("proj", element("pname", text="Apollo"), element("budget", text=10), pid=1),
        element("proj", element("pname", text="Zeus"), element("budget", text=20), pid=2),
        element("emp", element("ename", text="Ann"), element("sal", text=5), pid=1),
        element("emp", element("ename", text="Bob"), element("sal", text=6), pid=1),
        element("emp", element("ename", text="Cid"), element("sal", text=7), pid=2),
    )
    return PublishedExample("Figure 3 in [2]", 4, 1, source, target, vms, witness)


# -- Figure 1 in [1] (Popa et al., Translating Web Data, VLDB 2002) ---------------


def popa_fig1() -> PublishedExample:
    """The expenseDB → statDB example: companies and grants related by
    a foreign key, three correspondences."""
    source = schema(
        elem(
            "expenseDB",
            elem(
                "company",
                "[0..*]",
                elem("name", text=STRING),
                elem("city", text=STRING),
            ),
            elem(
                "grant",
                "[0..*]",
                elem("recipient", text=STRING),
                elem("amount", text=INT),
            ),
        ),
        keyref("grant/recipient/value", "company/name/value"),
    )
    target = schema(
        elem(
            "statDB",
            elem(
                "organization",
                "[0..*]",
                attr("code", STRING, required=False),
                attr("city", STRING, required=False),
                elem("funding", "[0..*]", attr("budget", INT, required=False)),
            ),
        )
    )
    vms = (
        _vm(source, target, "company/name/value", "organization/@code"),
        _vm(source, target, "company/city/value", "organization/@city"),
        _vm(source, target, "grant/amount/value", "organization/funding/@budget"),
    )
    witness = element(
        "expenseDB",
        element(
            "company", element("name", text="Acme"), element("city", text="Rome")
        ),
        element(
            "company", element("name", text="Bit"), element("city", text="Milan")
        ),
        element(
            "grant", element("recipient", text="Acme"), element("amount", text=100)
        ),
        element(
            "grant", element("recipient", text="Acme"), element("amount", text=50)
        ),
        element(
            "grant", element("recipient", text="Bit"), element("amount", text=70)
        ),
    )
    return PublishedExample("Figure 1 in [1]", 3, 1, source, target, vms, witness)


# -- Figure 1 of this paper -----------------------------------------------------


def clip_fig1() -> PublishedExample:
    """The motivating example of Section I, with its two value mappings."""
    source = deptstore.source_schema()
    target = deptstore.target_schema_departments()
    vms = (
        _vm(source, target, "dept/Proj/pname/value", "department/project/@name"),
        _vm(source, target, "dept/regEmp/ename/value", "department/employee/@name"),
    )
    return PublishedExample(
        "Figure 1 (this paper)", 2, 4, source, target, vms, deptstore.source_instance()
    )


TABLE1_ROWS: tuple[Callable[[], PublishedExample], ...] = (
    fuxman_fig1,
    fuxman_fig3,
    popa_fig1,
    clip_fig1,
)
