"""Synthetic workload generation for benchmarks and property tests.

The paper's instances are small illustrations; the benchmark harness
needs the *same shapes* at scale.  :func:`make_deptstore_instance`
produces arbitrarily large instances of the paper's source schema with
controlled fan-outs, and :func:`make_generic_instance` scales the
Figure 10 schema.  Both are deterministic in their ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..xml.model import XmlElement, element

_FIRST = ["John", "Mary", "Andrew", "Lucy", "Mark", "Jim", "Sara", "Paul",
          "Rita", "Tom", "Nina", "Carl", "Dana", "Hugo", "Iris", "Ben"]
_LAST = ["Smith", "Clarence", "Tane", "Bellish", "Dawson", "Aiking",
         "Rossi", "Verdi", "Kent", "Lane", "Moss", "Nash", "Boyd", "Cole"]
_PROJECTS = ["Appliances", "Robotics", "Brand promotion", "Analytics",
             "Cloud", "Mobility", "Security", "Logistics", "Vision", "Audio"]
_DEPARTMENTS = ["ICT", "Marketing", "Sales", "R&D", "Finance", "Legal",
                "Operations", "Support", "Design", "QA"]


@dataclass(frozen=True)
class DeptstoreSpec:
    """Fan-out parameters for a synthetic dept-store instance."""

    departments: int = 10
    projects_per_dept: int = 5
    employees_per_dept: int = 20
    #: How many distinct project names to draw from — smaller values
    #: create more cross-department homonyms (heavier grouping).
    project_name_pool: int = 10
    seed: int = 7

    @property
    def total_elements(self) -> int:
        per_dept = 1 + 2 * self.projects_per_dept + 3 * self.employees_per_dept + 1
        return 1 + self.departments * per_dept


def make_deptstore_instance(spec: DeptstoreSpec = DeptstoreSpec()) -> XmlElement:
    """A synthetic instance of the paper's source schema.

    Every employee's ``@pid`` refers to a project of the same
    department, so the referential constraint holds by construction.
    """
    rng = random.Random(spec.seed)
    root = XmlElement("source")
    pool = [
        _PROJECTS[i % len(_PROJECTS)] + ("" if i < len(_PROJECTS) else f" {i}")
        for i in range(max(1, spec.project_name_pool))
    ]
    for d in range(spec.departments):
        name = _DEPARTMENTS[d % len(_DEPARTMENTS)] + (
            "" if d < len(_DEPARTMENTS) else f" {d}"
        )
        dept = element("dept", element("dname", text=name))
        pids = []
        for p in range(spec.projects_per_dept):
            pid = p + 1
            pids.append(pid)
            dept.append(
                element(
                    "Proj",
                    element("pname", text=rng.choice(pool)),
                    pid=pid,
                )
            )
        for _ in range(spec.employees_per_dept):
            full_name = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
            dept.append(
                element(
                    "regEmp",
                    element("ename", text=full_name),
                    element("sal", text=rng.randrange(8000, 32000, 500)),
                    pid=rng.choice(pids) if pids else 1,
                )
            )
        root.append(dept)
    return root


@dataclass(frozen=True)
class GenericSpec:
    """Fan-out parameters for a synthetic Figure 10 instance."""

    a_count: int = 10
    b_per_a: int = 4
    d_per_a: int = 4
    seed: int = 11


def make_generic_instance(spec: GenericSpec = GenericSpec()) -> XmlElement:
    """A synthetic instance of the Figure 10 source schema."""
    rng = random.Random(spec.seed)
    root = XmlElement("ROOT")
    for a in range(spec.a_count):
        node = element("A", aval=f"a{a}")
        for b in range(spec.b_per_a):
            node.append(
                element(
                    "B",
                    element("C", text=f"c{rng.randrange(100)}"),
                    bval=f"b{a}.{b}",
                )
            )
        for d in range(spec.d_per_a):
            node.append(
                element(
                    "D",
                    element("E", text=f"e{rng.randrange(100)}"),
                    dval=f"d{a}.{d}",
                )
            )
        root.append(node)
    return root
