"""The generic schemas of Figure 10 and the Section V-B walkthrough.

Source: ``ROOT → A[0..*]{B[0..*]{C[0..*]}, D[0..*]{E[0..*]}}``;
target: ``ROOT → F[0..*]{@att1, G[0..*]{@att2, @att3}}``.

The paper draws value nodes on ``A``/``B``/``D`` as text circles; since
our model (like XML Schema's non-mixed content) does not allow an
element to carry both text and children, the values of the *inner*
elements B, C, D, E stay text nodes while A's value is modeled as the
attribute ``@aval`` — same mapping semantics, documented substitution.

Tableaux expected (Section V-B): ``A``, ``AB``, ``ABC``, ``AD``,
``ADE`` for the source (plus the user-added ``A(B×D)``), ``F``, ``FG``
for the target.
"""

from __future__ import annotations

from ..core.mapping import ClipMapping, ValueMapping
from ..xml.model import XmlElement, element
from ..xsd.dsl import attr, elem, schema
from ..xsd.schema import Schema
from ..xsd.types import STRING


def source_schema() -> Schema:
    return schema(
        elem(
            "ROOT",
            elem(
                "A",
                "[0..*]",
                attr("aval", STRING),
                elem("B", "[0..*]", elem("C", "[0..*]", text=STRING), attr("bval", STRING)),
                elem("D", "[0..*]", elem("E", "[0..*]", text=STRING), attr("dval", STRING)),
            ),
        )
    )


def target_schema() -> Schema:
    return schema(
        elem(
            "TROOT",
            elem(
                "F",
                "[0..*]",
                attr("att1", STRING, required=False),
                elem(
                    "G",
                    "[0..*]",
                    attr("att2", STRING, required=False),
                    attr("att3", STRING, required=False),
                ),
            ),
        )
    )


def value_mappings_bd(source: Schema, target: Schema) -> list[ValueMapping]:
    """The Section V-B input: only the value mappings from B and D
    (the user did not enter the one from A)."""
    return [
        ValueMapping([source.value("A/B/@bval")], target.value("F/G/@att2")),
        ValueMapping([source.value("A/D/@dval")], target.value("F/G/@att3")),
    ]


def value_mapping_a(source: Schema, target: Schema) -> ValueMapping:
    """The value mapping from A that Figure 10 draws but Section V-B
    withholds."""
    return ValueMapping([source.value("A/@aval")], target.value("F/@att1"))


def sample_instance() -> XmlElement:
    """A small instance exercising the Cartesian-product semantics."""
    return element(
        "ROOT",
        element(
            "A",
            element("B", element("C", text="c1"), bval="b1"),
            element("B", element("C", text="c2"), bval="b2"),
            element("D", element("E", text="e1"), dval="d1"),
            aval="a1",
        ),
        element(
            "A",
            element("B", element("C", text="c3"), bval="b3"),
            element("D", element("E", text="e2"), dval="d2"),
            element("D", element("E", text="e3"), dval="d3"),
            aval="a2",
        ),
    )


def clip_mapping_nested(source: Schema, target: Schema) -> ClipMapping:
    """The Clip mapping matching the paper's first nested expression:
    ``∀ a ∈ A → ∃ f ∈ F [∀ b ∈ a.B → …], [∀ d ∈ a.D → …]``."""
    clip = ClipMapping(source, target)
    a_node = clip.build("A", "F", var="a")
    clip.build("A/B", "F/G", var="b", parent=a_node)
    clip.build("A/D", "F/G", var="d", parent=a_node)
    clip.value_mappings.extend(value_mappings_bd(source, target))
    return clip


def clip_mapping_product(source: Schema, target: Schema) -> ClipMapping:
    """The Clip mapping matching the paper's second nested expression:
    the Cartesian product of B and D with respect to A."""
    clip = ClipMapping(source, target)
    a_node = clip.context("A", var="a")
    clip.build(["A/B", "A/D"], "F/G", var=["b", "d"], parent=a_node)
    clip.value_mappings.extend(value_mappings_bd(source, target))
    return clip
