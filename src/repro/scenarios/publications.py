"""A second full domain scenario: a publications (DBLP-style) catalog.

The paper's running example is departments; this scenario stresses the
same constructs on a different shape — a bibliography with venues,
papers and authors related by a key — and chains two mappings into a
pipeline:

* **stage 1 (normalize)**: flatten the per-venue feed into a canonical
  catalog, joining papers to their venue records;
* **stage 2 (publish)**: group the canonical catalog by author,
  inverting the hierarchy (author → papers), with per-author
  aggregates — grouping, inversion and aggregates on a fresh schema.

Used by the `publications_pipeline` example and the scenario tests.
"""

from __future__ import annotations

from ..core.mapping import ClipMapping
from ..xml.model import XmlElement, element
from ..xsd.dsl import attr, elem, keyref, schema
from ..xsd.schema import Schema
from ..xsd.types import INT, STRING


def feed_schema() -> Schema:
    """Stage-1 input: the raw per-venue feed."""
    return schema(
        elem(
            "feed",
            elem(
                "venue",
                "[1..*]",
                attr("vid", INT),
                elem("vname", text=STRING),
                elem("year", text=INT),
            ),
            elem(
                "paper",
                "[0..*]",
                attr("vid", INT),
                elem("title", text=STRING),
                elem("author", "[1..*]", text=STRING),
                elem("pages", text=INT),
            ),
        ),
        keyref("paper/@vid", "venue/@vid"),
    )


def catalog_schema() -> Schema:
    """Stage-1 output / stage-2 input: the canonical catalog."""
    return schema(
        elem(
            "catalog",
            elem(
                "publication",
                "[0..*]",
                attr("venue", STRING),
                attr("year", INT),
                elem("title", text=STRING),
                elem("writer", "[1..*]", text=STRING),
            ),
        )
    )


def report_schema() -> Schema:
    """Stage-2 output: the per-author report."""
    return schema(
        elem(
            "report",
            elem(
                "author",
                "[0..*]",
                attr("name", STRING),
                attr("papers", INT),
                elem("work", "[0..*]", attr("title", STRING, required=False)),
            ),
        )
    )


def normalize_mapping() -> ClipMapping:
    """Stage 1: join papers to venues; flatten into publications."""
    clip = ClipMapping(feed_schema(), catalog_schema())
    node = clip.build(
        ["paper", "venue"],
        "publication",
        var=["p", "v"],
        condition="$p.@vid = $v.@vid",
    )
    clip.build("paper/author", "publication/writer", var="a", parent=node)
    clip.value("venue/vname/value", "publication/@venue")
    clip.value("venue/year/value", "publication/@year")
    clip.value("paper/title/value", "publication/title/value")
    clip.value("paper/author/value", "publication/writer/value")
    return clip


def publish_mapping() -> ClipMapping:
    """Stage 2: group by author (inversion) with a per-author count."""
    clip = ClipMapping(catalog_schema(), report_schema())
    group = clip.group(
        "publication/writer", "author", var="w", by=["$w.value"]
    )
    clip.build("publication", "author/work", var="p2", parent=group)
    clip.value("publication/writer/value", "author/@name")
    clip.value_aggregate("count", "publication/writer", "author/@papers")
    clip.value("publication/title/value", "author/work/@title")
    return clip


def feed_instance() -> XmlElement:
    """A small feed with shared authors across venues."""
    return element(
        "feed",
        element("venue", element("vname", text="ICDE"), element("year", text=2008), vid=1),
        element("venue", element("vname", text="VLDB"), element("year", text=2006), vid=2),
        element(
            "paper",
            element("title", text="Clip"),
            element("author", text="Raffio"),
            element("author", text="Braga"),
            element("author", text="Ceri"),
            element("pages", text=10),
            vid=1,
        ),
        element(
            "paper",
            element("title", text="Nested Mappings"),
            element("author", text="Fuxman"),
            element("author", text="Papotti"),
            element("pages", text=12),
            vid=2,
        ),
        element(
            "paper",
            element("title", text="XQBE"),
            element("author", text="Braga"),
            element("author", text="Ceri"),
            element("pages", text=3),
            vid=1,
        ),
    )
