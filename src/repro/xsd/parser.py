"""Parse and serialize a practical subset of W3C XML Schema (XSD).

Clip consumes schema *trees*; real-world schemas arrive as ``.xsd``
files.  This module maps between the two for the subset that covers the
paper's figures and the canonical relational encoding:

* one global ``xs:element`` as the document root;
* ``xs:complexType``/``xs:sequence`` with nested ``xs:element`` children
  carrying ``minOccurs``/``maxOccurs``;
* ``xs:attribute`` with ``use="required|optional"``;
* simple-typed elements (``type="xs:string"`` etc.), including
  ``xs:simpleContent``/``xs:extension`` for text-plus-attributes;
* referential constraints via ``xs:key``/``xs:keyref`` with
  ``xs:selector``/``xs:field``.

Round-trip property: ``parse_xsd(to_xsd(s))`` reproduces ``s``.
"""

from __future__ import annotations

import xml.etree.ElementTree as _ET
from typing import Optional

from ..errors import SchemaParseError
from .constraints import KeyRef
from .schema import (
    UNBOUNDED,
    AttributeDecl,
    Cardinality,
    ElementDecl,
    Schema,
)
from .types import AtomicType, type_by_xsd_name

_XS = "{http://www.w3.org/2001/XMLSchema}"


def _local(tag: str) -> str:
    return tag.split("}")[-1]


def _occurs(node: "_ET.Element") -> Cardinality:
    minimum = int(node.get("minOccurs", "1"))
    raw_max = node.get("maxOccurs", "1")
    maximum = UNBOUNDED if raw_max == "unbounded" else int(raw_max)
    return Cardinality(minimum, maximum)


def parse_xsd(text: str) -> Schema:
    """Parse XSD text into a :class:`Schema`."""
    try:
        root = _ET.fromstring(text)
    except _ET.ParseError as exc:
        raise SchemaParseError(f"malformed XSD document: {exc}") from exc
    if _local(root.tag) != "schema":
        raise SchemaParseError(f"expected xs:schema root, found <{_local(root.tag)}>")
    top_elements = [c for c in root if _local(c.tag) == "element"]
    if len(top_elements) != 1:
        raise SchemaParseError(
            f"expected exactly one global xs:element, found {len(top_elements)}"
        )
    keys: dict[str, str] = {}
    keyrefs: list[tuple[str, str, str]] = []  # (refer, selector/field path, ...)
    root_decl = _parse_element(top_elements[0], keys, keyrefs, is_root=True)
    assembled = Schema(root_decl)
    constraints = []
    for refer, selector, field in keyrefs:
        if refer not in keys:
            raise SchemaParseError(f"xs:keyref refers to unknown key {refer!r}")
        referred = assembled.value(keys[refer])
        referring = assembled.value(f"{selector}/{field}")
        constraints.append(KeyRef(referring, referred))
    assembled.constraints = tuple(constraints)
    return assembled


def _parse_element(
    node: "_ET.Element",
    keys: dict[str, str],
    keyrefs: list[tuple[str, str, str]],
    *,
    is_root: bool = False,
) -> ElementDecl:
    name = node.get("name")
    if not name:
        raise SchemaParseError("xs:element without a name")
    cardinality = Cardinality(1, 1) if is_root else _occurs(node)

    _collect_identity_constraints(node, name, keys, keyrefs)

    type_name = node.get("type")
    complex_type = next((c for c in node if _local(c.tag) == "complexType"), None)
    if type_name is not None and complex_type is not None:
        raise SchemaParseError(f"element {name!r} has both type= and inline complexType")
    if type_name is not None:
        return ElementDecl(name, cardinality=cardinality, text_type=type_by_xsd_name(type_name))
    if complex_type is None:
        # An element with neither a type nor content: model as empty string.
        return ElementDecl(name, cardinality=cardinality)
    return _parse_complex(name, cardinality, complex_type, keys, keyrefs)


def _parse_complex(
    name: str,
    cardinality: Cardinality,
    complex_type: "_ET.Element",
    keys: dict[str, str],
    keyrefs: list[tuple[str, str, str]],
) -> ElementDecl:
    attributes: list[AttributeDecl] = []
    children: list[ElementDecl] = []
    text_type: Optional[AtomicType] = None
    for part in complex_type:
        tag = _local(part.tag)
        if tag == "sequence":
            for child in part:
                if _local(child.tag) != "element":
                    raise SchemaParseError(
                        f"unsupported particle <{_local(child.tag)}> in sequence of {name!r}"
                    )
                children.append(_parse_element(child, keys, keyrefs))
        elif tag == "attribute":
            attributes.append(_parse_attribute(part, name))
        elif tag == "simpleContent":
            extension = next((c for c in part if _local(c.tag) == "extension"), None)
            if extension is None:
                raise SchemaParseError(f"simpleContent of {name!r} without extension")
            text_type = type_by_xsd_name(extension.get("base", "xs:string"))
            for sub in extension:
                if _local(sub.tag) == "attribute":
                    attributes.append(_parse_attribute(sub, name))
        else:
            raise SchemaParseError(f"unsupported construct <{tag}> in type of {name!r}")
    return ElementDecl(
        name,
        cardinality=cardinality,
        attributes=attributes,
        children=children,
        text_type=text_type,
    )


def _parse_attribute(node: "_ET.Element", owner: str) -> AttributeDecl:
    name = node.get("name")
    if not name:
        raise SchemaParseError(f"xs:attribute without a name on element {owner!r}")
    type_ = type_by_xsd_name(node.get("type", "xs:string"))
    required = node.get("use", "optional") == "required"
    return AttributeDecl(name, type_, required=required)


def _collect_identity_constraints(
    node: "_ET.Element",
    element_name: str,
    keys: dict[str, str],
    keyrefs: list[tuple[str, str, str]],
) -> None:
    for part in node:
        tag = _local(part.tag)
        if tag not in ("key", "keyref"):
            continue
        selector = next((c for c in part if _local(c.tag) == "selector"), None)
        field = next((c for c in part if _local(c.tag) == "field"), None)
        if selector is None or field is None:
            raise SchemaParseError(f"xs:{tag} on {element_name!r} missing selector/field")
        selector_path = selector.get("xpath", "").replace(".//", "")
        field_path = field.get("xpath", "")
        if field_path == ".":
            field_path = "text()"  # a field of "." selects the element's text
        if tag == "key":
            keys[part.get("name", "")] = f"{selector_path}/{field_path}"
        else:
            keyrefs.append((part.get("refer", "").split(":")[-1], selector_path, field_path))


# -- serialization ------------------------------------------------------


def to_xsd(target: Schema) -> str:
    """Serialize a schema to XSD text (the subset :func:`parse_xsd` reads)."""
    lines = ['<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">']
    constraint_lines: list[str] = []
    for index, constraint in enumerate(target.constraints):
        if isinstance(constraint, KeyRef):
            constraint_lines.extend(_keyref_lines(target, constraint, index))
    _write_element(target.root, lines, depth=1, is_root=True, trailer=constraint_lines)
    lines.append("</xs:schema>")
    return "\n".join(lines)


def _relative_value_path(target: Schema, value_node) -> tuple[str, str]:
    segments = value_node.element.path_string().split("/")[1:]
    selector = ".//" + "/".join(segments) if segments else "."
    field = f"@{value_node.attribute}" if value_node.attribute is not None else "."
    return selector, field


def _keyref_lines(target: Schema, constraint: KeyRef, index: int) -> list[str]:
    key_selector, key_field = _relative_value_path(target, constraint.referred)
    ref_selector, ref_field = _relative_value_path(target, constraint.referring)
    ref_selector = ref_selector.replace(".//", "")
    key_name = f"key{index}"
    return [
        f'<xs:key name="{key_name}">',
        f'  <xs:selector xpath="{key_selector.replace(".//", "")}"/>',
        f'  <xs:field xpath="{key_field}"/>',
        "</xs:key>",
        f'<xs:keyref name="keyref{index}" refer="{key_name}">',
        f'  <xs:selector xpath="{ref_selector}"/>',
        f'  <xs:field xpath="{ref_field}"/>',
        "</xs:keyref>",
    ]


def _occurs_attrs(decl: ElementDecl) -> str:
    bits = []
    if decl.cardinality.min != 1:
        bits.append(f' minOccurs="{decl.cardinality.min}"')
    if decl.cardinality.max is UNBOUNDED:
        bits.append(' maxOccurs="unbounded"')
    elif decl.cardinality.max != 1:
        bits.append(f' maxOccurs="{decl.cardinality.max}"')
    return "".join(bits)


def _attribute_line(attribute: AttributeDecl, pad: str) -> str:
    use = ' use="required"' if attribute.required else ""
    return f'{pad}<xs:attribute name="{attribute.name}" type="{attribute.type.xsd_name}"{use}/>'


def _write_element(
    decl: ElementDecl,
    lines: list[str],
    depth: int,
    *,
    is_root: bool = False,
    trailer: Optional[list[str]] = None,
) -> None:
    pad = "  " * depth
    occurs = "" if is_root else _occurs_attrs(decl)
    trailer = trailer or []
    simple = decl.text_type is not None and not decl.attributes and not decl.children
    if simple and not trailer:
        lines.append(
            f'{pad}<xs:element name="{decl.name}" type="{decl.text_type.xsd_name}"{occurs}/>'
        )
        return
    lines.append(f'{pad}<xs:element name="{decl.name}"{occurs}>')
    lines.append(f"{pad}  <xs:complexType>")
    if decl.text_type is not None:
        lines.append(f"{pad}    <xs:simpleContent>")
        lines.append(f'{pad}      <xs:extension base="{decl.text_type.xsd_name}">')
        for attribute in decl.attributes:
            lines.append(_attribute_line(attribute, pad + "        "))
        lines.append(f"{pad}      </xs:extension>")
        lines.append(f"{pad}    </xs:simpleContent>")
    else:
        if decl.children:
            lines.append(f"{pad}    <xs:sequence>")
            for child in decl.children:
                _write_element(child, lines, depth + 3)
            lines.append(f"{pad}    </xs:sequence>")
        for attribute in decl.attributes:
            lines.append(_attribute_line(attribute, pad + "    "))
    lines.append(f"{pad}  </xs:complexType>")
    for extra in trailer:
        lines.append(f"{pad}  {extra}")
    lines.append(f"{pad}</xs:element>")
