"""Compact construction DSL for schema trees.

The paper draws schemas as indented trees with cardinality labels; this
DSL lets scenarios build them with matching concision::

    source = schema(
        elem("source", elem("dept", "[1..*]",
            elem("dname", text=STRING),
            elem("Proj", "[0..*]", attr("pid", INT),
                 elem("pname", text=STRING)),
            elem("regEmp", "[0..*]", attr("pid", INT),
                 elem("ename", text=STRING),
                 elem("sal", text=INT)))),
        keyref("dept/regEmp/@pid", "dept/Proj/@pid"),
    )
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import SchemaError
from .constraints import KeyRef
from .schema import (
    ONE,
    AttributeDecl,
    Cardinality,
    ElementDecl,
    Schema,
    parse_cardinality,
)
from .types import AtomicType, type_by_name


def attr(name: str, type_: Union[AtomicType, str], required: bool = True) -> AttributeDecl:
    """Declare an attribute value node: ``attr("pid", INT)``."""
    if isinstance(type_, str):
        type_ = type_by_name(type_)
    return AttributeDecl(name, type_, required=required)


def elem(
    name: str,
    *parts: Union[str, Cardinality, AttributeDecl, ElementDecl],
    text: Optional[Union[AtomicType, str]] = None,
) -> ElementDecl:
    """Declare an element.

    Positional parts may be, in any order: one cardinality (a
    :class:`Cardinality` or a label like ``"[0..*]"``), attribute
    declarations, and child elements.  ``text=`` gives the element a
    text value node.
    """
    cardinality = ONE
    saw_cardinality = False
    attributes: list[AttributeDecl] = []
    children: list[ElementDecl] = []
    for part in parts:
        if isinstance(part, (str, Cardinality)):
            if saw_cardinality:
                raise SchemaError(f"element <{name}> declares two cardinalities")
            cardinality = parse_cardinality(part) if isinstance(part, str) else part
            saw_cardinality = True
        elif isinstance(part, AttributeDecl):
            attributes.append(part)
        elif isinstance(part, ElementDecl):
            children.append(part)
        else:
            raise SchemaError(
                f"unexpected part {part!r} in element <{name}> declaration"
            )
    if isinstance(text, str):
        text = type_by_name(text)
    return ElementDecl(
        name,
        cardinality=cardinality,
        attributes=attributes,
        children=children,
        text_type=text,
    )


def keyref(referring: str, referred: str) -> "UnresolvedKeyRef":
    """Declare referential integrity between two value-node paths.

    Paths are resolved against the schema when :func:`schema` assembles
    it, so ``keyref`` can be written inline before the tree exists.
    """
    return UnresolvedKeyRef(referring, referred)


class UnresolvedKeyRef:
    """A keyref declared by path strings, resolved at schema assembly."""

    def __init__(self, referring: str, referred: str):
        self.referring = referring
        self.referred = referred

    def resolve(self, target: Schema) -> KeyRef:
        return KeyRef(target.value(self.referring), target.value(self.referred))


def schema(root: ElementDecl, *constraints: Union[KeyRef, UnresolvedKeyRef]) -> Schema:
    """Assemble a :class:`Schema` from a root element and constraints."""
    assembled = Schema(root)
    assembled.constraints = tuple(
        c.resolve(assembled) if isinstance(c, UnresolvedKeyRef) else c
        for c in constraints
    )
    return assembled
