"""Canonical conversion of relational schemas into XML Schemas.

"Clip also works with relational schemas, as long as they are converted
in a canonical way into XML Schemas" (Section I).  The canonical
encoding used here is the standard one from the Clio papers: a database
becomes a root element; each table becomes a repeating element
``[0..*]`` under the root; each column becomes an attribute typed after
the column; foreign keys become keyrefs between the corresponding
attributes.  Rows of data convert the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..errors import SchemaError
from ..xml.model import AtomicValue, XmlElement
from .constraints import KeyRef
from .schema import MANY, AttributeDecl, Cardinality, ElementDecl, Schema, ValueNode
from .types import AtomicType


@dataclass(frozen=True)
class Column:
    """A relational column with its atomic type."""

    name: str
    type: AtomicType
    nullable: bool = False


@dataclass(frozen=True)
class ForeignKey:
    """``table.column`` references ``referred_table.referred_column``."""

    column: str
    referred_table: str
    referred_column: str


@dataclass(frozen=True)
class Table:
    """A relational table: name, columns, primary key, foreign keys."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKey, ...] = ()

    def column(self, name: str) -> Column:
        for candidate in self.columns:
            if candidate.name == name:
                return candidate
        raise SchemaError(f"table {self.name!r} has no column {name!r}")


@dataclass(frozen=True)
class RelationalSchema:
    """A set of tables under one database name."""

    name: str
    tables: tuple[Table, ...] = field(default_factory=tuple)

    def table(self, name: str) -> Table:
        for candidate in self.tables:
            if candidate.name == name:
                return candidate
        raise SchemaError(f"schema {self.name!r} has no table {name!r}")


def to_xml_schema(relational: RelationalSchema) -> Schema:
    """Canonically encode a relational schema as an XML Schema."""
    table_elements = []
    for table in relational.tables:
        attributes = [
            AttributeDecl(col.name, col.type, required=not col.nullable)
            for col in table.columns
        ]
        table_elements.append(
            ElementDecl(table.name, cardinality=MANY, attributes=attributes)
        )
    root = ElementDecl(relational.name, cardinality=Cardinality(1, 1), children=table_elements)
    converted = Schema(root)
    constraints: list[KeyRef] = []
    for table in relational.tables:
        holder = root.child(table.name)
        for fk in table.foreign_keys:
            referred_holder = root.child(fk.referred_table)
            if referred_holder is None:
                raise SchemaError(
                    f"foreign key on {table.name!r} references unknown table "
                    f"{fk.referred_table!r}"
                )
            constraints.append(
                KeyRef(
                    ValueNode(holder, fk.column),
                    ValueNode(referred_holder, fk.referred_column),
                )
            )
    converted.constraints = tuple(constraints)
    return converted


Row = Mapping[str, AtomicValue]


def rows_to_instance(
    relational: RelationalSchema,
    data: Mapping[str, Sequence[Row]],
    *,
    validate_columns: bool = True,
) -> XmlElement:
    """Canonically encode relational rows as an XML instance.

    ``data`` maps table name → rows; each row maps column → value.
    Nullable columns may be omitted from a row.
    """
    root = XmlElement(relational.name)
    for table in relational.tables:
        for row in data.get(table.name, ()):
            node = XmlElement(table.name)
            if validate_columns:
                unknown = set(row) - {c.name for c in table.columns}
                if unknown:
                    raise SchemaError(
                        f"row for {table.name!r} has unknown columns {sorted(unknown)}"
                    )
            for column in table.columns:
                if column.name in row:
                    node.set_attribute(column.name, row[column.name])
                elif not column.nullable:
                    raise SchemaError(
                        f"row for {table.name!r} misses non-nullable column "
                        f"{column.name!r}"
                    )
            root.append(node)
    return root
