"""Schema-driven random instance generation.

Given any schema tree, produce random conforming instances — the
workhorse behind property-based tests on arbitrary schemas and a handy
way to stress a mapping before real data exists.  Generation is
deterministic in the seed and bounded by explicit fan-out limits.

Referential constraints are repaired post hoc: after generation, every
referring value is rewritten to a randomly chosen referred value (when
any exists), so keyrefs hold by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..xml import paths as _paths
from ..xml.model import AtomicValue, XmlElement
from .constraints import KeyRef
from .schema import ElementDecl, Schema
from .types import AtomicType

_WORDS = [
    "alpha", "bravo", "carbon", "delta", "ember", "falcon", "garnet",
    "harbor", "indigo", "juniper", "krypton", "lumen", "meadow", "nylon",
]


@dataclass(frozen=True)
class GeneratorSpec:
    """Bounds for random generation."""

    seed: int = 0
    #: Maximum occurrences generated for an unbounded element.
    max_repeat: int = 4
    #: Probability that an optional node is present.
    optional_probability: float = 0.7
    int_range: tuple[int, int] = (0, 100)


def random_instance(schema: Schema, spec: GeneratorSpec = GeneratorSpec()) -> XmlElement:
    """Generate a random instance conforming to ``schema``."""
    rng = random.Random(spec.seed)
    root = _generate_element(schema.root, rng, spec)
    for constraint in schema.constraints:
        if isinstance(constraint, KeyRef):
            _repair_keyref(root, schema, constraint, rng)
    return root


def _random_value(type_: AtomicType, rng: random.Random, spec: GeneratorSpec) -> AtomicValue:
    name = type_.name.lower()
    if name == "int":
        return rng.randint(*spec.int_range)
    if name == "float":
        return round(rng.uniform(*spec.int_range), 2)
    if name == "boolean":
        return rng.random() < 0.5
    return f"{rng.choice(_WORDS)}-{rng.randint(0, 999)}"


def _occurrences(decl: ElementDecl, rng: random.Random, spec: GeneratorSpec) -> int:
    minimum = decl.cardinality.min
    maximum = decl.cardinality.max
    if maximum is None:
        maximum = max(minimum, spec.max_repeat)
    if maximum == minimum:
        return minimum
    if minimum == 0 and rng.random() > spec.optional_probability:
        return 0
    return rng.randint(max(minimum, 1), maximum)


def _generate_element(decl: ElementDecl, rng: random.Random, spec: GeneratorSpec) -> XmlElement:
    node = XmlElement(decl.name)
    for attribute in decl.attributes:
        if attribute.required or rng.random() < spec.optional_probability:
            node.set_attribute(attribute.name, _random_value(attribute.type, rng, spec))
    if decl.text_type is not None:
        node.set_text(_random_value(decl.text_type, rng, spec))
    for child in decl.children:
        for _ in range(_occurrences(child, rng, spec)):
            node.append(_generate_element(child, rng, spec))
    return node


def _instance_path(schema: Schema, value_node) -> _paths.Path:
    segments = value_node.element.path_string().split("/")[1:]
    steps: list[_paths.Step] = [_paths.ChildStep(s) for s in segments]
    if value_node.attribute is not None:
        steps.append(_paths.AttributeStep(value_node.attribute))
    else:
        steps.append(_paths.TextStep())
    return _paths.Path(tuple(steps))


def _holders(root: XmlElement, schema: Schema, value_node) -> list[XmlElement]:
    segments = value_node.element.path_string().split("/")[1:]
    path = _paths.Path(tuple(_paths.ChildStep(s) for s in segments))
    return [n for n in _paths.evaluate(path, root) if isinstance(n, XmlElement)]


def _repair_keyref(
    root: XmlElement, schema: Schema, constraint: KeyRef, rng: random.Random
) -> None:
    referred_values = _paths.evaluate(_instance_path(schema, constraint.referred), root)
    referring_holders = _holders(root, schema, constraint.referring)
    for holder in referring_holders:
        if not referred_values:
            # Nothing to refer to: remove the dangling referring element
            # (always possible in practice — a referring element is a
            # repeating "row" whose minimum occurrence is 0).
            if holder.parent is not None:
                holder.parent.remove(holder)
            continue
        value = rng.choice(referred_values)
        if constraint.referring.attribute is not None:
            holder.set_attribute(constraint.referring.attribute, value)
        else:
            holder._text = value  # noqa: SLF001 — controlled repair
