"""XML Schema substrate: schema trees, DSL, XSD parsing, validation."""

from .constraints import KeyRef, suggest_join
from .dsl import attr, elem, keyref, schema
from .parser import parse_xsd, to_xsd
from .relational import (
    Column,
    ForeignKey,
    RelationalSchema,
    Table,
    rows_to_instance,
    to_xml_schema,
)
from .render import render_schema
from .schema import (
    MANY,
    ONE,
    ONE_OR_MORE,
    OPTIONAL,
    UNBOUNDED,
    AttributeDecl,
    Cardinality,
    ElementDecl,
    Schema,
    SchemaNode,
    ValueNode,
    parse_cardinality,
)
from .types import BOOLEAN, FLOAT, INT, STRING, AtomicType, type_by_name
from .validate import Violation, is_valid, validate

__all__ = [
    "KeyRef",
    "suggest_join",
    "attr",
    "elem",
    "keyref",
    "schema",
    "parse_xsd",
    "to_xsd",
    "Column",
    "ForeignKey",
    "Table",
    "RelationalSchema",
    "to_xml_schema",
    "rows_to_instance",
    "render_schema",
    "Cardinality",
    "parse_cardinality",
    "ONE",
    "OPTIONAL",
    "MANY",
    "ONE_OR_MORE",
    "UNBOUNDED",
    "AttributeDecl",
    "ElementDecl",
    "ValueNode",
    "SchemaNode",
    "Schema",
    "AtomicType",
    "type_by_name",
    "STRING",
    "INT",
    "FLOAT",
    "BOOLEAN",
    "Violation",
    "validate",
    "is_valid",
]
