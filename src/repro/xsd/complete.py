"""Minimum-cardinality instance construction and completion.

"When no builders are given, Clip generates the minimum number of
elements necessary for the result to comply with the target schema"
(Section II-A).  This module provides the two schema-level operations
behind that sentence:

* :func:`minimal_instance` — the smallest instance a schema admits:
  required children at their minimum occurrence, required attributes and
  text at type-default values;
* :func:`complete` — extend an existing (possibly partial) instance
  with whatever mandatory content it misses, leaving present content
  untouched.  Transformation results that could not populate mandatory
  target fields (no source data) can be post-processed into
  schema-valid instances this way.

Type defaults: ``""`` for strings, ``0`` for integers, ``0.0`` for
decimals, ``false`` for booleans.
"""

from __future__ import annotations

from typing import Optional

from ..xml.model import AtomicValue, XmlElement
from .schema import ElementDecl, Schema
from .types import AtomicType


def type_default(type_: AtomicType) -> AtomicValue:
    """The default value used to satisfy a mandatory typed node."""
    if type_.python_type is bool:
        return False
    if type_.python_type is int:
        return 0
    if type_.python_type is float:
        return 0.0
    return ""


def minimal_instance(schema: Schema) -> XmlElement:
    """The smallest instance that conforms to the schema."""
    return _minimal_element(schema.root)


def _minimal_element(decl: ElementDecl) -> XmlElement:
    node = XmlElement(decl.name)
    for attribute in decl.attributes:
        if attribute.required:
            node.set_attribute(attribute.name, type_default(attribute.type))
    if decl.text_type is not None:
        node.set_text(type_default(decl.text_type))
    for child in decl.children:
        for _ in range(child.cardinality.min):
            node.append(_minimal_element(child))
    return node


def complete(instance: XmlElement, schema: Schema) -> XmlElement:
    """A copy of ``instance`` extended with the mandatory content it
    misses (attributes, text, minimum child occurrences).

    Present values are never modified; undeclared content is preserved
    verbatim (the validator will still flag it).
    """
    return _complete_element(instance, schema.root)


def _complete_element(node: XmlElement, decl: Optional[ElementDecl]) -> XmlElement:
    out = XmlElement(node.tag, attributes=node.attributes)
    if decl is not None:
        for attribute in decl.attributes:
            if attribute.required and not out.has_attribute(attribute.name):
                out.set_attribute(attribute.name, type_default(attribute.type))
    counts: dict[str, int] = {}
    for child in node.children:
        child_decl = decl.child(child.tag) if decl is not None else None
        counts[child.tag] = counts.get(child.tag, 0) + 1
        out.append(_complete_element(child, child_decl))
    if decl is not None:
        if decl.text_type is not None and node.text is None and not node.children:
            out.set_text(type_default(decl.text_type))
        elif node.text is not None:
            out.set_text(node.text)
        for child_decl in decl.children:
            missing = child_decl.cardinality.min - counts.get(child_decl.name, 0)
            for _ in range(max(0, missing)):
                out.append(_minimal_element(child_decl))
    elif node.text is not None:
        out.set_text(node.text)
    return out
