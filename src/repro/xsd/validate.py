"""Validation of XML instances against schema trees.

Used throughout the reproduction to check that (a) the paper's source
instance conforms to the source schema and (b) every transformation
result — whether produced by the direct tgd executor or by the XQuery
interpreter — conforms to the target schema.  This is how we test the
paper's definition of a *valid mapping*: "given any instance of the
source schema, the mapping produces a valid instance of the target
schema" (Section III).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError
from ..xml.model import XmlElement
from .constraints import KeyRef
from .schema import ElementDecl, Schema
from ..xml import paths as _paths


@dataclass(frozen=True)
class Violation:
    """One schema violation, located by the instance path where it occurred."""

    location: str
    message: str

    def __str__(self) -> str:
        return f"{self.location}: {self.message}"


def validate(
    instance: XmlElement,
    schema: Schema,
    *,
    check_constraints: bool = True,
    raise_on_error: bool = False,
) -> list[Violation]:
    """Validate an instance tree against a schema.

    Returns the list of violations (empty when valid).  With
    ``raise_on_error=True``, raises :class:`ValidationError` instead of
    returning a non-empty list.
    """
    violations: list[Violation] = []
    if instance.tag != schema.root.name:
        violations.append(
            Violation(
                f"/{instance.tag}",
                f"root element is <{instance.tag}>, schema expects <{schema.root.name}>",
            )
        )
    else:
        _validate_element(instance, schema.root, f"/{instance.tag}", violations)
        if check_constraints:
            for constraint in schema.constraints:
                if isinstance(constraint, KeyRef):
                    _validate_keyref(instance, schema, constraint, violations)
    if violations and raise_on_error:
        raise ValidationError(violations)
    return violations


def _validate_element(
    node: XmlElement, decl: ElementDecl, location: str, violations: list[Violation]
) -> None:
    # Attributes -------------------------------------------------------
    declared = {a.name: a for a in decl.attributes}
    for name, value in node.attributes.items():
        attr_decl = declared.get(name)
        if attr_decl is None:
            violations.append(Violation(location, f"undeclared attribute @{name}"))
        elif not attr_decl.type.validates(value):
            violations.append(
                Violation(
                    location,
                    f"attribute @{name} has value {value!r}, expected {attr_decl.type}",
                )
            )
    for name, attr_decl in declared.items():
        if attr_decl.required and not node.has_attribute(name):
            violations.append(Violation(location, f"missing required attribute @{name}"))

    # Text value ---------------------------------------------------------
    if decl.text_type is not None:
        if node.text is None:
            violations.append(Violation(location, "missing text value"))
        elif not decl.text_type.validates(node.text):
            violations.append(
                Violation(
                    location,
                    f"text value {node.text!r} does not match type {decl.text_type}",
                )
            )
    elif node.text is not None:
        violations.append(
            Violation(location, f"unexpected text value {node.text!r} (element-only content)")
        )

    # Children: declared, typed, within cardinality ------------------------
    declared_children = {c.name: c for c in decl.children}
    counts = {name: 0 for name in declared_children}
    for child in node.children:
        child_decl = declared_children.get(child.tag)
        if child_decl is None:
            violations.append(Violation(location, f"undeclared child element <{child.tag}>"))
            continue
        counts[child.tag] += 1
        index = counts[child.tag]
        _validate_element(child, child_decl, f"{location}/{child.tag}[{index}]", violations)
    for name, child_decl in declared_children.items():
        if not child_decl.cardinality.admits(counts[name]):
            violations.append(
                Violation(
                    location,
                    f"child <{name}> occurs {counts[name]} times, "
                    f"allowed {child_decl.cardinality}",
                )
            )


def _instance_path(schema: Schema, value_node) -> _paths.Path:
    """Translate a schema value node into an instance path from the root."""
    segments = value_node.element.path_string().split("/")[1:]  # drop the root tag
    steps: list[_paths.Step] = [_paths.ChildStep(s) for s in segments]
    if value_node.attribute is not None:
        steps.append(_paths.AttributeStep(value_node.attribute))
    else:
        steps.append(_paths.TextStep())
    return _paths.Path(tuple(steps))


def _validate_keyref(
    instance: XmlElement, schema: Schema, constraint: KeyRef, violations: list[Violation]
) -> None:
    referred = set(_paths.evaluate(_instance_path(schema, constraint.referred), instance))
    referring = _paths.evaluate(_instance_path(schema, constraint.referring), instance)
    for value in referring:
        if value not in referred:
            violations.append(
                Violation(
                    f"/{instance.tag}",
                    f"keyref {constraint} violated: value {value!r} has no referent",
                )
            )


def is_valid(instance: XmlElement, schema: Schema) -> bool:
    """Convenience predicate over :func:`validate`."""
    return not validate(instance, schema)
