"""Atomic types for schema value nodes.

The paper annotates value nodes with types such as ``@pid: int`` and
``value: String``.  This module provides those atomic types with
parsing (text → Python value), validation (is this Python value an
instance of the type?) and XSD-name mapping (``xs:string`` etc.) used by
the XSD parser/serializer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import SchemaError
from ..xml.model import AtomicValue


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("true", "1"):
        return True
    if lowered in ("false", "0"):
        return False
    raise ValueError(f"not a boolean literal: {text!r}")


@dataclass(frozen=True)
class AtomicType:
    """An atomic value type carried by an attribute or text node."""

    name: str
    xsd_name: str
    python_type: type
    _parser: Callable[[str], AtomicValue]

    def parse(self, text: str) -> AtomicValue:
        """Parse a lexical representation into a typed Python value."""
        try:
            return self._parser(text)
        except (ValueError, TypeError) as exc:
            raise SchemaError(f"cannot parse {text!r} as {self.name}: {exc}") from exc

    def validates(self, value: AtomicValue) -> bool:
        """Check that a Python value is an instance of this type.

        ``int`` values are accepted where a ``float`` is declared (XML
        Schema decimal promotion); ``bool`` is *not* accepted as an
        ``int`` despite Python's subclassing.
        """
        if self.python_type is float:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self.python_type is int:
            return isinstance(value, int) and not isinstance(value, bool)
        return isinstance(value, self.python_type)

    def __str__(self) -> str:
        return self.name


STRING = AtomicType("String", "xs:string", str, str)
INT = AtomicType("int", "xs:integer", int, lambda t: int(t.strip()))
FLOAT = AtomicType("float", "xs:decimal", float, lambda t: float(t.strip()))
BOOLEAN = AtomicType("boolean", "xs:boolean", bool, _parse_bool)

#: All built-in atomic types, by their display name.
BY_NAME: dict[str, AtomicType] = {
    t.name.lower(): t for t in (STRING, INT, FLOAT, BOOLEAN)
}

#: Lookup by XSD type name (with or without the ``xs:`` prefix), covering
#: the common aliases that appear in real-world schemas.
BY_XSD_NAME: dict[str, AtomicType] = {
    "string": STRING,
    "integer": INT,
    "int": INT,
    "long": INT,
    "short": INT,
    "decimal": FLOAT,
    "float": FLOAT,
    "double": FLOAT,
    "boolean": BOOLEAN,
    "date": STRING,
    "dateTime": STRING,
    "anyURI": STRING,
    "token": STRING,
    "NMTOKEN": STRING,
    "ID": STRING,
    "IDREF": STRING,
}


def type_by_name(name: str) -> AtomicType:
    """Resolve a display name (``int``, ``String`` …) to an atomic type."""
    try:
        return BY_NAME[name.lower()]
    except KeyError:
        raise SchemaError(f"unknown atomic type {name!r}") from None


def type_by_xsd_name(name: str) -> AtomicType:
    """Resolve an XSD type name (``xs:integer``, ``string`` …)."""
    local = name.split(":")[-1]
    try:
        return BY_XSD_NAME[local]
    except KeyError:
        raise SchemaError(f"unsupported XSD type {name!r}") from None
