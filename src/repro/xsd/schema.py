"""XML Schema trees, as drawn in the paper's figures.

A schema is a tree of :class:`ElementDecl` nodes.  Each element carries a
:class:`Cardinality` (``[1..*]``, ``[0..1]`` …), a list of
:class:`AttributeDecl` (the black circles), an optional text type (the
white ``value`` circles), and child elements.  The Clip constructs refer
to schema nodes through :class:`SchemaNode` references — either an
element itself or one of its value nodes — addressed with slash paths
like ``dept/regEmp/sal/text()`` or ``dept/Proj/@pid``.

The structural notions the paper's validity rules build on live here:

* :meth:`ElementDecl.path` — the unique chain of schema nodes from the
  root down to an element (the paper's ``path(e)``);
* :meth:`ElementDecl.is_repeating` — maximum cardinality above one, the
  shadowed icons with a ``*``;
* :meth:`Schema.repeating_path` — the repeating elements on a node's
  root path, which drive tableau computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from ..errors import SchemaError
from .types import AtomicType

#: Maximum-cardinality value standing for ``unbounded`` (the XSD ``*``).
UNBOUNDED: Optional[int] = None


@dataclass(frozen=True)
class Cardinality:
    """An occurrence range ``[min..max]``; ``max=None`` means unbounded."""

    min: int
    max: Optional[int]

    def __post_init__(self):
        if self.min < 0:
            raise SchemaError(f"negative minimum cardinality {self.min}")
        if self.max is not None and self.max < self.min:
            raise SchemaError(f"cardinality [{self.min}..{self.max}] has max < min")

    @property
    def is_optional(self) -> bool:
        """True when zero occurrences are allowed (the ``?`` icon)."""
        return self.min == 0

    @property
    def is_repeating(self) -> bool:
        """True when more than one occurrence is allowed (the ``*`` icon)."""
        return self.max is None or self.max > 1

    def admits(self, count: int) -> bool:
        if count < self.min:
            return False
        return self.max is None or count <= self.max

    def __str__(self) -> str:
        upper = "*" if self.max is None else str(self.max)
        return f"[{self.min}..{upper}]"


ONE = Cardinality(1, 1)
OPTIONAL = Cardinality(0, 1)
MANY = Cardinality(0, UNBOUNDED)
ONE_OR_MORE = Cardinality(1, UNBOUNDED)


def parse_cardinality(label: str) -> Cardinality:
    """Parse ``"[0..*]"``/``"1..1"`` style labels."""
    text = label.strip().strip("[]")
    try:
        low, high = text.split("..")
        maximum = UNBOUNDED if high.strip() == "*" else int(high)
        minimum = int(low)
    except ValueError:
        raise SchemaError(f"malformed cardinality label {label!r}") from None
    return Cardinality(minimum, maximum)


@dataclass(frozen=True)
class AttributeDecl:
    """An attribute value node (black circle): ``@name: type``."""

    name: str
    type: AtomicType
    required: bool = True

    def __str__(self) -> str:
        suffix = "" if self.required else "?"
        return f"@{self.name}{suffix}: {self.type}"


class ElementDecl:
    """A schema element (square icon) with its content model."""

    def __init__(
        self,
        name: str,
        cardinality: Cardinality = ONE,
        attributes: Iterable[AttributeDecl] = (),
        children: Iterable["ElementDecl"] = (),
        text_type: Optional[AtomicType] = None,
    ):
        if not name:
            raise SchemaError("element name must be non-empty")
        self.name = name
        self.cardinality = cardinality
        self.attributes: tuple[AttributeDecl, ...] = tuple(attributes)
        self.text_type = text_type
        self.parent: Optional[ElementDecl] = None
        self._children: list[ElementDecl] = []
        seen = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(f"duplicate attribute @{attr.name} on <{name}>")
            seen.add(attr.name)
        for child in children:
            self._attach(child)
        if text_type is not None and self._children:
            raise SchemaError(
                f"element <{name}> declares both a text type and child elements"
            )

    def _attach(self, child: "ElementDecl") -> None:
        if child.parent is not None:
            raise SchemaError(
                f"element <{child.name}> is already attached under <{child.parent.name}>"
            )
        if self.child(child.name) is not None:
            raise SchemaError(f"duplicate child element <{child.name}> under <{self.name}>")
        child.parent = self
        self._children.append(child)

    # -- structure -----------------------------------------------------

    @property
    def children(self) -> tuple["ElementDecl", ...]:
        return tuple(self._children)

    def child(self, name: str) -> Optional["ElementDecl"]:
        for candidate in self._children:
            if candidate.name == name:
                return candidate
        return None

    def attribute(self, name: str) -> Optional[AttributeDecl]:
        stripped = name.lstrip("@")
        for candidate in self.attributes:
            if candidate.name == stripped:
                return candidate
        return None

    @property
    def is_repeating(self) -> bool:
        return self.cardinality.is_repeating

    @property
    def is_optional(self) -> bool:
        return self.cardinality.is_optional

    def iter(self) -> Iterator["ElementDecl"]:
        """Pre-order traversal of this element and its descendants."""
        yield self
        for child in self._children:
            yield from child.iter()

    def path(self) -> tuple["ElementDecl", ...]:
        """The paper's ``path(e)``: schema nodes from the root down to
        (and including) this element."""
        chain: list[ElementDecl] = []
        node: Optional[ElementDecl] = self
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        return tuple(chain)

    def path_string(self) -> str:
        return "/".join(node.name for node in self.path())

    def depth(self) -> int:
        return len(self.path()) - 1

    def is_ancestor_of(self, other: "ElementDecl") -> bool:
        """True when ``self`` lies strictly above ``other``."""
        return self is not other and self in other.path()

    def __repr__(self) -> str:
        return f"ElementDecl({self.path_string()} {self.cardinality})"


@dataclass(frozen=True)
class ValueNode:
    """A reference to a value node: an attribute of, or the text of, an element."""

    element: ElementDecl
    attribute: Optional[str] = None  # None means the text node

    def __post_init__(self):
        if self.attribute is not None:
            if self.element.attribute(self.attribute) is None:
                raise SchemaError(
                    f"element <{self.element.name}> has no attribute @{self.attribute}"
                )
        elif self.element.text_type is None:
            raise SchemaError(f"element <{self.element.name}> has no text value node")

    @property
    def type(self) -> AtomicType:
        if self.attribute is not None:
            return self.element.attribute(self.attribute).type
        return self.element.text_type

    @property
    def is_text(self) -> bool:
        return self.attribute is None

    def path_string(self) -> str:
        leaf = "text()" if self.attribute is None else f"@{self.attribute}"
        return f"{self.element.path_string()}/{leaf}"

    def __str__(self) -> str:
        return self.path_string()


SchemaNode = Union[ElementDecl, ValueNode]


class Schema:
    """A complete schema: one root element plus referential constraints."""

    def __init__(self, root: ElementDecl, constraints: Iterable[object] = ()):
        if root.parent is not None:
            raise SchemaError("schema root must not have a parent")
        self.root = root
        self.constraints: tuple[object, ...] = tuple(constraints)

    # -- lookup ----------------------------------------------------------

    def element(self, path: str) -> ElementDecl:
        """Resolve a slash path (``dept/Proj``) to an element declaration.

        The leading root segment may be included or omitted.
        """
        segments = [s for s in path.strip("/").split("/") if s]
        if not segments:
            raise SchemaError("empty element path")
        if segments[0] == self.root.name:
            segments = segments[1:]
        node = self.root
        for segment in segments:
            nxt = node.child(segment)
            if nxt is None:
                raise SchemaError(
                    f"schema {self.root.name!r} has no element at "
                    f"{node.path_string()}/{segment}"
                )
            node = nxt
        return node

    def value(self, path: str) -> ValueNode:
        """Resolve a slash path ending in ``@attr`` or ``text()``/``value``
        to a value node."""
        segments = [s for s in path.strip("/").split("/") if s]
        if not segments:
            raise SchemaError("empty value path")
        leaf = segments[-1]
        holder = self.element("/".join(segments[:-1])) if len(segments) > 1 else self.root
        if leaf.startswith("@"):
            return ValueNode(holder, leaf[1:])
        if leaf in ("text()", "value"):
            return ValueNode(holder, None)
        # A bare trailing element name denotes that element's text node.
        target = holder.child(leaf)
        if target is None and holder is self.root and len(segments) == 1:
            target = self.root if leaf == self.root.name else None
        if target is None:
            raise SchemaError(f"no value node at path {path!r}")
        return ValueNode(target, None)

    def node(self, path: str) -> SchemaNode:
        """Resolve a path to either an element or a value node."""
        leaf = path.strip("/").split("/")[-1]
        if leaf.startswith("@") or leaf in ("text()", "value"):
            return self.value(path)
        return self.element(path)

    def elements(self) -> Iterator[ElementDecl]:
        return self.root.iter()

    def repeating_elements(self) -> list[ElementDecl]:
        """All repeating elements, in pre-order (these anchor tableaux)."""
        return [e for e in self.elements() if e.is_repeating]

    def repeating_path(self, node: SchemaNode) -> tuple[ElementDecl, ...]:
        """The repeating elements on the root path of ``node`` (the
        primary path of the tableau that covers it)."""
        holder = node.element if isinstance(node, ValueNode) else node
        return tuple(e for e in holder.path() if e.is_repeating)

    def owns(self, node: SchemaNode) -> bool:
        """True when the given node belongs to this schema tree."""
        holder = node.element if isinstance(node, ValueNode) else node
        return holder.path()[0] is self.root

    def __repr__(self) -> str:
        return f"Schema(root={self.root.name!r}, elements={sum(1 for _ in self.elements())})"
