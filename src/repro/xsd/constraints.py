"""Intra-schema referential constraints.

The paper draws referential integrity as a dashed line between value
nodes (``@pid`` of ``regEmp`` refers to ``@pid`` of ``Proj``).  These
constraints feed two mechanisms:

* tableau computation *chases* over them, producing the joined tableau
  ``{dept-Proj-regEmp, @pid=@pid}`` of Section V-A;
* the GUI-level join suggestion of Figure 6 ("this join condition … can
  be automatically suggested using the existing referential integrity
  constraint") — surfaced here as :func:`suggest_join`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .schema import ElementDecl, Schema, ValueNode


@dataclass(frozen=True)
class KeyRef:
    """Referential integrity: every ``referring`` value appears among the
    ``referred`` values (a foreign key in relational terms)."""

    referring: ValueNode
    referred: ValueNode

    def __str__(self) -> str:
        return f"{self.referring.path_string()} -> {self.referred.path_string()}"

    @property
    def referring_element(self) -> ElementDecl:
        return self.referring.element

    @property
    def referred_element(self) -> ElementDecl:
        return self.referred.element


def suggest_join(
    schema: Schema, left: ElementDecl, right: ElementDecl
) -> Optional[tuple[ValueNode, ValueNode]]:
    """Suggest a join condition between two elements from a keyref.

    Returns the pair of value nodes to equate (left-side first), or
    ``None`` when no referential constraint links the two elements.
    This reproduces Figure 6's automatic suggestion of
    ``$p.@pid = $r.@pid``.
    """
    def covers(anchor: ElementDecl, holder: ElementDecl) -> bool:
        return anchor is holder or anchor.is_ancestor_of(holder)

    for constraint in schema.constraints:
        if not isinstance(constraint, KeyRef):
            continue
        referring = constraint.referring_element
        referred = constraint.referred_element
        if covers(left, referring) and covers(right, referred):
            return (constraint.referring, constraint.referred)
        if covers(right, referring) and covers(left, referred):
            return (constraint.referred, constraint.referring)
    return None
