"""ASCII rendering of schema trees in the paper's visual notation.

Elements print as ``name [min..max]`` (with a leading ``?`` for optional
ones, matching the question-mark icon), attributes as ``@name: type``
(black circles) and text nodes as ``value: type`` (white circles)::

    source
      dept [1..*]
        dname
          value: String
        Proj [0..*]
          @pid: int
          pname
            value: String
"""

from __future__ import annotations

from .schema import ElementDecl, Schema


def render_element(decl: ElementDecl, *, indent: int = 0) -> list[str]:
    pad = "  " * indent
    prefix = "? " if decl.is_optional else ""
    label = decl.name
    if decl.cardinality.min != 1 or decl.cardinality.max != 1:
        label = f"{label} {decl.cardinality}"
    lines = [f"{pad}{prefix}{label}"]
    child_pad = "  " * (indent + 1)
    for attribute in decl.attributes:
        lines.append(f"{child_pad}{attribute}")
    if decl.text_type is not None:
        lines.append(f"{child_pad}value: {decl.text_type}")
    for child in decl.children:
        lines.extend(render_element(child, indent=indent + 1))
    return lines


def render_schema(target: Schema) -> str:
    """Render a full schema, appending its referential constraints."""
    lines = render_element(target.root)
    for constraint in target.constraints:
        lines.append(f"  -- keyref: {constraint}")
    return "\n".join(lines)
