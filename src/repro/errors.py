"""Exception hierarchy for the Clip reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the subsystems:
instances (:class:`XmlError`), schemas (:class:`SchemaError`), the Clip
language (:class:`MappingError`), mapping generation
(:class:`GenerationError`) and query translation/evaluation
(:class:`XQueryError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class XmlError(ReproError):
    """Malformed XML instance data or an illegal instance operation."""


class XmlParseError(XmlError):
    """The XML text could not be parsed into an instance tree."""


class PathError(XmlError):
    """A path expression is malformed or cannot be evaluated."""


class SchemaError(ReproError):
    """An XML Schema is malformed or an illegal schema operation occurred."""


class SchemaParseError(SchemaError):
    """The XSD text could not be parsed into a schema tree."""


class ValidationError(SchemaError):
    """An instance does not conform to its schema.

    The validator normally returns a report of violations; this exception
    is raised by ``validate(..., raise_on_error=True)`` convenience calls.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        lines = "; ".join(str(v) for v in self.violations) or "invalid instance"
        super().__init__(lines)


class MappingError(ReproError):
    """A Clip mapping is structurally malformed (not merely *invalid*).

    Invalid-but-expressible mappings (Section III of the paper) are
    reported through :class:`repro.core.validity.ValidityReport`; this
    exception is reserved for constructions the object model cannot
    represent at all (e.g. a build node with two outgoing builders).
    """


class InvalidMappingError(MappingError):
    """Raised when a compile/execute step requires a valid mapping.

    Carries the validity report so callers can inspect the offending
    rules.
    """

    def __init__(self, report):
        self.report = report
        super().__init__(str(report))


class CompileError(MappingError):
    """The Clip-to-tgd compiler could not translate a mapping."""


class ExecutionError(ReproError):
    """The tgd executor failed to evaluate a mapping over an instance."""


class ExecModeError(ExecutionError, ValueError):
    """An unrecognized execution mode (``exec_mode=`` / ``--exec-mode`` /
    ``CLIP_EXEC_MODE``); also a ``ValueError`` for bad-argument callers."""


class TransientError(ReproError):
    """An error expected to succeed on retry (I/O hiccup, resource
    pressure, injected transient fault).

    The batch runtime's retry policy re-attempts documents that fail
    with a transient error; everything else is permanent and goes
    straight to the dead-letter set.  See
    :func:`repro.runtime.retry.is_transient`.
    """


class DocumentTimeout(TransientError):
    """A single document's evaluation exceeded its wall-clock budget.

    Raised by the per-document timeout of the batch runtime
    (``BatchRunner(timeout=…)``); classified transient, so a retry
    policy may re-attempt the document.
    """


class DocumentFailureError(ExecutionError):
    """A document failed under ``error_policy="fail_fast"``.

    Carries the :class:`repro.runtime.faults.DocumentFailure` record as
    ``failure`` so callers see the document index, stage, attempt count
    and truncated traceback even when the original exception object is
    unavailable (worker-process failures cross the pool boundary as
    records, not exceptions).
    """

    def __init__(self, failure):
        self.failure = failure
        super().__init__(str(failure))


class WorkerCrashError(ExecutionError):
    """A pool worker died and the batch could not be completed.

    The runner rebuilds a crashed pool once and replays the in-flight
    documents; a second crash raises this error.
    """


class WorkerSetupError(ReproError):
    """The worker pool cannot be started in this environment.

    Raised eagerly — with the fix in the message — instead of letting
    the pool die with an opaque traceback (e.g. ``spawn`` children that
    cannot import :mod:`repro` because ``PYTHONPATH`` lacks ``src``).
    """


class ServiceError(ReproError):
    """A request to the mapping service could not be served.

    The HTTP layer (:mod:`repro.service`) maps this hierarchy — and the
    rest of :mod:`repro.errors` — onto structured JSON error envelopes
    with appropriate status codes; see ``repro.service.app.error_status``.
    """


class AuthError(ServiceError):
    """A service request failed HMAC authentication (missing or wrong
    ``X-Clip-Signature`` when the shared secret is configured)."""


class UnknownMappingError(ServiceError):
    """A transform request referenced a mapping fingerprint that was
    never registered (``POST /mappings``) with the service."""


class PayloadTooLargeError(ServiceError):
    """A request body exceeded the service's configured size ceiling."""


class OverloadError(TransientError):
    """The service shed a request because too many were in flight.

    Transient by definition — the client should back off and retry —
    so the triage of :func:`repro.runtime.retry.is_transient` applies.
    """


class AlgebraError(ReproError):
    """A mapping-algebra operation could not be carried out.

    The algebra (:mod:`repro.algebra`) works on a *symbolic fragment* of
    the nested-tgd language; operations outside that fragment raise a
    subclass naming the offending construct rather than producing a
    semantically wrong result."""


class ComposeError(AlgebraError):
    """Two mappings could not be composed into a single tgd.

    Composition falls back to sequential execution in this case; the
    ``reason`` attribute carries a stable, machine-readable tag."""

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        message = reason if not detail else f"{reason}: {detail}"
        super().__init__(message)


class InverseError(AlgebraError):
    """A mapping lies outside the invertible (copy-like) fragment."""

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        message = reason if not detail else f"{reason}: {detail}"
        super().__init__(message)


class GenerationError(ReproError):
    """Mapping generation (tableaux/skeletons/nesting) failed."""


class XQueryError(ReproError):
    """XQuery emission, serialization or interpretation failed."""


class XQueryTypeError(XQueryError):
    """An XQuery expression was applied to values of the wrong type."""
