"""Exception hierarchy for the Clip reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the subsystems:
instances (:class:`XmlError`), schemas (:class:`SchemaError`), the Clip
language (:class:`MappingError`), mapping generation
(:class:`GenerationError`) and query translation/evaluation
(:class:`XQueryError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class XmlError(ReproError):
    """Malformed XML instance data or an illegal instance operation."""


class XmlParseError(XmlError):
    """The XML text could not be parsed into an instance tree."""


class PathError(XmlError):
    """A path expression is malformed or cannot be evaluated."""


class SchemaError(ReproError):
    """An XML Schema is malformed or an illegal schema operation occurred."""


class SchemaParseError(SchemaError):
    """The XSD text could not be parsed into a schema tree."""


class ValidationError(SchemaError):
    """An instance does not conform to its schema.

    The validator normally returns a report of violations; this exception
    is raised by ``validate(..., raise_on_error=True)`` convenience calls.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        lines = "; ".join(str(v) for v in self.violations) or "invalid instance"
        super().__init__(lines)


class MappingError(ReproError):
    """A Clip mapping is structurally malformed (not merely *invalid*).

    Invalid-but-expressible mappings (Section III of the paper) are
    reported through :class:`repro.core.validity.ValidityReport`; this
    exception is reserved for constructions the object model cannot
    represent at all (e.g. a build node with two outgoing builders).
    """


class InvalidMappingError(MappingError):
    """Raised when a compile/execute step requires a valid mapping.

    Carries the validity report so callers can inspect the offending
    rules.
    """

    def __init__(self, report):
        self.report = report
        super().__init__(str(report))


class CompileError(MappingError):
    """The Clip-to-tgd compiler could not translate a mapping."""


class ExecutionError(ReproError):
    """The tgd executor failed to evaluate a mapping over an instance."""


class GenerationError(ReproError):
    """Mapping generation (tableaux/skeletons/nesting) failed."""


class XQueryError(ReproError):
    """XQuery emission, serialization or interpretation failed."""


class XQueryTypeError(XQueryError):
    """An XQuery expression was applied to values of the wrong type."""
