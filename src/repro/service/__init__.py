"""Mapping-as-a-service: a long-lived HTTP server over the runtime.

The paper's workflow ends where production begins: a mapping, once
designed, is applied to documents forever after.  This package is that
serving layer — compile once at registration into the shared
:class:`~repro.runtime.cache.PlanCache`, then transform over HTTP with
warm plans, per-request deadlines, overload shedding, dead-letter
capture and Prometheus metrics.  Stdlib only (``http.server``), like
everything else in the repro.

Layering:

* :mod:`repro.service.config` — :class:`ServiceConfig` and the generic
  flag > environment > default :func:`resolve_setting` rule
  (``CLIP_SERVICE_*`` variables);
* :mod:`repro.service.app` — :class:`ClipService`, the transport-
  independent request handling (every endpoint, every error envelope);
* :mod:`repro.service.server` — the ``ThreadingHTTPServer`` shim and
  :func:`make_server`;
* :mod:`repro.service.auth` — optional HMAC-SHA256 request signing
  (:func:`sign_body`, the ``X-Clip-Signature`` header);
* :mod:`repro.service.metrics` — :class:`ServiceMetrics` and its
  Prometheus text rendering.

Run it with ``python -m repro serve`` (see the CLI), or embed it::

    from repro.service import ClipService, ServiceConfig, make_server

    service = ClipService(ServiceConfig.resolve(port=0))
    server = make_server(service)
    print(server.server_address[1])   # the bound port
    server.serve_forever()
"""

from __future__ import annotations

from .app import (
    BATCH_FORMAT,
    ERROR_FORMAT,
    MAPPING_FORMAT,
    ClipService,
    RegisteredMapping,
    ServiceResponse,
    error_status,
    status_for_failure,
)
from .auth import SIGNATURE_HEADER, sign_body, verify_signature
from .config import (
    DEFAULT_DEADLINE,
    DEFAULT_PORT,
    ServiceConfig,
    resolve_setting,
)
from .metrics import ServiceMetrics
from .server import ClipHTTPServer, make_server

__all__ = [
    "BATCH_FORMAT",
    "DEFAULT_DEADLINE",
    "DEFAULT_PORT",
    "ERROR_FORMAT",
    "MAPPING_FORMAT",
    "SIGNATURE_HEADER",
    "ClipHTTPServer",
    "ClipService",
    "RegisteredMapping",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceResponse",
    "error_status",
    "make_server",
    "resolve_setting",
    "sign_body",
    "status_for_failure",
    "verify_signature",
]
