"""Service configuration: one resolution rule for every knob.

Every setting resolves **flag > environment > default** — the same
tri-state rule :func:`repro.executor.codegen.resolve_exec_mode`
established for ``CLIP_EXEC_MODE`` — through one generic helper,
:func:`resolve_setting`, instead of ad-hoc ``os.environ`` reads
scattered across the CLI and the server.  The CLI ``serve`` subcommand
passes its parsed flags straight into :meth:`ServiceConfig.resolve`;
anything the user did not flag falls back to the ``CLIP_SERVICE_*``
environment and then to the documented default.

Environment variables (all optional):

========================== ============================================
``CLIP_SERVICE_HOST``       bind address (default ``127.0.0.1``)
``CLIP_SERVICE_PORT``       TCP port; ``0`` asks the OS for an
                            ephemeral port (default ``8317``)
``CLIP_SERVICE_WORKERS``    default process fan-out for
                            ``POST /transform/batch`` (default ``1``)
``CLIP_SERVICE_DEADLINE``   per-request wall-clock budget in seconds;
                            ``0`` or negative disables the deadline
                            (default ``30``)
``CLIP_SERVICE_SECRET``     shared HMAC secret; set it to require an
                            ``X-Clip-Signature`` header on every
                            request except ``GET /health``
``CLIP_SERVICE_DEAD_LETTER_DIR``
                            root directory for per-request dead-letter
                            capture (default: none — failures are
                            reported but inputs are not persisted)
``CLIP_SERVICE_MAX_INFLIGHT``
                            concurrent-request ceiling before the
                            service sheds with 503 (default ``64``)
``CLIP_SERVICE_MAX_BODY``   request-body byte ceiling (default 8 MiB)
``CLIP_SERVICE_HISTORY``    how many past requests keep their
                            metrics/trace/explain payloads fetchable
                            (default ``256``)
========================== ============================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, TypeVar, Union

T = TypeVar("T")

#: Default TCP port ("clip" on a phone keypad, truncated to a free range).
DEFAULT_PORT = 8317

#: Default per-request deadline, seconds.
DEFAULT_DEADLINE = 30.0

#: Default concurrent-request ceiling before shedding.
DEFAULT_MAX_INFLIGHT = 64

#: Default request-body ceiling, bytes (8 MiB).
DEFAULT_MAX_BODY = 8 * 1024 * 1024

#: Default request-history depth.
DEFAULT_HISTORY = 256


def resolve_setting(
    flag: Optional[T],
    env_var: str,
    default: T,
    *,
    parse: Optional[Callable[[str], T]] = None,
    environ: Optional[Mapping[str, str]] = None,
) -> T:
    """Resolve one configuration value: **flag > env > default**.

    ``flag`` is the explicit caller-supplied value (CLI flag, keyword
    argument); ``None`` means "not given" and falls through to the
    environment variable ``env_var``; an unset or blank variable falls
    through to ``default``.  ``parse`` converts the environment's
    string form (``int``, ``float``, …); a parse failure raises
    ``ValueError`` naming the variable, so a typo'd environment never
    silently becomes a default.
    """
    if flag is not None:
        return flag
    raw = (environ if environ is not None else os.environ).get(env_var, "")
    raw = raw.strip()
    if not raw:
        return default
    if parse is None:
        return raw  # type: ignore[return-value]
    try:
        return parse(raw)
    except ValueError:
        raise ValueError(
            f"{env_var}={raw!r} could not be parsed as "
            f"{getattr(parse, '__name__', 'the expected type')}"
        ) from None


def _parse_deadline(value: Union[str, float, None]) -> Optional[float]:
    """Normalize a deadline: positive seconds, or ``None`` (unbounded)
    for zero/negative — "no deadline" has to be expressible through an
    environment variable, and ``CLIP_SERVICE_DEADLINE=0`` is it."""
    if value is None:
        return None
    seconds = float(value)
    return seconds if seconds > 0 else None


@dataclass(frozen=True)
class ServiceConfig:
    """Resolved configuration for one :class:`repro.service.ClipService`."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    workers: int = 1
    deadline: Optional[float] = DEFAULT_DEADLINE
    secret: Optional[str] = None
    dead_letter_dir: Optional[str] = None
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    max_body: int = DEFAULT_MAX_BODY
    history: int = DEFAULT_HISTORY

    def __post_init__(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise ValueError(f"port must be 0..65535, got {self.port!r}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers!r}")
        if self.max_inflight < 0:
            raise ValueError(
                f"max_inflight must be >= 0, got {self.max_inflight!r}"
            )
        if self.max_body < 1:
            raise ValueError(f"max_body must be >= 1, got {self.max_body!r}")
        if self.history < 1:
            raise ValueError(f"history must be >= 1, got {self.history!r}")

    @classmethod
    def resolve(
        cls,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
        workers: Optional[int] = None,
        deadline: Optional[float] = None,
        secret: Optional[str] = None,
        dead_letter_dir: Optional[str] = None,
        max_inflight: Optional[int] = None,
        max_body: Optional[int] = None,
        history: Optional[int] = None,
        environ: Optional[Mapping[str, str]] = None,
    ) -> "ServiceConfig":
        """Build a config with every field resolved flag > env > default.

        ``None`` arguments mean "not flagged"; ``environ`` substitutes
        an explicit mapping for ``os.environ`` (tests).  The deadline
        accepts ``0``/negative — from flag or environment — to mean
        "no deadline", normalized to ``None``.
        """
        return cls(
            host=resolve_setting(host, "CLIP_SERVICE_HOST", "127.0.0.1",
                                 environ=environ),
            port=resolve_setting(port, "CLIP_SERVICE_PORT", DEFAULT_PORT,
                                 parse=int, environ=environ),
            workers=resolve_setting(workers, "CLIP_SERVICE_WORKERS", 1,
                                    parse=int, environ=environ),
            deadline=_parse_deadline(
                resolve_setting(deadline, "CLIP_SERVICE_DEADLINE",
                                DEFAULT_DEADLINE, parse=float,
                                environ=environ)
            ),
            secret=resolve_setting(secret, "CLIP_SERVICE_SECRET", None,
                                   environ=environ),
            dead_letter_dir=resolve_setting(
                dead_letter_dir, "CLIP_SERVICE_DEAD_LETTER_DIR", None,
                environ=environ,
            ),
            max_inflight=resolve_setting(
                max_inflight, "CLIP_SERVICE_MAX_INFLIGHT",
                DEFAULT_MAX_INFLIGHT, parse=int, environ=environ,
            ),
            max_body=resolve_setting(max_body, "CLIP_SERVICE_MAX_BODY",
                                     DEFAULT_MAX_BODY, parse=int,
                                     environ=environ),
            history=resolve_setting(history, "CLIP_SERVICE_HISTORY",
                                    DEFAULT_HISTORY, parse=int,
                                    environ=environ),
        )
