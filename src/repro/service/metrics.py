"""Service-level counters and their Prometheus text rendering.

The batch runtime already reports per-run :class:`BatchMetrics`; the
service adds the *cross-request* view a scrape wants: request counts
and latencies by endpoint and status, the in-flight gauge, shed and
dead-letter counters, and the shared plan cache's cumulative hit/miss
statistics.  ``GET /metrics`` renders these in the Prometheus text
exposition format (version 0.0.4) — counters suffixed ``_total``,
``HELP``/``TYPE`` comment lines, deterministic (sorted) ordering so
two scrapes of an idle service are byte-identical.

Metric names::

    clip_service_requests_total{endpoint,status}   counter
    clip_service_request_seconds_bucket{endpoint,le}  histogram buckets
    clip_service_request_seconds_sum{endpoint}     counter (seconds)
    clip_service_request_seconds_count{endpoint}   counter
    clip_service_inflight_requests                 gauge
    clip_service_incremental_hits_total            counter
    clip_service_incremental_fallbacks_total       counter
    clip_service_requests_shed_total               counter
    clip_service_auth_failures_total               counter
    clip_service_documents_total                   counter
    clip_service_document_failures_total           counter
    clip_service_dead_letters_total                counter
    clip_service_mappings_registered               gauge
    clip_service_plan_cache_hits_total             counter
    clip_service_plan_cache_misses_total           counter
    clip_service_plan_cache_canonical_hits_total   counter
    clip_service_plan_cache_canonical_misses_total counter
    clip_service_plan_cache_evictions_total        counter
    clip_service_plan_cache_size                   gauge
    clip_service_plan_compile_seconds_total        counter (seconds)
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

from ..runtime.cache import CacheStats

#: Fixed histogram bucket bounds (seconds) for request latency — the
#: Prometheus defaults.  Fixed at import time so the exposition's
#: ``le`` label set is deterministic across processes and scrapes.
LATENCY_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class ServiceMetrics:
    """Thread-safe cumulative counters for one service instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: Dict[Tuple[str, int], int] = {}
        self.latency_sum: Dict[str, float] = {}
        self.latency_count: Dict[str, int] = {}
        #: endpoint → per-bucket observation counts (last slot: +Inf).
        self.latency_buckets: Dict[str, list] = {}
        self.inflight = 0
        self.shed = 0
        self.auth_failures = 0
        self.documents = 0
        self.document_failures = 0
        self.dead_letters = 0
        self.incremental_hits = 0
        self.incremental_fallbacks = 0

    # -- accounting ----------------------------------------------------

    def begin_request(self) -> int:
        """Increment the in-flight gauge; returns the new depth (this
        request included), which the overload check compares against
        the configured ceiling."""
        with self._lock:
            self.inflight += 1
            return self.inflight

    def end_request(self, endpoint: str, status: int, seconds: float) -> None:
        """Settle one request: decrement in-flight, bump the counters."""
        with self._lock:
            self.inflight -= 1
            key = (endpoint, status)
            self.requests[key] = self.requests.get(key, 0) + 1
            self.latency_sum[endpoint] = (
                self.latency_sum.get(endpoint, 0.0) + seconds
            )
            self.latency_count[endpoint] = (
                self.latency_count.get(endpoint, 0) + 1
            )
            buckets = self.latency_buckets.setdefault(
                endpoint, [0] * (len(LATENCY_BUCKETS) + 1)
            )
            for index, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    buckets[index] += 1
                    break
            else:
                buckets[-1] += 1

    def count_incremental(self, *, fallback: bool) -> None:
        """One ``/transform/delta`` execution: scoped/unchanged runs
        count as hits, full recomputes as fallbacks."""
        with self._lock:
            if fallback:
                self.incremental_fallbacks += 1
            else:
                self.incremental_hits += 1

    def count_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def count_auth_failure(self) -> None:
        with self._lock:
            self.auth_failures += 1

    def count_documents(self, succeeded: int, failed: int) -> None:
        with self._lock:
            self.documents += succeeded
            self.document_failures += failed

    def count_dead_letters(self, n: int) -> None:
        with self._lock:
            self.dead_letters += n

    # -- rendering -----------------------------------------------------

    def render_prometheus(
        self,
        cache_stats: CacheStats,
        cache_size: int,
        mappings_registered: int,
    ) -> str:
        """The Prometheus text exposition of every counter.

        ``cache_stats``/``cache_size`` come from the service's shared
        :class:`~repro.runtime.cache.PlanCache` (cumulative over the
        process lifetime — exactly what a scrape wants), and
        ``mappings_registered`` from the registry.
        """
        with self._lock:
            requests = dict(self.requests)
            latency_sum = dict(self.latency_sum)
            latency_count = dict(self.latency_count)
            latency_buckets = {
                endpoint: list(buckets)
                for endpoint, buckets in self.latency_buckets.items()
            }
            inflight = self.inflight
            shed = self.shed
            auth_failures = self.auth_failures
            documents = self.documents
            document_failures = self.document_failures
            dead_letters = self.dead_letters
            incremental_hits = self.incremental_hits
            incremental_fallbacks = self.incremental_fallbacks
        lines = [
            "# HELP clip_service_requests_total HTTP requests served,"
            " by endpoint and status.",
            "# TYPE clip_service_requests_total counter",
        ]
        for (endpoint, status) in sorted(requests):
            lines.append(
                f'clip_service_requests_total{{endpoint="{endpoint}",'
                f'status="{status}"}} {requests[(endpoint, status)]}'
            )
        lines += [
            "# HELP clip_service_request_seconds Request handling"
            " latency, by endpoint.",
            "# TYPE clip_service_request_seconds histogram",
        ]
        for endpoint in sorted(latency_count):
            cumulative = 0
            for bound, observed in zip(
                LATENCY_BUCKETS, latency_buckets[endpoint]
            ):
                cumulative += observed
                lines.append(
                    f'clip_service_request_seconds_bucket{{'
                    f'endpoint="{endpoint}",le="{bound}"}} {cumulative}'
                )
            lines.append(
                f'clip_service_request_seconds_bucket{{'
                f'endpoint="{endpoint}",le="+Inf"}} {latency_count[endpoint]}'
            )
            lines.append(
                f'clip_service_request_seconds_sum{{endpoint="{endpoint}"}}'
                f" {latency_sum[endpoint]:.6f}"
            )
            lines.append(
                f'clip_service_request_seconds_count{{endpoint="{endpoint}"}}'
                f" {latency_count[endpoint]}"
            )
        gauges_and_counters = [
            ("clip_service_inflight_requests", "gauge",
             "Requests currently being handled.", inflight),
            ("clip_service_requests_shed_total", "counter",
             "Requests shed with 503 at the in-flight ceiling.", shed),
            ("clip_service_auth_failures_total", "counter",
             "Requests rejected by HMAC verification.", auth_failures),
            ("clip_service_documents_total", "counter",
             "Documents transformed successfully.", documents),
            ("clip_service_document_failures_total", "counter",
             "Documents that terminally failed.", document_failures),
            ("clip_service_dead_letters_total", "counter",
             "Failed inputs persisted to the dead-letter directory.",
             dead_letters),
            ("clip_service_incremental_hits_total", "counter",
             "Delta transforms served incrementally (scoped or"
             " unchanged).", incremental_hits),
            ("clip_service_incremental_fallbacks_total", "counter",
             "Delta transforms that fell back to full recompute.",
             incremental_fallbacks),
            ("clip_service_mappings_registered", "gauge",
             "Mappings currently registered.", mappings_registered),
            ("clip_service_plan_cache_hits_total", "counter",
             "Plan-cache hits (cumulative).", cache_stats.hits),
            ("clip_service_plan_cache_misses_total", "counter",
             "Plan-cache misses (cumulative).", cache_stats.misses),
            ("clip_service_plan_cache_canonical_hits_total", "counter",
             "Lookups resolved through a canonical cache key"
             " (compiles saved by the mapping algebra).",
             cache_stats.canonical_hits),
            ("clip_service_plan_cache_canonical_misses_total", "counter",
             "Canonical-key lookups that still had to compile.",
             cache_stats.canonical_misses),
            ("clip_service_plan_cache_evictions_total", "counter",
             "Plans evicted from the cache (cumulative).",
             cache_stats.evictions),
            ("clip_service_plan_cache_size", "gauge",
             "Compiled plans currently cached.", cache_size),
            ("clip_service_plan_compile_seconds_total", "counter",
             "Seconds spent compiling plans on cache misses.",
             cache_stats.compile_seconds),
        ]
        for name, kind, help_text, value in gauges_and_counters:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            rendered = f"{value:.6f}" if isinstance(value, float) else str(value)
            lines.append(f"{name} {rendered}")
        return "\n".join(lines) + "\n"
