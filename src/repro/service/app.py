"""The mapping service: HTTP-shaped request handling over the batch runtime.

:class:`ClipService` is transport-independent — :meth:`ClipService.dispatch`
takes ``(method, path, headers, body)`` and returns a
:class:`ServiceResponse`; :mod:`repro.service.server` adapts it onto
``http.server``.  That split keeps the entire request surface testable
without sockets and the HTTP layer a thin shim.

Endpoints
---------

* ``POST /mappings`` — register a ``clip-mapping`` JSON document
  (optionally ``?engine=``/``?optimize=``/``?exec_mode=``); compiles it
  once into the shared :class:`~repro.runtime.cache.PlanCache` and
  returns the fingerprint that transform requests address it by.
  Re-registering is idempotent and a visible plan-cache hit.  With a
  canonicalizing cache (``CLIP_CACHE_CANONICALIZE``) the fingerprint is
  the *canonical* one — an alpha-renamed variant of a registered
  mapping registers as a cache hit without a second compile.
* ``POST /mappings/compose`` — fuse two registered mappings (JSON
  envelope ``{"first": FP_AB, "second": FP_BC}``) into one composed
  ``A→C`` plan via :func:`repro.algebra.compose_tgds`; the composed
  entry is addressable by its :func:`repro.algebra.compose_fingerprint`
  exactly like a registered mapping, and transforms through it are
  byte-identical to chaining the two originals.  Pairs outside the
  composable fragment answer 422 with the :class:`ComposeError` reason.
* ``POST /transform?mapping=FP`` — transform one document (raw XML
  body, or a JSON envelope ``{"mapping": …, "document": …}``); the
  response body is the output XML, byte-identical to what the CLI
  ``run -o`` writes for the same inputs.
* ``POST /transform/batch`` — transform many documents through
  :class:`~repro.runtime.batch.BatchRunner` (JSON envelope); each
  result's XML is byte-identical to the file CLI ``batch --output-dir``
  writes.
* ``POST /transform/delta`` — re-transform an *edited* document
  incrementally (JSON envelope ``{"request": "req-…", "document":
  …}``): the named past transform supplies the previous source/target
  pair, :func:`~repro.runtime.incremental.transform_delta` recomputes
  only what the edit can reach, and the response XML is byte-identical
  to a full ``POST /transform`` of the edited document.  Responses are
  themselves stored in history, so successive edits chain.
* ``GET /requests/{id}[/metrics|/trace|/explain]`` — the
  ``clip-batch-metrics`` / ``clip-trace`` / ``clip-plan-explain``
  payloads of a past transform request (bounded history).
* ``GET /mappings[/{fp}]`` — registry listing and per-mapping detail
  (compiled-plan report, served via :meth:`PlanCache.peek` so
  inspection never skews the hit/miss statistics).
* ``GET /health`` — liveness (open even when HMAC auth is on).
* ``GET /metrics`` — Prometheus text exposition
  (:mod:`repro.service.metrics`).

Production-safety contract (the heimdex worker idioms): every request
runs under a :class:`~repro.runtime.retry.Deadline` whose overrun is
the same transient :class:`~repro.errors.DocumentTimeout` the batch
timeout raises (returned as a structured 504); malformed documents and
per-document failures shed into the existing error-policy/dead-letter
machinery instead of crashing the server; the in-flight ceiling sheds
excess load with 503; errors map onto structured JSON envelopes from
the :mod:`repro.errors` hierarchy; optional HMAC auth guards every
parsing path.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, NamedTuple, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import errors as errors_module
from ..algebra import compose_fingerprint, compose_tgds
from ..core.compile import compile_clip
from ..core.mapping import ClipMapping
from ..core.tgd import NestedTgd
from ..errors import (
    AlgebraError,
    AuthError,
    DocumentFailureError,
    DocumentTimeout,
    ExecModeError,
    ExecutionError,
    GenerationError,
    InvalidMappingError,
    MappingError,
    OverloadError,
    PayloadTooLargeError,
    ReproError,
    SchemaError,
    ServiceError,
    TransientError,
    UnknownMappingError,
    XmlError,
    XQueryError,
)
from ..executor.planner import resolve_optimize
from ..executor.stats import PlanExplain
from ..io import loads as load_mapping_text
from ..runtime import (
    BatchMetrics,
    BatchRunner,
    CompiledPlan,
    DeadLetter,
    Deadline,
    DocumentFailure,
    ErrorPolicy,
    PlanCache,
    SpanTracer,
    is_transient,
    plan_from_tgd,
    transform_delta,
    write_dead_letters,
)
from ..xml.diff import compute_delta
from ..runtime.plan import ENGINES, resolve_effective_exec_mode
from ..xml.model import XmlElement
from ..xml.parser import parse_xml
from ..xml.serialize import to_xml
from .auth import SIGNATURE_HEADER, verify_signature
from .config import ServiceConfig
from .metrics import ServiceMetrics

#: Schema identifiers of the JSON documents the service emits.
ERROR_FORMAT = "clip-service-error"
ERROR_VERSION = 1
BATCH_FORMAT = "clip-service-batch"
BATCH_VERSION = 1
MAPPING_FORMAT = "clip-service-mapping"
MAPPING_VERSION = 1

#: The repro.errors hierarchy mapped onto HTTP statuses, most specific
#: first — the first ``isinstance`` match wins.
_STATUS_BY_TYPE: Tuple[Tuple[type, int], ...] = (
    (AuthError, 401),
    (UnknownMappingError, 404),
    (PayloadTooLargeError, 413),
    (OverloadError, 503),
    (DocumentTimeout, 504),
    (TransientError, 503),
    (AlgebraError, 422),
    (InvalidMappingError, 422),
    (ExecModeError, 400),
    (XmlError, 400),
    (SchemaError, 400),
    (MappingError, 400),
    (GenerationError, 400),
    (XQueryError, 500),
    (ExecutionError, 500),
    (ServiceError, 400),
    (ReproError, 500),
    (ValueError, 400),
)


def error_status(error: BaseException) -> int:
    """The HTTP status for an exception, per the hierarchy table."""
    for cls, status in _STATUS_BY_TYPE:
        if isinstance(error, cls):
            return status
    return 500


def status_for_failure(failure: DocumentFailure) -> int:
    """The HTTP status for a :class:`DocumentFailure` record.

    Failure records cross the worker-pool boundary carrying the
    exception *class name*, not the object; resolve it against
    :mod:`repro.errors` and fall back on the transient triage.
    """
    if failure.timed_out:
        return 504
    cls = getattr(errors_module, failure.error, None)
    if isinstance(cls, type) and issubclass(cls, BaseException):
        for klass, status in _STATUS_BY_TYPE:
            if issubclass(cls, klass):
                return status
    return 503 if failure.transient else 500


class ServiceResponse(NamedTuple):
    """One response: status, content type, body bytes, extra headers."""

    status: int
    content_type: str
    body: bytes
    headers: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class RegisteredMapping:
    """One registry entry: a mapping pinned to its execution strategy."""

    fingerprint: str
    mapping: ClipMapping
    engine: str
    optimize: bool
    exec_mode: str

    def describe(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "engine": self.engine,
            "optimize": self.optimize,
            "exec_mode": self.exec_mode,
        }


@dataclass(frozen=True)
class RegisteredComposition:
    """One composed registry entry: an ``A→C`` tgd fused from two
    registered mappings, pinned to its execution strategy.

    There is no Clip mapping behind it — the composed nested tgd *is*
    the artifact — so the entry carries the schemas transforms need
    (the first operand's source, the second's target) and enough to
    rebuild the plan after a cache eviction.
    """

    fingerprint: str
    tgd: NestedTgd
    source: object  # the first operand's source XSD schema
    target: object  # the second operand's target XSD schema
    engine: str
    optimize: bool
    exec_mode: str
    first: str
    second: str

    def describe(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "engine": self.engine,
            "optimize": self.optimize,
            "exec_mode": self.exec_mode,
            "composed": [self.first, self.second],
        }


def _json_body(doc: dict, status: int = 200,
               headers: Tuple[Tuple[str, str], ...] = ()) -> ServiceResponse:
    payload = (json.dumps(doc, indent=2, ensure_ascii=False) + "\n").encode("utf-8")
    return ServiceResponse(status, "application/json; charset=utf-8",
                           payload, headers)


def _flag(value: Optional[str]) -> bool:
    """A boolean query parameter (``1``/``true``/``yes``/``on``)."""
    return value is not None and value.strip().lower() in (
        "1", "true", "yes", "on"
    )


def _tristate(value: Optional[str], name: str) -> Optional[bool]:
    """A tri-state boolean query parameter: absent → ``None``."""
    if value is None:
        return None
    lowered = value.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"{name} must be a boolean, got {value!r}")


class ClipService:
    """The long-lived mapping service: warm plans, bounded everything.

    Parameters
    ----------
    config:
        A resolved :class:`~repro.service.config.ServiceConfig`;
        ``None`` resolves one from the environment and defaults.
    cache:
        The :class:`PlanCache` to keep compiled plans warm in; defaults
        to a fresh cache owned by this service (so ``GET /metrics``
        describes exactly this service's traffic, not whatever the
        process compiled before).
    injector:
        A :class:`repro.runtime.faults.FaultInjector` threaded into
        every transform's :class:`BatchRunner` — the same deterministic
        fault harness the batch test suite uses, here so the service
        tests can script timeouts and errors without real slow inputs.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        cache: Optional[PlanCache] = None,
        injector=None,
    ):
        self.config = config if config is not None else ServiceConfig.resolve()
        self.cache = cache if cache is not None else PlanCache()
        self.injector = injector
        self.metrics = ServiceMetrics()
        self._lock = threading.Lock()
        self._registry: "OrderedDict[str, RegisteredMapping]" = OrderedDict()
        self._requests: "OrderedDict[str, dict]" = OrderedDict()
        self._request_counter = 0

    # -- dispatch ------------------------------------------------------

    def dispatch(
        self,
        method: str,
        path: str,
        headers: Optional[Mapping[str, str]] = None,
        body: bytes = b"",
    ) -> ServiceResponse:
        """Handle one request; never raises.

        ``path`` may carry a query string.  ``headers`` is any mapping
        with ``.get`` (the HTTP layer passes the request's header
        object).  Errors — the service's own and the full
        :mod:`repro.errors` hierarchy — come back as structured JSON
        envelopes with the status of :func:`error_status`.
        """
        headers = headers if headers is not None else {}
        started = time.perf_counter()
        split = urlsplit(path)
        route = split.path.rstrip("/") or "/"
        params = {
            key: values[-1]
            for key, values in parse_qs(split.query).items()
        }
        endpoint = self._endpoint_label(route)
        depth = self.metrics.begin_request()
        status = 500
        try:
            response = self._route(
                method, route, params, headers, body, endpoint, depth
            )
            status = response.status
            return response
        except Exception as exc:  # noqa: BLE001 — every error becomes an envelope
            if isinstance(exc, AuthError):
                self.metrics.count_auth_failure()
            if isinstance(exc, OverloadError):
                self.metrics.count_shed()
            status = error_status(exc)
            return self._error_response(exc, status)
        finally:
            self.metrics.end_request(
                endpoint, status, time.perf_counter() - started
            )

    def _endpoint_label(self, route: str) -> str:
        if route == "/health":
            return "health"
        if route == "/metrics":
            return "metrics"
        if route == "/transform":
            return "transform"
        if route == "/transform/batch":
            return "transform_batch"
        if route == "/transform/delta":
            return "transform_delta"
        if route == "/mappings" or route.startswith("/mappings/"):
            return "mappings"
        if route == "/requests" or route.startswith("/requests/"):
            return "requests"
        return "other"

    def _route(
        self,
        method: str,
        route: str,
        params: dict,
        headers: Mapping[str, str],
        body: bytes,
        endpoint: str,
        depth: int,
    ) -> ServiceResponse:
        if endpoint != "health":
            # Observability endpoints are never shed — an overloaded
            # service must still answer the scrape that reports it.
            if endpoint not in ("metrics",) and depth > self.config.max_inflight:
                raise OverloadError(
                    f"{depth} requests in flight exceeds the ceiling of "
                    f"{self.config.max_inflight}; retry with backoff"
                )
            if len(body) > self.config.max_body:
                raise PayloadTooLargeError(
                    f"request body of {len(body)} bytes exceeds the "
                    f"{self.config.max_body}-byte ceiling"
                )
            verify_signature(
                self.config.secret, body, headers.get(SIGNATURE_HEADER)
            )
        if method == "GET" and route == "/health":
            return self._health()
        if method == "GET" and route == "/metrics":
            return self._prometheus()
        if method == "POST" and route == "/mappings/compose":
            return self._compose(params, body)
        if method == "POST" and route == "/mappings":
            return self._register(params, body)
        if method == "GET" and route == "/mappings":
            return self._list_mappings()
        if method == "GET" and route.startswith("/mappings/"):
            return self._mapping_detail(route)
        if method == "POST" and route == "/transform":
            return self._transform(params, headers, body)
        if method == "POST" and route == "/transform/batch":
            return self._transform_batch(params, body)
        if method == "POST" and route == "/transform/delta":
            return self._transform_delta(params, body)
        if method == "GET" and route.startswith("/requests/"):
            return self._request_artifact(route)
        return self._error_response(
            ServiceError(f"no such endpoint: {method} {route}"), 404
        )

    # -- error envelopes -------------------------------------------------

    def _error_response(
        self,
        error: BaseException,
        status: int,
        request_id: Optional[str] = None,
        **extra,
    ) -> ServiceResponse:
        doc = {
            "format": ERROR_FORMAT,
            "version": ERROR_VERSION,
            "error": type(error).__name__,
            "message": str(error),
            "status": status,
            "transient": is_transient(error),
        }
        if request_id is not None:
            doc["request"] = request_id
        doc.update(extra)
        headers = (("X-Clip-Request", request_id),) if request_id else ()
        return _json_body(doc, status, headers)

    def _failure_response(
        self,
        failure: DocumentFailure,
        request_id: str,
        dead_letter_paths: Sequence[str],
    ) -> ServiceResponse:
        status = status_for_failure(failure)
        doc = {
            "format": ERROR_FORMAT,
            "version": ERROR_VERSION,
            "error": failure.error,
            "message": failure.message,
            "status": status,
            "transient": failure.transient,
            "timed_out": failure.timed_out,
            "attempts": failure.attempts,
            "request": request_id,
        }
        if dead_letter_paths:
            doc["dead_letters"] = list(dead_letter_paths)
        return _json_body(doc, status, (("X-Clip-Request", request_id),))

    # -- observability endpoints -----------------------------------------

    def _health(self) -> ServiceResponse:
        with self._lock:
            registered = len(self._registry)
        return _json_body({
            "status": "ok",
            "mappings": registered,
            "plans": len(self.cache),
            "inflight": self.metrics.inflight,
        })

    def _prometheus(self) -> ServiceResponse:
        with self._lock:
            registered = len(self._registry)
        text = self.metrics.render_prometheus(
            self.cache.stats, len(self.cache), registered
        )
        return ServiceResponse(
            200, "text/plain; version=0.0.4; charset=utf-8",
            text.encode("utf-8"),
        )

    # -- registration ------------------------------------------------------

    def _register(self, params: dict, body: bytes) -> ServiceResponse:
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError:
            raise ServiceError("mapping document is not valid UTF-8") from None
        clip = load_mapping_text(text)
        engine = params.get("engine", "tgd")
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; use one of {ENGINES}"
            )
        optimize = resolve_optimize(_tristate(params.get("optimize"), "optimize"))
        exec_mode = resolve_effective_exec_mode(
            engine, optimize, params.get("exec_mode")
        )
        # The cache's own key function: the canonical fingerprint when
        # the cache canonicalizes (alpha-renamed variants share a plan),
        # the structural one otherwise.
        fp = self.cache.fingerprint_for(
            clip, engine, optimize=optimize, exec_mode=exec_mode
        )
        was_cached = self.cache.peek(fp) is not None
        # The one compile (on a miss): the lookup inside get_or_compile
        # counts the hit or miss that GET /metrics then reports, and —
        # since the key above is the cache's own (possibly canonical)
        # one — the canonical hit/miss as well.
        plan = self.cache.get_or_compile(
            clip, engine, fp=fp, optimize=optimize, exec_mode=exec_mode,
            count_canonical=True,
        )
        entry = RegisteredMapping(fp, clip, engine, optimize, exec_mode)
        with self._lock:
            known = fp in self._registry
            self._registry[fp] = entry
        doc = {
            "format": MAPPING_FORMAT,
            "version": MAPPING_VERSION,
            **entry.describe(),
            "cache": "hit" if was_cached else "miss",
            "valid": plan.report.is_valid if plan.report is not None else True,
        }
        return _json_body(doc, 200 if known else 201)

    def _compose(self, params: dict, body: bytes) -> ServiceResponse:
        """``POST /mappings/compose``: fuse two registered mappings into
        one composed plan, registered under the compose fingerprint.

        The envelope names the operands by their registration
        fingerprints (``{"first": FP_AB, "second": FP_BC}``); query
        parameters pin the composed plan's execution strategy exactly
        like ``POST /mappings``.  Operand pairs outside the composable
        fragment raise :class:`~repro.errors.ComposeError` (422, with
        the machine-readable reason in the message).
        """
        try:
            envelope = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"compose envelope is not valid JSON: {exc}"
            ) from None
        if not isinstance(envelope, dict):
            raise ValueError(
                "compose envelope must be a JSON object with 'first' "
                "and 'second' keys"
            )
        first_fp = envelope.get("first")
        second_fp = envelope.get("second")
        if not isinstance(first_fp, str) or not first_fp:
            raise ValueError("compose envelope is missing 'first'")
        if not isinstance(second_fp, str) or not second_fp:
            raise ValueError("compose envelope is missing 'second'")
        first = self._lookup_mapping(first_fp)
        second = self._lookup_mapping(second_fp)
        if isinstance(first, RegisteredComposition) or isinstance(
            second, RegisteredComposition
        ):
            raise ServiceError(
                "compose operands must be plain registered mappings, "
                "not compositions"
            )
        engine = params.get("engine", "tgd")
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; use one of {ENGINES}"
            )
        optimize = resolve_optimize(_tristate(params.get("optimize"), "optimize"))
        exec_mode = resolve_effective_exec_mode(
            engine, optimize, params.get("exec_mode")
        )
        # Raises ComposeError (422) outside the composable fragment.
        composed = compose_tgds(
            compile_clip(first.mapping), compile_clip(second.mapping)
        )
        fp = compose_fingerprint(first.fingerprint, second.fingerprint)
        with self._lock:
            existing = self._registry.get(fp)
        # A cache hit only counts when the existing entry pins the same
        # execution strategy — re-composing with different parameters
        # recompiles and replaces the plan.
        was_cached = (
            self.cache.peek(fp) is not None
            and existing is not None
            and (existing.engine, existing.optimize, existing.exec_mode)
            == (engine, optimize, exec_mode)
        )
        if not was_cached:
            plan = plan_from_tgd(
                composed, engine, fp=fp, optimize=optimize,
                exec_mode=exec_mode,
            )
            self.cache.put(plan)
        entry = RegisteredComposition(
            fp, composed,
            first.mapping.source, second.mapping.target,
            engine, optimize, exec_mode,
            first.fingerprint, second.fingerprint,
        )
        with self._lock:
            known = fp in self._registry
            self._registry[fp] = entry
        doc = {
            "format": MAPPING_FORMAT,
            "version": MAPPING_VERSION,
            **entry.describe(),
            "cache": "hit" if was_cached else "miss",
            "valid": True,
        }
        return _json_body(doc, 200 if known else 201)

    def _composition_plan(self, entry: RegisteredComposition) -> CompiledPlan:
        """The composed entry's plan, rebuilt from the stored tgd after
        an eviction (there is no Clip mapping to recompile from)."""
        plan = self.cache.peek(entry.fingerprint)
        if plan is None:
            plan = plan_from_tgd(
                entry.tgd, entry.engine, fp=entry.fingerprint,
                optimize=entry.optimize, exec_mode=entry.exec_mode,
            )
            self.cache.put(plan)
        return plan

    def _list_mappings(self) -> ServiceResponse:
        with self._lock:
            entries = [entry.describe() for entry in self._registry.values()]
        return _json_body({"mappings": entries})

    def _mapping_detail(self, route: str) -> ServiceResponse:
        fp = route.split("/", 2)[2]
        entry = self._lookup_mapping(fp)
        plan = self.cache.peek(entry.fingerprint)
        doc = entry.describe()
        doc["cached"] = plan is not None
        doc["plan"] = plan.plan_report() if plan is not None else None
        return _json_body(doc)

    def _lookup_mapping(self, fp: str) -> RegisteredMapping:
        with self._lock:
            entry = self._registry.get(fp)
        if entry is None:
            raise UnknownMappingError(
                f"no registered mapping with fingerprint {fp!r}; "
                "register it first with POST /mappings"
            )
        return entry

    # -- transforms ------------------------------------------------------

    def _next_request_id(self) -> str:
        with self._lock:
            self._request_counter += 1
            return f"req-{self._request_counter:06d}"

    def _deadline(self, params: dict) -> Deadline:
        """The request's deadline: the configured budget, shortenable —
        never extendable — by a ``?deadline=SECONDS`` parameter."""
        budget = self.config.deadline
        raw = params.get("deadline")
        if raw is not None:
            requested = float(raw)
            if requested <= 0:
                raise ValueError(
                    f"deadline must be positive, got {requested!r}"
                )
            budget = requested if budget is None else min(requested, budget)
        return Deadline(budget)

    def _runner(
        self,
        entry: RegisteredMapping,
        *,
        workers: int = 1,
        error_policy: str = "collect",
        max_retries: int = 0,
        timeout: Optional[float] = None,
        validate: bool = False,
        tracer=None,
    ) -> BatchRunner:
        return BatchRunner(
            entry.mapping,
            engine=entry.engine,
            workers=workers,
            cache=self.cache,
            validate=validate,
            error_policy=error_policy,
            max_retries=max_retries,
            timeout=timeout,
            optimize=entry.optimize,
            exec_mode=entry.exec_mode,
            trace=tracer,
            fingerprint=entry.fingerprint,
            injector=self.injector,
        )

    def _dead_letter(self, letters: Sequence[DeadLetter],
                     request_id: str) -> list:
        """Shed failed inputs into the dead-letter machinery: counted
        always, persisted under ``<dir>/<request id>/`` when a
        directory is configured."""
        if not letters:
            return []
        self.metrics.count_dead_letters(len(letters))
        if not self.config.dead_letter_dir:
            return []
        directory = os.path.join(self.config.dead_letter_dir, request_id)
        return write_dead_letters(list(letters), directory)

    def _store_request(
        self,
        request_id: str,
        *,
        endpoint: str,
        entry: Optional[RegisteredMapping],
        status: int,
        metrics_doc: Optional[dict],
        result: Optional[XmlElement] = None,
        source_text: Optional[str] = None,
    ) -> None:
        explain = None
        plan = (metrics_doc or {}).get("plan")
        if plan is not None and result is not None:
            # Re-shape the runner's plan report into the same
            # clip-plan-explain document the CLI `explain --json` emits
            # — counters here are this request's deltas.
            explain = PlanExplain(
                result=result,
                optimize=plan.get("optimize", False),
                levels=plan.get("levels", []),
                counters=plan.get("counters", []),
                exec_mode=plan.get("exec_mode", "interp"),
                codegen=plan.get("codegen"),
            ).to_dict()
        record = {
            "request": request_id,
            "endpoint": endpoint,
            "mapping": entry.fingerprint if entry is not None else None,
            "engine": entry.engine if entry is not None else None,
            "status": status,
            "metrics": metrics_doc,
            "trace": (metrics_doc or {}).get("trace"),
            "explain": explain,
            # Internal (stripped from GET /requests/{id}): the
            # source/target pair a later POST /transform/delta keys on.
            "source_xml": source_text,
            "result_xml": (
                to_xml(result)
                if result is not None and source_text is not None
                else None
            ),
        }
        with self._lock:
            self._requests[request_id] = record
            while len(self._requests) > self.config.history:
                self._requests.popitem(last=False)

    def _transform_payload(
        self, params: dict, headers: Mapping[str, str], body: bytes
    ) -> Tuple[RegisteredMapping, str]:
        """Resolve a single-transform request into (mapping, XML text).

        Raw-XML bodies name their mapping with ``?mapping=FP``; JSON
        envelopes (``Content-Type: application/json``) carry
        ``{"mapping": FP, "document": "<xml…>"}``.
        """
        content_type = (headers.get("Content-Type") or "").lower()
        fp = params.get("mapping")
        if "json" in content_type:
            envelope = json.loads(body.decode("utf-8"))
            if not isinstance(envelope, dict):
                raise ValueError(
                    "transform envelope must be a JSON object with "
                    "'mapping' and 'document' keys"
                )
            fp = envelope.get("mapping", fp)
            text = envelope.get("document")
            if not isinstance(text, str):
                raise ValueError("transform envelope is missing 'document'")
        else:
            try:
                text = body.decode("utf-8")
            except UnicodeDecodeError:
                raise ServiceError(
                    "document body is not valid UTF-8"
                ) from None
        if not fp:
            raise ValueError(
                "no mapping named: pass ?mapping=FINGERPRINT or a JSON "
                "envelope with a 'mapping' key"
            )
        return self._lookup_mapping(fp), text

    def _transform(
        self, params: dict, headers: Mapping[str, str], body: bytes
    ) -> ServiceResponse:
        request_id = self._next_request_id()
        try:
            deadline = self._deadline(params)
            entry, text = self._transform_payload(params, headers, body)
            if isinstance(entry, RegisteredComposition):
                return self._transform_composed(
                    entry, text, params, deadline, request_id
                )
            try:
                document = deadline.run(
                    lambda: parse_xml(text, schema=entry.mapping.source)
                )
            except ReproError as exc:
                # Malformed input: shed into the dead-letter machinery
                # (raw text, like the CLI's parse isolation) and report.
                failure = DocumentFailure.from_exception(0, exc)
                paths = self._dead_letter([DeadLetter(failure, text)],
                                          request_id)
                self.metrics.count_documents(0, 1)
                return self._failure_response(failure, request_id, paths)
            tracer = SpanTracer() if _flag(params.get("trace")) else None
            runner = self._runner(
                entry, timeout=deadline.remaining(), tracer=tracer
            )
            batch = runner.run([document])
            metrics_doc = batch.metrics.to_dict()
            self.metrics.count_documents(
                len(batch.results), len(batch.failures)
            )
            if batch.failures:
                paths = self._dead_letter(batch.dead_letters, request_id)
                failure = batch.failures[0]
                self._store_request(
                    request_id, endpoint="transform", entry=entry,
                    status=status_for_failure(failure),
                    metrics_doc=metrics_doc,
                )
                return self._failure_response(failure, request_id, paths)
            result = batch.results[0]
            self._store_request(
                request_id, endpoint="transform", entry=entry, status=200,
                metrics_doc=metrics_doc, result=result, source_text=text,
            )
            return ServiceResponse(
                200, "application/xml; charset=utf-8",
                to_xml(result).encode("utf-8"),
                (("X-Clip-Request", request_id),
                 ("X-Clip-Mapping", entry.fingerprint)),
            )
        except Exception as exc:  # noqa: BLE001 — envelope with the request id
            if isinstance(exc, (ReproError, ValueError)):
                return self._error_response(
                    exc, error_status(exc), request_id
                )
            raise

    def _transform_composed(
        self,
        entry: RegisteredComposition,
        text: str,
        params: dict,
        deadline: Deadline,
        request_id: str,
    ) -> ServiceResponse:
        """One transform through a composed plan: parse against the
        first operand's source schema, run the fused one-pass plan —
        byte-identical to chaining the two originals."""
        try:
            document = deadline.run(
                lambda: parse_xml(text, schema=entry.source)
            )
        except ReproError as exc:
            failure = DocumentFailure.from_exception(0, exc)
            paths = self._dead_letter([DeadLetter(failure, text)],
                                      request_id)
            self.metrics.count_documents(0, 1)
            return self._failure_response(failure, request_id, paths)
        tracer = SpanTracer() if _flag(params.get("trace")) else None
        if tracer is not None:
            # The composed entry has no Clip mapping to derive the usual
            # trace seed from; the compose fingerprint is as stable.
            tracer.seed = entry.fingerprint
            tracer.engine = entry.engine
        plan = self._composition_plan(entry)
        started = time.perf_counter()
        result = deadline.run(lambda: plan.run(document, trace=tracer))
        elapsed = time.perf_counter() - started
        self.metrics.count_documents(1, 0)
        metrics_doc = BatchMetrics(
            engine=entry.engine,
            workers=1,
            documents=1,
            execute_seconds=elapsed,
            wall_seconds=elapsed,
            source_elements=document.size(),
            target_elements=result.size(),
        ).to_dict()
        if tracer is not None:
            metrics_doc["trace"] = tracer.to_trace().to_dict()
        self._store_request(
            request_id, endpoint="transform", entry=entry, status=200,
            metrics_doc=metrics_doc, result=result,
        )
        return ServiceResponse(
            200, "application/xml; charset=utf-8",
            to_xml(result).encode("utf-8"),
            (("X-Clip-Request", request_id),
             ("X-Clip-Mapping", entry.fingerprint)),
        )

    def _transform_delta(self, params: dict, body: bytes) -> ServiceResponse:
        """``POST /transform/delta``: incremental re-transform of an
        edited document, keyed on a past request's source/target pair."""
        request_id = self._next_request_id()
        try:
            deadline = self._deadline(params)
            envelope = json.loads(body.decode("utf-8"))
            if not isinstance(envelope, dict):
                raise ValueError(
                    "delta envelope must be a JSON object with 'request' "
                    "and 'document' keys"
                )
            base_id = envelope.get("request")
            text = envelope.get("document")
            if not isinstance(base_id, str) or not base_id:
                raise ValueError("delta envelope is missing 'request'")
            if not isinstance(text, str):
                raise ValueError("delta envelope is missing 'document'")
            with self._lock:
                base = self._requests.get(base_id)
            if base is None:
                return self._error_response(
                    ServiceError(
                        f"no such request {base_id!r} (history keeps the "
                        f"last {self.config.history})"
                    ),
                    404,
                    request_id,
                )
            if not base.get("source_xml") or not base.get("result_xml"):
                raise ServiceError(
                    f"request {base_id} stored no source/target pair; "
                    "delta transforms chain off successful single "
                    "transforms"
                )
            threshold = envelope.get("threshold")
            if threshold is not None:
                threshold = float(threshold)
                if not 0.0 <= threshold <= 1.0:
                    raise ValueError(
                        f"threshold must be within [0, 1], got {threshold!r}"
                    )
            entry = self._lookup_mapping(base["mapping"])
            if isinstance(entry, RegisteredComposition):
                raise ServiceError(
                    "delta transforms are not supported for composed "
                    "mappings; re-transform with POST /transform"
                )
            started = time.perf_counter()
            prev_source = deadline.run(
                lambda: parse_xml(
                    base["source_xml"], schema=entry.mapping.source
                )
            )
            prev_target = parse_xml(
                base["result_xml"], schema=entry.mapping.target
            )
            try:
                new_source = deadline.run(
                    lambda: parse_xml(text, schema=entry.mapping.source)
                )
            except ReproError as exc:
                failure = DocumentFailure.from_exception(0, exc)
                paths = self._dead_letter([DeadLetter(failure, text)],
                                          request_id)
                self.metrics.count_documents(0, 1)
                return self._failure_response(failure, request_id, paths)
            plan = self.cache.get_or_compile(
                entry.mapping, entry.engine, fp=entry.fingerprint,
                optimize=entry.optimize, exec_mode=entry.exec_mode,
            )
            delta = compute_delta(prev_source, new_source)
            kwargs = {} if threshold is None else {"threshold": threshold}
            result, report = deadline.run(
                lambda: transform_delta(
                    plan, prev_source, prev_target, delta,
                    new_source=new_source, **kwargs,
                )
            )
            elapsed = time.perf_counter() - started
            self.metrics.count_incremental(fallback=not report.incremental)
            self.metrics.count_documents(1, 0)
            metrics_doc = BatchMetrics(
                engine=entry.engine,
                workers=1,
                documents=1,
                execute_seconds=elapsed,
                wall_seconds=elapsed,
                source_elements=new_source.size(),
                target_elements=result.size(),
                incremental=report.to_dict(),
            ).to_dict()
            self._store_request(
                request_id, endpoint="transform_delta", entry=entry,
                status=200, metrics_doc=metrics_doc, result=result,
                source_text=text,
            )
            return ServiceResponse(
                200, "application/xml; charset=utf-8",
                to_xml(result).encode("utf-8"),
                (("X-Clip-Request", request_id),
                 ("X-Clip-Mapping", entry.fingerprint),
                 ("X-Clip-Incremental", report.mode)),
            )
        except Exception as exc:  # noqa: BLE001 — envelope with the request id
            if isinstance(exc, (ReproError, ValueError)):
                return self._error_response(
                    exc, error_status(exc), request_id
                )
            raise

    def _transform_batch(self, params: dict, body: bytes) -> ServiceResponse:
        request_id = self._next_request_id()
        try:
            return self._transform_batch_inner(params, body, request_id)
        except Exception as exc:  # noqa: BLE001 — envelope with the request id
            if isinstance(exc, (ReproError, ValueError)):
                return self._error_response(
                    exc, error_status(exc), request_id
                )
            raise

    def _transform_batch_inner(
        self, params: dict, body: bytes, request_id: str
    ) -> ServiceResponse:
        deadline = self._deadline(params)
        envelope = json.loads(body.decode("utf-8"))
        if not isinstance(envelope, dict):
            raise ValueError(
                "batch envelope must be a JSON object with 'mapping' "
                "and 'documents' keys"
            )
        fp = envelope.get("mapping", params.get("mapping"))
        if not fp:
            raise ValueError(
                "no mapping named: pass ?mapping=FINGERPRINT or a "
                "'mapping' key in the envelope"
            )
        entry = self._lookup_mapping(fp)
        if isinstance(entry, RegisteredComposition):
            raise ServiceError(
                "batch transforms are not supported for composed "
                "mappings; use POST /transform per document"
            )
        sources = envelope.get("documents")
        if (
            not isinstance(sources, list)
            or not sources
            or not all(isinstance(item, str) for item in sources)
        ):
            raise ValueError(
                "'documents' must be a non-empty list of XML strings"
            )
        policy = ErrorPolicy.coerce(envelope.get("error_policy", "collect"))
        requested = envelope.get("workers")
        workers = self.config.workers if requested is None else int(requested)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        # The config is a ceiling: a request can narrow its fan-out but
        # never commandeer more of the host than the operator allowed.
        workers = min(workers, self.config.workers)
        max_retries = int(envelope.get("max_retries", 0))
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries!r}")
        validate = bool(envelope.get("validate", False))
        per_document = envelope.get("timeout")
        if per_document is not None:
            per_document = float(per_document)
            if per_document <= 0:
                raise ValueError(
                    f"timeout must be positive, got {per_document!r}"
                )
        remaining = deadline.remaining()
        if remaining is not None:
            per_document = (
                remaining if per_document is None
                else min(per_document, remaining)
            )
        # Parse with per-document isolation, like the CLI: under
        # skip/collect a malformed input is one failure, not a dead
        # batch; its raw text is what gets dead-lettered.
        documents = []
        source_index = []
        parse_failures = []
        parse_letters = []
        for position, text in enumerate(sources):
            try:
                documents.append(
                    deadline.run(
                        lambda text=text: parse_xml(
                            text, schema=entry.mapping.source
                        )
                    )
                )
            except ReproError as exc:
                if policy is ErrorPolicy.FAIL_FAST or isinstance(
                    exc, DocumentTimeout
                ):
                    raise
                failure = DocumentFailure.from_exception(position, exc)
                parse_failures.append(failure)
                if policy is ErrorPolicy.COLLECT:
                    parse_letters.append(DeadLetter(failure, text))
            else:
                source_index.append(position)
        tracer = SpanTracer() if _flag(params.get("trace")) else None
        runner = self._runner(
            entry,
            workers=workers,
            error_policy=policy.value,
            max_retries=max_retries,
            timeout=per_document,
            validate=validate,
            tracer=tracer,
        )
        try:
            batch = deadline.run(lambda: runner.run(documents))
        except DocumentFailureError as exc:
            # fail_fast: the first terminal failure aborts the request.
            failure = exc.failure
            failure.index = source_index[failure.index]
            self.metrics.count_documents(0, 1)
            return self._failure_response(failure, request_id, [])
        for failure in batch.failures:
            failure.index = source_index[failure.index]
        failures = sorted(
            list(batch.failures) + parse_failures,
            key=lambda failure: failure.index,
        )
        letters = sorted(
            list(batch.dead_letters) + parse_letters,
            key=lambda letter: letter.failure.index,
        )
        paths = self._dead_letter(letters, request_id)
        metrics = batch.metrics
        metrics.failures += len(parse_failures)
        metrics.dead_letter += len(parse_letters)
        metrics_doc = metrics.to_dict()
        self.metrics.count_documents(len(batch.results), len(failures))
        results = [
            {
                "index": source_index[batch.success_indices[position]],
                "xml": to_xml(result),
            }
            for position, result in enumerate(batch.results)
        ]
        self._store_request(
            request_id, endpoint="transform_batch", entry=entry, status=200,
            metrics_doc=metrics_doc,
        )
        doc = {
            "format": BATCH_FORMAT,
            "version": BATCH_VERSION,
            "request": request_id,
            "mapping": entry.fingerprint,
            "engine": entry.engine,
            "documents": len(sources),
            "succeeded": len(results),
            "results": results,
            "failures": [failure.to_dict() for failure in failures],
            "metrics": metrics_doc,
        }
        if paths:
            doc["dead_letters"] = paths
        return _json_body(
            doc, 200,
            (("X-Clip-Request", request_id),
             ("X-Clip-Mapping", entry.fingerprint)),
        )

    # -- request artifacts -------------------------------------------------

    def _request_artifact(self, route: str) -> ServiceResponse:
        parts = route.split("/")
        request_id = parts[2] if len(parts) > 2 else ""
        with self._lock:
            record = self._requests.get(request_id)
        if record is None:
            return self._error_response(
                ServiceError(
                    f"no such request {request_id!r} (history keeps the "
                    f"last {self.config.history})"
                ),
                404,
            )
        if len(parts) == 3:
            return _json_body({
                key: value
                for key, value in record.items()
                if key not in ("source_xml", "result_xml")
            })
        kind = parts[3]
        if kind not in ("metrics", "trace", "explain"):
            return self._error_response(
                ServiceError(
                    f"unknown artifact {kind!r}; use metrics, trace or "
                    "explain"
                ),
                404,
            )
        payload = record.get(kind)
        if payload is None:
            hint = {
                "metrics": "",
                "trace": " (request it with ?trace=1)",
                "explain": " (single transforms on the tgd engine only)",
            }[kind]
            return self._error_response(
                ServiceError(
                    f"request {request_id} recorded no {kind} payload{hint}"
                ),
                404,
            )
        return _json_body(payload)
