"""The HTTP shim: ``http.server`` sockets around :class:`ClipService`.

Deliberately thin — every decision (routing, auth, deadlines, error
envelopes, metrics) lives in :meth:`ClipService.dispatch`, which this
module only adapts onto ``ThreadingHTTPServer``.  Stdlib only: the
repro has no web-framework dependency to install, and a threading
server is exactly right for a workload whose unit of concurrency is
one plan evaluation.

The handler:

* speaks HTTP/1.1 with an explicit ``Content-Length`` on every
  response (keep-alive works, chunking never happens);
* refuses oversized uploads by ``Content-Length`` *before* reading the
  body (413 + ``Connection: close``), so a hostile payload cannot make
  the server buffer it first;
* never logs per-request lines to stderr (the service's own metrics
  are the observability surface);
* catches dispatch-level surprises into a minimal 500 envelope so a
  handler thread can't die with a traceback on the socket.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

from .app import ClipService, ServiceResponse


class ClipHTTPServer(ThreadingHTTPServer):
    """One thread per connection; daemon threads so Ctrl-C exits."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: ClipService):
        self.service = service
        super().__init__(address, ClipRequestHandler)


class ClipRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "clip-service"
    # Omit the default Python/BaseHTTP banner from the Server header.
    sys_version = ""

    @property
    def service(self) -> ClipService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default per-request stderr line."""

    def _respond(self, response: ServiceResponse) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _fail(self, status: int, error: str, message: str,
              close: bool = False) -> None:
        body = (json.dumps({
            "format": "clip-service-error",
            "version": 1,
            "error": error,
            "message": message,
            "status": status,
            "transient": False,
        }, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        raw = self.headers.get("Content-Length", "0")
        try:
            length = int(raw)
        except ValueError:
            length = -1
        if length < 0:
            raise _BadRequest(f"invalid Content-Length: {raw!r}")
        if length > self.service.config.max_body:
            # Refuse before buffering; the unread body forces a close.
            raise _TooLarge(
                f"request body of {length} bytes exceeds the "
                f"{self.service.config.max_body}-byte ceiling"
            )
        return self.rfile.read(length) if length else b""

    def _handle(self, method: str) -> None:
        try:
            body = self._read_body()
        except _BadRequest as exc:
            self._fail(400, "ServiceError", str(exc), close=True)
            return
        except _TooLarge as exc:
            self._fail(413, "PayloadTooLargeError", str(exc), close=True)
            return
        try:
            response = self.service.dispatch(
                method, self.path, self.headers, body
            )
        except Exception as exc:  # noqa: BLE001 — last-ditch: keep the thread alive
            self._fail(500, type(exc).__name__, str(exc), close=True)
            return
        try:
            self._respond(response)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._handle("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")


class _BadRequest(Exception):
    pass


class _TooLarge(Exception):
    pass


def make_server(service: ClipService) -> ClipHTTPServer:
    """Bind a server for ``service`` at its configured host and port.

    Port ``0`` asks the OS for an ephemeral port; read the actual one
    back from ``server.server_address[1]`` (the CLI prints it, and the
    smoke tests parse it).
    """
    return ClipHTTPServer(
        (service.config.host, service.config.port), service
    )
