"""Optional HMAC request authentication for the mapping service.

When the service is configured with a shared secret
(``CLIP_SERVICE_SECRET``), every request except ``GET /health`` must
carry an ``X-Clip-Signature`` header: the lowercase hex HMAC-SHA256 of
the raw request body under the secret (the empty body for GETs).  A
``sha256=`` prefix is accepted for parity with common webhook
conventions.  Verification is constant-time (``hmac.compare_digest``),
and a missing or wrong signature is rejected with a structured 401
before any request parsing happens — an unauthenticated caller can
never reach the XML parser or the plan cache.

Without a secret configured the service is open, which is the right
default for localhost development and the CI smoke leg; the health
endpoint stays open either way so load balancers can probe.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Optional

from ..errors import AuthError

#: The request header carrying the body signature.
SIGNATURE_HEADER = "X-Clip-Signature"


def sign_body(secret: str, body: bytes) -> str:
    """The lowercase hex HMAC-SHA256 of ``body`` under ``secret`` —
    what a client puts in :data:`SIGNATURE_HEADER`."""
    return hmac.new(
        secret.encode("utf-8"), body, hashlib.sha256
    ).hexdigest()


def verify_signature(
    secret: Optional[str], body: bytes, signature: Optional[str]
) -> None:
    """Enforce the signature contract; no-op when no secret is set.

    Raises :class:`repro.errors.AuthError` on a missing or mismatched
    signature.  Comparison is constant-time.
    """
    if secret is None:
        return
    if not signature:
        raise AuthError(
            f"missing {SIGNATURE_HEADER} header (the service is "
            "configured with a shared secret; sign the request body "
            "with HMAC-SHA256)"
        )
    provided = signature.strip()
    if provided.lower().startswith("sha256="):
        provided = provided[len("sha256="):]
    expected = sign_body(secret, body)
    if not hmac.compare_digest(expected, provided.lower()):
        raise AuthError("request signature does not match the body")
