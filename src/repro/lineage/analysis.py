"""Lineage and impact analysis over compiled mappings.

The paper's introduction names a second use of schema mappings:
"to maintain relationships between schema elements, for later use in
impact analysis (change management) and data lineage".  The paper does
not pursue it; this module provides the natural implementation on top
of our nested tgds:

* :func:`lineage` — for every target path the mapping writes, the set
  of source paths whose values (or sets, for aggregates) feed it, with
  the function applied and the iteration context (the generators in
  scope);
* :func:`impact_of_source` / :func:`impact_of_target` — which target
  (resp. source) paths are affected when a schema element changes: the
  questions a change-management tool asks before editing a schema.

Everything is derived from the tgd, so the analysis covers exactly what
the executable transformation does — including filters, joins, grouping
keys and aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tgd import (
    AggregateApp,
    Constant,
    FunctionApp,
    Membership,
    NestedTgd,
    SchemaRoot,
    TgdComparison,
    TgdExpr,
    TgdMapping,
    expr_labels,
    expr_root,
)


@dataclass(frozen=True)
class LineageEntry:
    """One target path and everything that feeds it."""

    target_path: str
    source_paths: tuple[str, ...]
    #: "copy", a scalar function name, or "<<aggregate>>" tag.
    via: str
    #: Source paths appearing in the filters/joins guarding this value.
    conditions: tuple[str, ...]
    #: The source paths iterated to produce each occurrence.
    iteration: tuple[str, ...]

    def __str__(self) -> str:
        sources = ", ".join(self.source_paths)
        return f"{self.target_path}  <=[{self.via}]=  {sources}"


class _Resolver:
    """Resolve tgd expressions to absolute slash paths."""

    def __init__(self, source_root: str, target_root: str):
        self.source_root = source_root
        self.target_root = target_root
        #: variable → absolute path of its binding
        self.bindings: dict[str, str] = {}

    def bind(self, var: str, expr: TgdExpr) -> str:
        path = self.resolve(expr)
        self.bindings[var] = path
        return path

    def resolve(self, expr: TgdExpr) -> str:
        root = expr_root(expr)
        labels = expr_labels(expr)
        if isinstance(root, SchemaRoot):
            head = root.name
        else:
            head = self.bindings.get(root.name, f"${root.name}")
        segments = [head]
        for label in labels:
            if label == "value":
                segments.append("text()")
            else:
                segments.append(label)
        return "/".join(segments)


def _term_sources(term, resolver: _Resolver) -> tuple[tuple[str, ...], str]:
    if isinstance(term, Constant):
        return (), "constant"
    if isinstance(term, AggregateApp):
        return (resolver.resolve(term.arg),), f"<<{term.function.name}>>"
    if isinstance(term, FunctionApp):
        return tuple(resolver.resolve(a) for a in term.args), term.function.name
    return (resolver.resolve(term),), "copy"


def _condition_paths(conditions, resolver: _Resolver) -> tuple[str, ...]:
    found: list[str] = []
    for condition in conditions:
        if isinstance(condition, TgdComparison):
            for side in (condition.left, condition.right):
                if not isinstance(side, Constant):
                    found.append(resolver.resolve(side))
        elif isinstance(condition, Membership):
            found.append(resolver.resolve(condition.member))
            found.append(resolver.resolve(condition.collection))
    return tuple(found)


def lineage(tgd: NestedTgd) -> list[LineageEntry]:
    """Compute the lineage table of a compiled mapping."""
    entries: list[LineageEntry] = []

    def walk(mapping: TgdMapping, resolver: _Resolver, iteration: tuple[str, ...]):
        local = _Resolver(resolver.source_root, resolver.target_root)
        local.bindings = dict(resolver.bindings)
        level_iteration = list(iteration)
        for gen in mapping.source_gens:
            path = local.bind(gen.var, gen.expr)
            level_iteration.append(path)
        for gen in mapping.target_gens:
            local.bind(gen.var, gen.expr)
        if mapping.skolem is not None:
            var, app = mapping.skolem
            # grouping keys feed the *identity* of the grouped element
            grouped_path = local.bindings.get(var, var)
            entries.append(
                LineageEntry(
                    target_path=grouped_path,
                    source_paths=tuple(local.resolve(a) for a in app.attrs),
                    via="group-by",
                    conditions=_condition_paths(mapping.where, local),
                    iteration=tuple(level_iteration),
                )
            )
        conditions = _condition_paths(mapping.where, local)
        for assignment in mapping.assignments:
            sources, via = _term_sources(assignment.value, local)
            entries.append(
                LineageEntry(
                    target_path=local.resolve(assignment.target),
                    source_paths=sources,
                    via=via,
                    conditions=conditions,
                    iteration=tuple(level_iteration),
                )
            )
        for sub in mapping.submappings:
            walk(sub, local, tuple(level_iteration))

    for root in tgd.roots:
        walk(root, _Resolver(tgd.source_root, tgd.target_root), ())
    return entries


def _touches(path: str, element_path: str) -> bool:
    return path == element_path or path.startswith(element_path + "/")


def impact_of_source(tgd: NestedTgd, source_path: str) -> list[LineageEntry]:
    """All lineage entries affected if the given source path changes
    (as a value source, a condition operand, or an iteration anchor)."""
    out = []
    for entry in lineage(tgd):
        if (
            any(_touches(p, source_path) for p in entry.source_paths)
            or any(_touches(p, source_path) for p in entry.conditions)
            or any(_touches(p, source_path) for p in entry.iteration)
        ):
            out.append(entry)
    return out


def impact_of_target(tgd: NestedTgd, target_path: str) -> list[LineageEntry]:
    """All lineage entries writing at or below the given target path."""
    return [e for e in lineage(tgd) if _touches(e.target_path, target_path)]


def render_lineage(entries: list[LineageEntry]) -> str:
    """A readable lineage report."""
    lines = []
    for entry in entries:
        lines.append(str(entry))
        if entry.conditions:
            lines.append("    guarded by: " + ", ".join(dict.fromkeys(entry.conditions)))
        if entry.iteration:
            lines.append("    per: " + " × ".join(entry.iteration))
    return "\n".join(lines)
