"""Lineage and impact analysis over compiled mappings."""

from .analysis import (
    LineageEntry,
    impact_of_source,
    impact_of_target,
    lineage,
    render_lineage,
)

__all__ = [
    "LineageEntry",
    "lineage",
    "impact_of_source",
    "impact_of_target",
    "render_lineage",
]
