"""Sequential composition of schema mappings.

Data integration chains mappings: staging → canonical → mart.  The
theory of composing the *logical* mappings is its own research line
(the paper cites Fagin et al.'s second-order tgds [8]); what every
practical tool ships is the operational version — run the
transformations in sequence, checking that each stage's output schema
feeds the next stage's input schema.  :class:`Pipeline` provides that,
with per-stage validation and inspection hooks.

``Pipeline(…, fuse=True)`` additionally *algebraically* fuses adjacent
stages via :func:`repro.algebra.compose_tgds`: runs of stages inside
the composable fragment collapse into single one-pass plans (no
intermediate instance is materialized), while stage pairs outside it
keep their seam.  Fused and unfused pipelines produce byte-identical
output — the fused plans are cached under
:func:`repro.algebra.compose_fingerprint` chain keys in the shared
:class:`~repro.runtime.PlanCache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from . import Transformer
from .core.mapping import ClipMapping
from .errors import MappingError, ValidationError
from .xml.model import XmlElement
from .xsd.render import render_schema
from .xsd.validate import validate


@dataclass
class StageResult:
    """One stage's output, kept for inspection."""

    index: int
    instance: XmlElement
    violations: list


class Pipeline:
    """A chain of Clip mappings applied in sequence.

    The stages' schemas must line up: stage *i*'s target schema is
    stage *i+1*'s source schema (compared structurally, since schema
    objects may have been built twice from the same definition).

    ``fuse=True`` greedily composes adjacent stages' tgds
    (:func:`repro.algebra.compose_tgds`); :attr:`fused_groups` records
    which original stages each fused plan covers (``[[0, 1], [2]]`` —
    stages 0 and 1 inlined, stage 2 kept its seam).
    """

    def __init__(self, mappings: Sequence[ClipMapping], *, engine: str = "tgd",
                 fuse: bool = False):
        if not mappings:
            raise MappingError("a pipeline needs at least one mapping")
        self.engine = engine
        self.transformers = [Transformer(m, engine=engine) for m in mappings]
        self.fuse = fuse
        #: Original stage indices covered by each fused unit (one
        #: singleton list per stage when ``fuse`` is off or nothing
        #: composed).
        self.fused_groups: list[list[int]] = []
        self._fused_tgds: list = []
        self._fused_plans = None
        if fuse:
            self._plan_fusion()
        else:
            self.fused_groups = [[i] for i in range(len(self.transformers))]
        # Render each schema object at most once across the adjacency
        # checks — shared schema objects (stage i's target handed to
        # stage i+1 as its source) used to be rendered per comparison.
        rendered: dict[int, str] = {}

        def render_once(schema) -> str:
            key = id(schema)
            if key not in rendered:
                rendered[key] = render_schema(schema)
            return rendered[key]

        for index in range(len(mappings) - 1):
            upstream = mappings[index].target
            downstream = mappings[index + 1].source
            if render_once(upstream) != render_once(downstream):
                raise MappingError(
                    f"pipeline stage {index} produces schema "
                    f"{upstream.root.name!r} but stage {index + 1} consumes "
                    f"{downstream.root.name!r} (structures differ)"
                )

    def __len__(self) -> int:
        return len(self.transformers)

    # -- adjacent-stage fusion -----------------------------------------

    def _plan_fusion(self) -> None:
        """Greedily fold adjacent stages' tgds: each stage joins the
        current fused run when :func:`compose_tgds` accepts the pair,
        otherwise the run closes and the stage starts a new one."""
        from .algebra import compose_tgds
        from .errors import ComposeError

        accumulated = self.transformers[0].tgd
        group = [0]
        for index in range(1, len(self.transformers)):
            stage_tgd = self.transformers[index].tgd
            try:
                accumulated = compose_tgds(accumulated, stage_tgd)
            except ComposeError:
                self._fused_tgds.append(accumulated)
                self.fused_groups.append(group)
                accumulated = stage_tgd
                group = [index]
            else:
                group.append(index)
        self._fused_tgds.append(accumulated)
        self.fused_groups.append(group)

    def _group_fingerprint(self, group: Sequence[int]) -> str:
        """The fused cache key for one group: the stage fingerprints
        folded left through :func:`compose_fingerprint`."""
        from .algebra import compose_fingerprint
        from .runtime import fingerprint

        fp = fingerprint(self.transformers[group[0]].mapping, self.engine)
        for index in group[1:]:
            fp = compose_fingerprint(
                fp, fingerprint(self.transformers[index].mapping, self.engine)
            )
        return fp

    @property
    def fused_plans(self):
        """The compiled plans of the fused units (``fuse=True`` only),
        built lazily and shared through the default plan cache under
        compose-fingerprint chain keys."""
        if not self.fuse:
            raise MappingError(
                "this pipeline was built without fuse=True; "
                "there are no fused plans"
            )
        if self._fused_plans is None:
            from .runtime import default_cache, plan_from_tgd

            cache = default_cache()
            plans = []
            for tgd, group in zip(self._fused_tgds, self.fused_groups):
                fp = self._group_fingerprint(group)
                plan = cache.peek(fp)
                if plan is None:
                    plan = plan_from_tgd(tgd, self.engine, fp=fp)
                    cache.put(plan)
                plans.append(plan)
            self._fused_plans = plans
        return self._fused_plans

    def _seed_trace(self, trace) -> None:
        """Namespace a shared tracer under the whole chain: the
        combined hash of every stage's base fingerprint, so a pipeline
        trace never collides with any single stage's own."""
        if not trace.seed:
            from .runtime.plan import trace_seed
            from .runtime.trace import combine_seeds

            trace.seed = combine_seeds(
                trace_seed(t.mapping, self.engine) for t in self.transformers
            )
        if not trace.engine:
            trace.engine = self.engine

    def run(
        self,
        instance: XmlElement,
        *,
        validate_stages: bool = False,
        keep_intermediates: bool = False,
        trace=None,
    ):
        """Apply all stages.  Returns the final instance, or — with
        ``keep_intermediates=True`` — the list of :class:`StageResult`.

        ``validate_stages=True`` validates each stage's output against
        its target schema and raises :class:`ValidationError` on the
        first violation.

        ``trace`` (a :class:`repro.runtime.trace.SpanTracer`) records a
        ``pipeline`` span with one ``stage[i]`` child per mapping, each
        containing that transformer's prepare/transform subtree.

        With ``fuse=True`` the fused plans run instead — byte-identical
        output, no intermediate instances for inlined seams — unless
        ``validate_stages`` or ``keep_intermediates`` is set, which
        need every per-stage instance and therefore run the unfused
        path.
        """
        if self.fuse and not validate_stages and not keep_intermediates:
            return self._run_fused(instance, trace=trace)
        current = instance
        results: list[StageResult] = []
        pipeline_span = None
        if trace:
            self._seed_trace(trace)
            pipeline_span = trace.begin("pipeline", stages=len(self))
        for index, transformer in enumerate(self.transformers):
            stage_span = None
            if trace:
                mapping = transformer.mapping
                stage_span = trace.begin(
                    f"stage[{index}]",
                    source=mapping.source.root.name,
                    target=mapping.target.root.name,
                )
            try:
                current = transformer.apply(current, trace=trace)
                violations = (
                    validate(current, transformer.mapping.target)
                    if validate_stages
                    else []
                )
                if validate_stages and violations:
                    raise ValidationError(violations)
            except Exception:
                if stage_span is not None:
                    stage_span.attrs["status"] = "error"
                    trace.end(stage_span)
                raise
            if stage_span is not None:
                attrs = {"status": "ok"}
                if validate_stages:
                    attrs["violations"] = len(violations)
                trace.end(stage_span, **attrs)
            if keep_intermediates:
                results.append(StageResult(index, current, violations))
        if pipeline_span is not None:
            trace.end(pipeline_span)
        if keep_intermediates:
            return results
        return current

    def _run_fused(self, instance: XmlElement, *, trace=None) -> XmlElement:
        """Apply the fused plans in order.  Traced runs record one
        ``fused[i]`` span per unit, tagged with the original stage
        indices the unit covers."""
        current = instance
        pipeline_span = None
        if trace:
            self._seed_trace(trace)
            pipeline_span = trace.begin(
                "pipeline", stages=len(self), fused=len(self.fused_plans)
            )
        for index, (plan, group) in enumerate(
            zip(self.fused_plans, self.fused_groups)
        ):
            unit_span = None
            if trace:
                unit_span = trace.begin(
                    f"fused[{index}]", stages=",".join(map(str, group))
                )
            try:
                current = plan.run(current, trace=trace)
            except Exception:
                if unit_span is not None:
                    unit_span.attrs["status"] = "error"
                    trace.end(unit_span)
                if pipeline_span is not None:
                    trace.end(pipeline_span)
                raise
            if unit_span is not None:
                trace.end(unit_span, status="ok")
        if pipeline_span is not None:
            trace.end(pipeline_span)
        return current

    def __call__(self, instance: XmlElement) -> XmlElement:
        return self.run(instance)

    def run_batch(
        self,
        documents,
        *,
        workers: int = 1,
        validate: bool = False,
        cache=None,
        error_policy="fail_fast",
        max_retries: int = 0,
        backoff: float = 0.05,
        timeout=None,
        retry=None,
        injectors=None,
        trace=None,
    ):
        """Stream a batch of documents through all stages.

        Stage-major execution: every document passes stage 0, then the
        intermediate instances pass stage 1, and so on — each stage's
        compiled plan is retrieved once per document application from
        the plan cache, which this method seeds with the transformers'
        already-compiled tgds (no stage compiles twice).  ``workers``
        fans each stage's documents across a process pool
        (:class:`repro.runtime.BatchRunner`); results keep input order.

        Failures propagate at stage granularity: a document that fails
        stage *k* (after ``max_retries`` re-attempts of transient
        errors, each bounded by ``timeout`` seconds) is *not* fed to
        stage *k+1*.  Under ``error_policy="fail_fast"`` the first
        terminal failure raises :class:`repro.errors.DocumentFailureError`
        with the stage recorded on the failure; under ``"skip"`` /
        ``"collect"`` the surviving documents keep flowing, and
        ``"collect"`` additionally dead-letters the instance the
        failing stage consumed.  Failure records and
        ``success_indices`` on the returned result are expressed in
        *original input* indices.

        ``injectors`` (tests only) maps a stage index to a
        :class:`repro.runtime.FaultInjector` fired on that stage's
        local document indices.

        Returns a :class:`repro.runtime.BatchResult` whose metrics
        carry a per-stage breakdown (documents, execute seconds,
        validation violations, failures/retries/timeouts/dead-letter).
        Unlike :meth:`run`, ``validate=True`` counts violations into
        the metrics instead of raising, so one bad document does not
        abort the batch.

        ``trace`` records a ``pipeline-batch`` span with one
        ``stage[i]`` child per mapping, each containing that stage's
        full ``batch`` subtree (doc/attempt spans, worker merging —
        see :class:`repro.runtime.BatchRunner`); the finished trace
        document is embedded in the metrics' ``trace`` key.
        """
        from .errors import DocumentFailureError
        from .runtime import (
            BatchMetrics,
            BatchResult,
            BatchRunner,
            ErrorPolicy,
            StageMetrics,
            default_cache,
            fingerprint,
            plan_from_tgd,
        )

        cache = cache if cache is not None else default_cache()
        policy = ErrorPolicy.coerce(error_policy)
        current = list(documents)
        # Original input index of each document still flowing.
        alive = list(range(len(current)))
        metrics = BatchMetrics(
            engine=self.engine, workers=workers, error_policy=policy.value
        )
        metrics.source_elements = sum(doc.size() for doc in current)
        failures = []
        dead_letters = []
        root_span = None
        owns_trace = False
        if trace:
            self._seed_trace(trace)
            owns_trace = not trace.active
            root_span = trace.begin("pipeline-batch", stages=len(self))
        for index, transformer in enumerate(self.transformers):
            fp = fingerprint(transformer.mapping, self.engine)
            if fp not in cache:
                cache.put(plan_from_tgd(transformer.tgd, self.engine, fp=fp))
            runner = BatchRunner(
                transformer.mapping,
                engine=self.engine,
                workers=workers,
                cache=cache,
                validate=validate,
                error_policy=policy,
                max_retries=max_retries,
                backoff=backoff,
                timeout=timeout,
                retry=retry,
                injector=injectors.get(index) if injectors else None,
                trace=trace,
            )
            stage_span = None
            if trace:
                mapping = transformer.mapping
                stage_span = trace.begin(
                    f"stage[{index}]",
                    source=mapping.source.root.name,
                    target=mapping.target.root.name,
                )
            try:
                batch = runner.run(current)
            except DocumentFailureError as error:
                error.failure.stage = index
                if error.failure.index < len(alive):
                    error.failure.index = alive[error.failure.index]
                raise
            if stage_span is not None:
                trace.end(stage_span)
            # Rewrite stage-local indices to original input indices.
            for failure in batch.failures:
                failure.stage = index
                failure.index = alive[failure.index]
                failures.append(failure)
            for letter in batch.dead_letters:
                dead_letters.append(letter)
            mapping = transformer.mapping
            metrics.stages.append(
                StageMetrics(
                    index=index,
                    source_root=mapping.source.root.name,
                    target_root=mapping.target.root.name,
                    documents=len(current),
                    execute_seconds=batch.metrics.execute_seconds,
                    violations=batch.metrics.validation_violations,
                    failures=batch.metrics.failures,
                    retries=batch.metrics.retries,
                    timeouts=batch.metrics.timeouts,
                    dead_letter=batch.metrics.dead_letter,
                )
            )
            metrics.cache_hits += batch.metrics.cache_hits
            metrics.cache_misses += batch.metrics.cache_misses
            metrics.compile_seconds += batch.metrics.compile_seconds
            metrics.execute_seconds += batch.metrics.execute_seconds
            metrics.validation_violations += batch.metrics.validation_violations
            metrics.wall_seconds += batch.metrics.wall_seconds
            metrics.failures += batch.metrics.failures
            metrics.retries += batch.metrics.retries
            metrics.timeouts += batch.metrics.timeouts
            metrics.dead_letter += batch.metrics.dead_letter
            metrics.pool_rebuilds += batch.metrics.pool_rebuilds
            alive = [alive[local] for local in batch.success_indices]
            current = batch.results
        metrics.documents = len(current)
        metrics.target_elements = sum(doc.size() for doc in current)
        if root_span is not None:
            trace.end(root_span)
            if owns_trace:
                metrics.trace = trace.to_trace().to_dict()
        failures.sort(key=lambda failure: (failure.index, failure.stage))
        dead_letters.sort(key=lambda letter: letter.failure.index)
        return BatchResult(
            current,
            metrics,
            failures=failures,
            dead_letters=dead_letters,
            success_indices=alive,
        )

    def describe(self) -> str:
        """One line per stage: source root → target root."""
        lines = []
        for index, transformer in enumerate(self.transformers):
            mapping = transformer.mapping
            lines.append(
                f"stage {index}: {mapping.source.root.name} → "
                f"{mapping.target.root.name} "
                f"({len(mapping.value_mappings)} value mappings, "
                f"{len(mapping.build_nodes())} build nodes)"
            )
        return "\n".join(lines)
