"""Sequential composition of schema mappings.

Data integration chains mappings: staging → canonical → mart.  The
theory of composing the *logical* mappings is its own research line
(the paper cites Fagin et al.'s second-order tgds [8]); what every
practical tool ships is the operational version — run the
transformations in sequence, checking that each stage's output schema
feeds the next stage's input schema.  :class:`Pipeline` provides that,
with per-stage validation and inspection hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from . import Transformer
from .core.mapping import ClipMapping
from .errors import MappingError, ValidationError
from .xml.model import XmlElement
from .xsd.render import render_schema
from .xsd.validate import validate


@dataclass
class StageResult:
    """One stage's output, kept for inspection."""

    index: int
    instance: XmlElement
    violations: list


class Pipeline:
    """A chain of Clip mappings applied in sequence.

    The stages' schemas must line up: stage *i*'s target schema is
    stage *i+1*'s source schema (compared structurally, since schema
    objects may have been built twice from the same definition).
    """

    def __init__(self, mappings: Sequence[ClipMapping], *, engine: str = "tgd"):
        if not mappings:
            raise MappingError("a pipeline needs at least one mapping")
        self.transformers = [Transformer(m, engine=engine) for m in mappings]
        for index in range(len(mappings) - 1):
            upstream = mappings[index].target
            downstream = mappings[index + 1].source
            if render_schema(upstream) != render_schema(downstream):
                raise MappingError(
                    f"pipeline stage {index} produces schema "
                    f"{upstream.root.name!r} but stage {index + 1} consumes "
                    f"{downstream.root.name!r} (structures differ)"
                )

    def __len__(self) -> int:
        return len(self.transformers)

    def run(
        self,
        instance: XmlElement,
        *,
        validate_stages: bool = False,
        keep_intermediates: bool = False,
    ):
        """Apply all stages.  Returns the final instance, or — with
        ``keep_intermediates=True`` — the list of :class:`StageResult`.

        ``validate_stages=True`` validates each stage's output against
        its target schema and raises :class:`ValidationError` on the
        first violation.
        """
        current = instance
        results: list[StageResult] = []
        for index, transformer in enumerate(self.transformers):
            current = transformer(current)
            violations = (
                validate(current, transformer.mapping.target)
                if validate_stages
                else []
            )
            if validate_stages and violations:
                raise ValidationError(violations)
            if keep_intermediates:
                results.append(StageResult(index, current, violations))
        if keep_intermediates:
            return results
        return current

    def __call__(self, instance: XmlElement) -> XmlElement:
        return self.run(instance)

    def describe(self) -> str:
        """One line per stage: source root → target root."""
        lines = []
        for index, transformer in enumerate(self.transformers):
            mapping = transformer.mapping
            lines.append(
                f"stage {index}: {mapping.source.root.name} → "
                f"{mapping.target.root.name} "
                f"({len(mapping.value_mappings)} value mappings, "
                f"{len(mapping.build_nodes())} build nodes)"
            )
        return "\n".join(lines)
