"""Rendering ``clip-trace`` documents: Chrome trace_event and text.

:func:`to_chrome_trace` converts a trace into the Chrome
``trace_event`` JSON format (the ``{"traceEvents": [...]}`` array of
``ph: "X"`` duration events), loadable in ``chrome://tracing`` /
Perfetto for visual inspection.  Timestamps are re-based to the
earliest span and expressed in microseconds, as the format requires.

:func:`render_tree` renders the span tree as indented text for the
CLI's ``trace`` subcommand — one line per span with kind, duration and
canonical attributes.

Both accept a :class:`~repro.runtime.trace.Trace` or its plain-dict
form (what ``--trace-json`` wrote to disk).
"""

from __future__ import annotations

from typing import Union

from .trace import NONCANONICAL_SUFFIX, Trace

#: Chrome's trace viewer expects microsecond timestamps.
_MICROSECONDS = 1_000_000.0


def _coerce(trace: Union[Trace, dict]) -> Trace:
    if isinstance(trace, Trace):
        return trace
    return Trace.from_dict(trace)


def to_chrome_trace(trace: Union[Trace, dict]) -> dict:
    """Convert to the Chrome ``trace_event`` JSON document."""
    doc = _coerce(trace)
    spans = list(doc.iter_spans())
    base = min((span["t0"] for span in spans), default=0.0)
    events = []
    for span in spans:
        duration = max(span["t1"] - span["t0"], 0.0)
        args = dict(span.get("attrs", {}))
        args["path"] = span["path"]
        args["span_id"] = span["id"]
        events.append({
            "name": span["name"],
            "cat": span.get("kind", "span"),
            "ph": "X",
            "ts": (span["t0"] - base) * _MICROSECONDS,
            "dur": duration * _MICROSECONDS,
            "pid": 0,
            "tid": 0,
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"engine": doc.engine, "seed": doc.seed},
    }


def _format_attrs(attrs: dict, *, canonical_only: bool = True) -> str:
    parts = []
    for key in sorted(attrs):
        if canonical_only and key.endswith(NONCANONICAL_SUFFIX):
            continue
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def render_tree(trace: Union[Trace, dict], *, attrs: bool = True) -> str:
    """Indented one-line-per-span text rendering of a trace."""
    doc = _coerce(trace)
    seed = f"{doc.seed[:12]}…" if len(doc.seed) > 12 else doc.seed
    lines = [f"clip-trace v1 engine={doc.engine or '?'} seed={seed or '?'}"]

    def walk(span: dict, depth: int) -> None:
        duration_ms = max(span["t1"] - span["t0"], 0.0) * 1000.0
        kind = span.get("kind", "span")
        marker = {"error": "✗", "event": "·"}.get(kind, "—")
        line = f"{'  ' * depth}{marker} {span['name']}"
        if kind != "event":
            line += f" {duration_ms:.3f}ms"
        if attrs:
            rendered = _format_attrs(span.get("attrs", {}))
            if rendered:
                line += f"  [{rendered}]"
        lines.append(line)
        for child in span.get("children", []):
            walk(child, depth + 1)

    for root in doc.spans:
        walk(root, 1)
    return "\n".join(lines)
