"""Fault isolation for batch runs: policies, failure records, injection.

The data-exchange literature treats partial failure as the normal
case — individual instances violate target constraints or fail
containment checks without invalidating the run.  This module gives
the batch runtime that contract:

* :class:`ErrorPolicy` — what a per-document failure does to the rest
  of the batch (``fail_fast`` raises, ``skip`` drops, ``collect``
  records and dead-letters);
* :class:`DocumentFailure` — the machine-readable record of one failed
  document: index, pipeline stage, exception class, attempt count,
  transient/timeout triage and a truncated traceback;
* :func:`write_dead_letters` — persist the failed *inputs* (plus a
  manifest of their failure records) for replay;
* :class:`FaultInjector` — a deterministic harness that raises
  scripted errors, injects delays, or kills the hosting worker on
  chosen document indices, used by the fault-tolerance test suite.
"""

from __future__ import annotations

import enum
import json
import os
import time
import traceback as traceback_module
from dataclasses import dataclass
from typing import Callable, Mapping, Union

from .. import errors as errors_module
from ..errors import ExecutionError
from ..xml.model import XmlElement

#: Ceiling on the traceback text carried by a failure record — enough
#: for triage, small enough to ship across the pool and into metrics.
TRACEBACK_LIMIT = 2000


class ErrorPolicy(enum.Enum):
    """What one document's failure does to the rest of the batch.

    * ``FAIL_FAST`` — the pre-fault-tolerance behavior: the first
      failure (after retries) aborts the batch with
      :class:`repro.errors.DocumentFailureError`;
    * ``SKIP`` — failed documents are dropped; successes keep input
      order and failure counts land in the metrics;
    * ``COLLECT`` — like ``skip``, but the failure records and the
      failed *input documents* are kept on the result as the
      dead-letter set, ready for :func:`write_dead_letters`.
    """

    FAIL_FAST = "fail_fast"
    SKIP = "skip"
    COLLECT = "collect"

    @classmethod
    def coerce(cls, value: Union["ErrorPolicy", str]) -> "ErrorPolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            names = ", ".join(policy.value for policy in cls)
            raise ValueError(
                f"unknown error policy {value!r}; use one of: {names}"
            ) from None


@dataclass
class DocumentFailure:
    """One document's terminal failure, as a picklable record.

    Worker processes return these instead of raising, so the parent
    applies retry/policy decisions uniformly whether the failure
    happened in-process or across the pool.
    """

    index: int
    error: str
    message: str
    attempts: int = 1
    stage: int = 0
    transient: bool = False
    timed_out: bool = False
    traceback: str = ""

    @classmethod
    def from_exception(
        cls,
        index: int,
        exc: BaseException,
        *,
        attempts: int = 1,
        stage: int = 0,
    ) -> "DocumentFailure":
        from .retry import is_transient

        text = "".join(
            traceback_module.format_exception(type(exc), exc, exc.__traceback__)
        )
        return cls(
            index=index,
            error=type(exc).__name__,
            message=str(exc),
            attempts=attempts,
            stage=stage,
            transient=is_transient(exc),
            timed_out=isinstance(exc, errors_module.DocumentTimeout),
            traceback=text[-TRACEBACK_LIMIT:],
        )

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "stage": self.stage,
            "error": self.error,
            "message": self.message,
            "attempts": self.attempts,
            "transient": self.transient,
            "timed_out": self.timed_out,
            "traceback": self.traceback,
        }

    def __str__(self) -> str:
        return (
            f"document {self.index} failed at stage {self.stage} after "
            f"{self.attempts} attempt{'s' if self.attempts != 1 else ''}: "
            f"{self.error}: {self.message}"
        )


@dataclass
class DeadLetter:
    """A failed input document paired with its failure record.

    ``document`` is the instance the failing stage consumed — or, for
    an input that never parsed (CLI ``--error-policy skip|collect``),
    its raw text.
    """

    failure: DocumentFailure
    document: Union[XmlElement, str]


def write_dead_letters(
    dead_letters: list, directory: str
) -> list[str]:
    """Persist a run's dead letters for replay.

    Writes each failed input as ``dead-letter-<index>.xml`` (stage-0
    failures hold the original source document; a document that failed
    pipeline stage *k* holds the instance stage *k* consumed) plus a
    ``failures.json`` manifest of the failure records.  Returns the
    written paths.
    """
    from ..xml.serialize import to_xml

    os.makedirs(directory, exist_ok=True)
    paths: list[str] = []
    for letter in dead_letters:
        name = f"dead-letter-{letter.failure.index:05d}.xml"
        path = os.path.join(directory, name)
        document = letter.document
        # A document that never parsed is carried as its raw text.
        text = document if isinstance(document, str) else to_xml(document)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        paths.append(path)
    manifest = os.path.join(directory, "failures.json")
    with open(manifest, "w", encoding="utf-8") as handle:
        json.dump(
            [letter.failure.to_dict() for letter in dead_letters],
            handle,
            indent=2,
        )
    paths.append(manifest)
    return paths


# -- deterministic fault injection ------------------------------------------


@dataclass(frozen=True)
class Fault:
    """One scripted fault, applied to a document index.

    ``attempts`` bounds the *leading* attempts affected: a fault with
    ``attempts=2`` fires on attempt 0 and 1 and lets attempt 2 run
    clean — the shape retry tests need.  ``attempts=-1`` fires forever.

    Kinds:

    * ``"raise"`` — raise ``error`` (a :mod:`repro.errors` class name,
      e.g. ``"ExecutionError"`` or ``"TransientError"``);
    * ``"delay"`` — sleep ``seconds`` before evaluating, to trip the
      per-document timeout;
    * ``"exit"`` — ``os._exit`` the hosting process, simulating a
      crashed pool worker.
    """

    kind: str = "raise"
    error: str = "ExecutionError"
    message: str = "injected fault"
    attempts: int = -1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "delay", "exit"):
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                "use 'raise', 'delay' or 'exit'"
            )

    def applies(self, attempt: int) -> bool:
        return self.attempts < 0 or attempt < self.attempts

    def resolve_error(self) -> type:
        cls = getattr(errors_module, self.error, None)
        if isinstance(cls, type) and issubclass(cls, BaseException):
            return cls
        return ExecutionError


class FaultInjector:
    """Scripted faults on chosen document indices, deterministically.

    The injector is picklable, so the runner ships it to pool workers;
    firing is keyed on ``(document index, attempt number)`` — both
    supplied by the parent — so the same script produces the same
    faults whichever worker draws the document and however runs
    interleave.

    ``wrap(plan)`` adapts the injector to plain per-document callables
    (index = invocation order), which is deterministic for in-process,
    single-threaded use.
    """

    def __init__(self, faults: Mapping[int, Union[Fault, str]]):
        normalized: dict[int, Fault] = {}
        for index, fault in faults.items():
            normalized[int(index)] = (
                fault if isinstance(fault, Fault) else Fault(kind=str(fault))
            )
        self.faults = normalized

    def __repr__(self) -> str:
        return f"FaultInjector({sorted(self.faults)})"

    @property
    def indices(self) -> frozenset:
        """The document indices with scripted faults."""
        return frozenset(self.faults)

    def fire(self, index: int, attempt: int = 0) -> None:
        """Apply the scripted fault for ``(index, attempt)``, if any."""
        fault = self.faults.get(index)
        if fault is None or not fault.applies(attempt):
            return
        if fault.kind == "exit":
            os._exit(17)
        if fault.kind == "delay":
            time.sleep(fault.seconds)
            return
        raise fault.resolve_error()(
            f"{fault.message} (document {index}, attempt {attempt})"
        )

    def wrap(
        self, plan: Callable[[XmlElement], XmlElement]
    ) -> "InjectedPlan":
        """A plan whose Nth call fires the fault scripted for index N."""
        return InjectedPlan(plan, self)


class InjectedPlan:
    """A plan wrapped by a :class:`FaultInjector` (call-order indexed)."""

    def __init__(
        self,
        plan: Callable[[XmlElement], XmlElement],
        injector: FaultInjector,
    ):
        self.plan = plan
        self.injector = injector
        self.calls = 0

    def __call__(self, document: XmlElement) -> XmlElement:
        index = self.calls
        self.calls += 1
        self.injector.fire(index, 0)
        return self.plan(document)
