"""Batch execution: fan a stream of documents across worker processes.

The runtime's contract, in order of importance:

* **plan reuse** — the once-per-mapping work (validity, tgd
  compilation, engine-artifact emission) happens exactly once per
  ``(mapping, engine)`` via the plan cache, however many documents
  run; every document application is one cache retrieval plus one
  evaluation;
* **determinism** — results come back in input order, and
  ``workers=N`` produces byte-for-byte the instances ``workers=1``
  does (the engines are pure functions of plan × document);
* **observability** — every run yields a :class:`BatchMetrics` report
  (documents, cache hits/misses, compile/execute/wall seconds,
  violations) ready for ``--metrics-json``.

``workers=1`` runs in-process (no pickling, no pool, streaming over
any iterator).  ``workers>1`` ships the *compiled tgd* to each worker
once (pool initializer) — workers re-emit only their engine artifact —
and streams documents through ``imap``, which preserves order.  The
``fork`` start method is preferred where available; ``spawn`` works
when the package is importable from the child (``PYTHONPATH=src``).
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from typing import Iterable, Iterator, Optional

from ..core.mapping import ClipMapping
from ..xml.model import XmlElement
from ..xsd.validate import validate as validate_instance
from .cache import PlanCache, default_cache
from .metrics import BatchMetrics
from .plan import ENGINES, fingerprint, plan_from_tgd

# -- worker-process side ----------------------------------------------------

_WORKER_PLAN = None


def _init_worker(tgd_bytes: bytes, engine: str) -> None:
    """Pool initializer: rebuild the engine plan once per worker."""
    global _WORKER_PLAN
    _WORKER_PLAN = plan_from_tgd(pickle.loads(tgd_bytes), engine)


def _run_document(doc: XmlElement) -> tuple[XmlElement, float]:
    """Apply the worker's plan to one document; returns (result, seconds)."""
    started = time.perf_counter()
    result = _WORKER_PLAN(doc)
    return result, time.perf_counter() - started


# -- parent side ------------------------------------------------------------


class BatchResult:
    """The ordered results of a batch run plus its metrics report."""

    __slots__ = ("results", "metrics")

    def __init__(self, results: list[XmlElement], metrics: BatchMetrics):
        self.results = results
        self.metrics = metrics

    def __iter__(self) -> Iterator[XmlElement]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]

    def __repr__(self) -> str:
        return (
            f"BatchResult({len(self.results)} documents, "
            f"engine={self.metrics.engine!r}, workers={self.metrics.workers})"
        )


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class BatchRunner:
    """Apply one mapping to many documents, reusing the compiled plan.

    Parameters
    ----------
    mapping:
        The Clip mapping to apply.
    engine:
        ``"tgd"`` (default), ``"xquery"`` or ``"xslt"``.
    workers:
        Degree of process fan-out; ``1`` (default) runs in-process.
    cache:
        The :class:`PlanCache` to retrieve plans from; defaults to the
        process-wide cache, so runners share compiled plans.
    validate:
        Validate every result against the mapping's target schema and
        count violations into the metrics.
    chunksize:
        Documents per worker dispatch; defaults to a balanced guess.
    """

    def __init__(
        self,
        mapping: ClipMapping,
        *,
        engine: str = "tgd",
        workers: int = 1,
        cache: Optional[PlanCache] = None,
        validate: bool = False,
        chunksize: Optional[int] = None,
    ):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; use one of {ENGINES}")
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ValueError(
                f"workers must be a positive integer, got {workers!r}"
            )
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be positive, got {chunksize!r}")
        self.mapping = mapping
        self.engine = engine
        self.workers = workers
        self.cache = cache if cache is not None else default_cache()
        self.validate = validate
        self.chunksize = chunksize
        # One fingerprint per runner: per-document retrievals are then
        # pure dictionary hits.
        self.fingerprint = fingerprint(mapping, engine)

    # -- execution ---------------------------------------------------------

    def run(self, documents: Iterable[XmlElement]) -> BatchResult:
        """Apply the mapping to every document, in order."""
        wall_started = time.perf_counter()
        stats_before = self.cache.stats
        metrics = BatchMetrics(engine=self.engine, workers=self.workers)
        if self.workers == 1:
            results = self._run_inline(documents, metrics)
        else:
            results = self._run_pool(documents, metrics)
        stats_after = self.cache.stats
        metrics.cache_hits = stats_after.hits - stats_before.hits
        metrics.cache_misses = stats_after.misses - stats_before.misses
        metrics.cache_evictions = stats_after.evictions - stats_before.evictions
        metrics.compile_seconds = (
            stats_after.compile_seconds - stats_before.compile_seconds
        )
        metrics.wall_seconds = time.perf_counter() - wall_started
        return BatchResult(results, metrics)

    def __call__(self, documents: Iterable[XmlElement]) -> BatchResult:
        return self.run(documents)

    def _retrieve_plan(self):
        return self.cache.get_or_compile(
            self.mapping, self.engine, fp=self.fingerprint
        )

    def _account(
        self,
        metrics: BatchMetrics,
        doc: XmlElement,
        result: XmlElement,
        seconds: float,
    ) -> None:
        metrics.documents += 1
        metrics.execute_seconds += seconds
        metrics.source_elements += doc.size()
        metrics.target_elements += result.size()
        if self.validate:
            metrics.validation_violations += len(
                validate_instance(result, self.mapping.target)
            )

    def _run_inline(
        self, documents: Iterable[XmlElement], metrics: BatchMetrics
    ) -> list[XmlElement]:
        results: list[XmlElement] = []
        for doc in documents:
            plan = self._retrieve_plan()
            started = time.perf_counter()
            result = plan(doc)
            self._account(metrics, doc, result, time.perf_counter() - started)
            results.append(result)
        return results

    def _run_pool(
        self, documents: Iterable[XmlElement], metrics: BatchMetrics
    ) -> list[XmlElement]:
        docs = list(documents)
        if not docs:
            return []
        plan = self._retrieve_plan()  # the one compile, if any
        payload = pickle.dumps(plan.tgd)
        chunksize = self.chunksize or max(
            1, len(docs) // (self.workers * 4) or 1
        )

        def dispatch() -> Iterator[XmlElement]:
            # Retrieval accounting matches the inline path: one cache
            # access per document application (the first one above
            # covers the first document).
            for index, doc in enumerate(docs):
                if index:
                    self._retrieve_plan()
                yield doc

        ctx = _pool_context()
        with ctx.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(payload, self.engine),
        ) as pool:
            results: list[XmlElement] = []
            for doc, (result, seconds) in zip(
                docs, pool.imap(_run_document, dispatch(), chunksize)
            ):
                self._account(metrics, doc, result, seconds)
                results.append(result)
        return results
