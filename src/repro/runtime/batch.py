"""Batch execution: fan a stream of documents across worker processes.

The runtime's contract, in order of importance:

* **plan reuse** — the once-per-mapping work (validity, tgd
  compilation, engine-artifact emission) happens exactly once per
  ``(mapping, engine)`` via the plan cache, however many documents
  run; every document application is one cache retrieval plus one
  evaluation;
* **determinism** — results come back in input order, and
  ``workers=N`` produces byte-for-byte the instances ``workers=1``
  does (the engines are pure functions of plan × document);
* **fault isolation** — partial failure is the normal case: one
  malformed document, one engine error, one timed-out evaluation or
  one crashed worker affects only that document (under
  ``error_policy="skip"``/``"collect"``) or aborts with a full
  failure record (``"fail_fast"``).  Transient failures are retried
  on a deterministic backoff schedule; a crashed pool is rebuilt once
  and the in-flight documents replayed — successful results stay
  byte-identical to a fault-free run;
* **observability** — every run yields a :class:`BatchMetrics` report
  (documents, failures, retries, timeouts, dead-letter counts, cache
  hits/misses, compile/execute/wall seconds, violations) ready for
  ``--metrics-json``.

``workers=1`` runs in-process (no pickling, no pool, streaming over
any iterator).  ``workers>1`` ships the *compiled tgd* to each worker
once (pool initializer) — workers re-emit only their engine artifact —
and the parent reassembles results in input order.  The ``fork`` start
method is preferred where available; when only ``spawn`` exists the
runner checks eagerly that a child interpreter could import ``repro``
(``PYTHONPATH=src`` or an installed package) and raises
:class:`repro.errors.WorkerSetupError` naming the fix instead of
letting the pool die with an opaque traceback.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Iterator, Optional, Union

from ..core.mapping import ClipMapping
from ..errors import (
    DocumentFailureError,
    WorkerCrashError,
    WorkerSetupError,
)
from ..xml.model import XmlElement
from ..xsd.validate import validate as validate_instance
from .cache import PlanCache, default_cache
from .faults import DeadLetter, DocumentFailure, ErrorPolicy, FaultInjector
from .metrics import BatchMetrics
from .plan import ENGINES, plan_from_tgd
from .plan import fingerprint as compute_fingerprint
from .retry import RetryPolicy, call_with_timeout
from .trace import event_payload, shift_payload

#: A worker task: (document index, attempt number, document).
Task = tuple

#: A worker record: ("ok", index, attempt, result, seconds) or
#: ("err", index, attempt, DocumentFailure, seconds) — plus, when the
#: run is traced, a sixth element holding the attempt's serialized
#: span payload (see :mod:`repro.runtime.trace`).
Record = tuple


def _apply_plan(
    plan: Callable[[XmlElement], XmlElement],
    doc: XmlElement,
    index: int,
    attempt: int,
    injector: Optional[FaultInjector],
    timeout: Optional[float],
    trace=None,
) -> XmlElement:
    """One attempt at one document: injected faults, timeout, plan."""

    def call() -> XmlElement:
        if injector is not None:
            injector.fire(index, attempt)
        if trace is None:
            return plan(doc)
        return plan.run(doc, trace=trace)

    return call_with_timeout(call, timeout)


def _traced_attempt(
    plan,
    doc: XmlElement,
    index: int,
    attempt: int,
    injector: Optional[FaultInjector],
    timeout: Optional[float],
) -> Record:
    """One traced attempt, in-process or in a worker.

    Builds an ``attempt[k]`` span around the evaluation (an ``error``
    span on failure, carrying the :class:`DocumentFailure` triage) and
    returns the usual record shape with the serialized span payload
    appended — the parent grafts it under the right ``doc[i]`` span,
    so worker counts never change the canonical tree.

    When a per-document ``timeout`` is set the engine-internal spans
    are skipped: an abandoned timeout thread keeps running and could
    race the scratch tracer; the attempt span itself (status, timing,
    timed-out triage) is still recorded.
    """
    from .trace import SpanTracer

    scratch = SpanTracer()
    span = scratch.begin(f"attempt[{attempt}]")
    started = time.perf_counter()
    try:
        result = _apply_plan(
            plan, doc, index, attempt, injector, timeout,
            trace=scratch if timeout is None else None,
        )
    except Exception as exc:
        failure = DocumentFailure.from_exception(
            index, exc, attempts=attempt + 1
        )
        span.kind = "error"
        scratch.end(
            span, status="error", error=failure.error,
            message=failure.message, transient=failure.transient,
            timed_out=failure.timed_out,
        )
        return ("err", index, attempt, failure,
                time.perf_counter() - started, span.to_payload())
    scratch.end(span, status="ok")
    return ("ok", index, attempt, result,
            time.perf_counter() - started, span.to_payload())


# -- worker-process side ----------------------------------------------------

_WORKER_PLAN: Optional[Callable[[XmlElement], XmlElement]] = None
_WORKER_INJECTOR: Optional[FaultInjector] = None
_WORKER_TIMEOUT: Optional[float] = None
_WORKER_TRACE: bool = False


def _init_worker(
    tgd_bytes: bytes,
    engine: str,
    injector_bytes: bytes,
    timeout: Optional[float],
    optimize: bool = True,
    trace: bool = False,
    exec_mode: str = "interp",
    codegen_source: Optional[str] = None,
) -> None:
    """Pool initializer: rebuild the engine plan once per worker.

    For codegen plans the parent ships the generated *source* (a plain
    string, which pickles; code objects don't) and each worker
    re-materializes its closures with one ``compile()``/``exec`` —
    the deterministic-emission contract lets the worker verify the
    cached source against its own plan.
    """
    global _WORKER_PLAN, _WORKER_INJECTOR, _WORKER_TIMEOUT, _WORKER_TRACE
    _WORKER_PLAN = plan_from_tgd(
        pickle.loads(tgd_bytes), engine, optimize=optimize,
        exec_mode=exec_mode, codegen_source=codegen_source,
    )
    _WORKER_INJECTOR = pickle.loads(injector_bytes) if injector_bytes else None
    _WORKER_TIMEOUT = timeout
    _WORKER_TRACE = trace


def _run_task(task: Task) -> Record:
    """Apply the worker's plan to one task; never raises.

    Failures come back as picklable :class:`DocumentFailure` records so
    the parent applies retry and error-policy decisions uniformly for
    the in-process and pool paths.  (A scripted ``exit`` fault bypasses
    this via ``os._exit``, which is the point: it simulates a crash.)
    """
    index, attempt, doc = task
    assert _WORKER_PLAN is not None, "worker initializer did not run"
    if _WORKER_TRACE:
        return _traced_attempt(
            _WORKER_PLAN, doc, index, attempt, _WORKER_INJECTOR, _WORKER_TIMEOUT
        )
    started = time.perf_counter()
    try:
        result = _apply_plan(
            _WORKER_PLAN, doc, index, attempt, _WORKER_INJECTOR, _WORKER_TIMEOUT
        )
    except Exception as exc:
        failure = DocumentFailure.from_exception(
            index, exc, attempts=attempt + 1
        )
        return ("err", index, attempt, failure, time.perf_counter() - started)
    return ("ok", index, attempt, result, time.perf_counter() - started)


# -- parent side ------------------------------------------------------------


class BatchResult:
    """The ordered results of a batch run plus its metrics report.

    ``results`` holds the *successful* outputs in input order;
    ``success_indices`` maps each back to its input position.  Under
    ``error_policy="skip"``/``"collect"``, ``failures`` carries one
    :class:`DocumentFailure` per failed document, and — for
    ``"collect"`` only — ``dead_letters`` pairs each failure with the
    failed input document, ready for
    :func:`repro.runtime.faults.write_dead_letters`.
    """

    __slots__ = ("results", "metrics", "failures", "dead_letters",
                 "success_indices")

    def __init__(
        self,
        results: list[XmlElement],
        metrics: BatchMetrics,
        *,
        failures: Optional[list[DocumentFailure]] = None,
        dead_letters: Optional[list[DeadLetter]] = None,
        success_indices: Optional[list[int]] = None,
    ):
        self.results = results
        self.metrics = metrics
        self.failures = failures if failures is not None else []
        self.dead_letters = dead_letters if dead_letters is not None else []
        self.success_indices = (
            success_indices
            if success_indices is not None
            else list(range(len(results)))
        )

    def __iter__(self) -> Iterator[XmlElement]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]

    def __repr__(self) -> str:
        failed = f", {len(self.failures)} failed" if self.failures else ""
        return (
            f"BatchResult({len(self.results)} documents{failed}, "
            f"engine={self.metrics.engine!r}, workers={self.metrics.workers})"
        )


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _require_importable_for_spawn(ctx) -> None:
    """Fail fast, with the fix, when ``spawn`` children cannot import us.

    A ``spawn`` child is a fresh interpreter: it sees ``PYTHONPATH``
    and the standard site directories, not the parent's ``sys.path``
    mutations.  When :mod:`repro` lives outside both (the usual
    in-repo layout under ``src/``), the pool would die with an opaque
    ``ImportError`` traceback; raise a named error instead.
    """
    if ctx.get_start_method() != "spawn":
        return
    import sysconfig

    package_root = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
    )
    candidates = {
        os.path.abspath(entry)
        for entry in os.environ.get("PYTHONPATH", "").split(os.pathsep)
        if entry
    }
    paths = sysconfig.get_paths()
    for key in ("purelib", "platlib"):
        if key in paths:
            candidates.add(os.path.abspath(paths[key]))
    if package_root not in candidates:
        raise WorkerSetupError(
            "workers>1 uses the 'spawn' start method on this platform, and "
            "spawn children re-import 'repro' in a fresh interpreter — but "
            f"{package_root} is on neither PYTHONPATH nor site-packages, so "
            "the pool would fail with an opaque ImportError. Fix: export "
            f"PYTHONPATH={package_root} (PYTHONPATH=src from the repository "
            "root) or install the package."
        )


def _attach_doc_spans(tracer, span_log: dict) -> None:
    """Build ``doc[i]`` spans from the collected attempt payloads.

    Documents are emitted in input order and attempts in attempt order,
    whatever order the pool completed them in — this, plus the
    payloads being built by the same :func:`_traced_attempt` on both
    paths, is what makes the canonical trace worker-count-independent.
    Each doc span is widened to cover its (re-based) attempts so the
    Chrome rendering nests sensibly.
    """
    for index in sorted(span_log):
        attempts = span_log[index]
        span = tracer.begin(f"doc[{index}]", index=index)
        for attempt in sorted(attempts):
            tracer.attach(attempts[attempt])
        tracer.end(span)
        for child in span.children:
            span.expand(child.t0, child.t1)


class BatchRunner:
    """Apply one mapping to many documents, reusing the compiled plan.

    Parameters
    ----------
    mapping:
        The Clip mapping to apply.
    engine:
        ``"tgd"`` (default), ``"xquery"`` or ``"xslt"``.
    workers:
        Degree of process fan-out; ``1`` (default) runs in-process.
    cache:
        The :class:`PlanCache` to retrieve plans from; defaults to the
        process-wide cache, so runners share compiled plans.
    validate:
        Validate every result against the mapping's target schema and
        count violations into the metrics.
    chunksize:
        Retained for compatibility; the fault-tolerant pool dispatches
        per document (retry and replay need per-document futures), so
        the value is accepted and ignored.
    error_policy:
        ``"fail_fast"`` (default — first terminal failure raises
        :class:`DocumentFailureError`), ``"skip"`` (drop failed
        documents, count them) or ``"collect"`` (keep failure records
        and dead-letter the failed inputs on the result).
    max_retries / backoff / timeout:
        Shorthand for ``retry=RetryPolicy(max_retries=…, backoff=…,
        timeout=…)``: transient failures are re-attempted up to
        ``max_retries`` times on a deterministic exponential backoff;
        ``timeout`` bounds each document's evaluation wall-clock.
    retry:
        A full :class:`RetryPolicy`, overriding the shorthand knobs.
    injector:
        A :class:`FaultInjector` fired on every ``(document index,
        attempt)`` — the deterministic fault-injection harness used by
        the test suite.
    optimize:
        Evaluation strategy for the tgd engine: ``True`` uses the
        join-aware compiled plans of :mod:`repro.executor.planner`,
        ``False`` the naive reference path, ``None`` (default) the
        ``CLIP_OPTIMIZE`` environment default (on).  Both produce
        byte-identical results; the flag participates in the plan
        fingerprint, so both variants coexist in a shared cache.
    exec_mode:
        Execution mode for the optimized tgd plan: ``"interp"`` walks
        the compiled level plans through the interpreter,
        ``"codegen"`` runs the specialized generated-Python program of
        :mod:`repro.executor.codegen`, ``None`` (default) the
        ``CLIP_EXEC_MODE`` environment default (interp).  Byte-identical
        results; the effective mode participates in the plan
        fingerprint.  Pool workers rebuild codegen closures from the
        cached generated source (shipped once in the initializer).
    trace:
        A :class:`repro.runtime.trace.SpanTracer` to record the run
        into: a ``batch`` span containing one ``doc[i]`` span per
        input with ``attempt[k]`` children (error spans on failure,
        dead-letter events under ``collect``) and the engines' own
        execute/plan subtrees.  Pool workers serialize their spans
        across the process boundary and the parent merges them by
        (document, attempt), so the canonical trace is byte-identical
        for any worker count.  ``None`` (default) records nothing and
        costs nothing.
    fingerprint:
        The precomputed plan fingerprint of ``(mapping, engine,
        optimize, exec_mode)``, for callers (the HTTP service) that
        construct a runner per request against an already-registered
        mapping; ``None`` (default) computes it, as before.  Passing a
        fingerprint that does not match the other arguments corrupts
        cache keying — only pass values obtained from
        :func:`repro.runtime.plan.fingerprint` with identical inputs.
    """

    def __init__(
        self,
        mapping: ClipMapping,
        *,
        engine: str = "tgd",
        workers: int = 1,
        cache: Optional[PlanCache] = None,
        validate: bool = False,
        chunksize: Optional[int] = None,
        error_policy: Union[ErrorPolicy, str] = ErrorPolicy.FAIL_FAST,
        max_retries: int = 0,
        backoff: float = 0.05,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        injector: Optional[FaultInjector] = None,
        optimize: Optional[bool] = None,
        exec_mode: Optional[str] = None,
        trace=None,
        fingerprint: Optional[str] = None,
    ):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; use one of {ENGINES}")
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ValueError(
                f"workers must be a positive integer, got {workers!r}"
            )
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be positive, got {chunksize!r}")
        self.mapping = mapping
        self.engine = engine
        self.workers = workers
        self.cache = cache if cache is not None else default_cache()
        self.validate = validate
        self.chunksize = chunksize
        self.error_policy = ErrorPolicy.coerce(error_policy)
        self.retry = retry if retry is not None else RetryPolicy(
            max_retries=max_retries, backoff=backoff, timeout=timeout
        )
        self.injector = injector
        self.trace = trace
        from ..executor.planner import resolve_optimize
        from .plan import resolve_effective_exec_mode

        self.optimize = resolve_optimize(optimize)
        self.exec_mode = resolve_effective_exec_mode(
            engine, self.optimize, exec_mode
        )
        # One fingerprint per runner: per-document retrievals are then
        # pure dictionary hits.  A long-lived caller (the HTTP service)
        # that already fingerprinted the mapping at registration passes
        # it in, keeping per-request runner construction free of the
        # serialize-and-hash cost.
        self.fingerprint = (
            fingerprint
            if fingerprint is not None
            else compute_fingerprint(
                mapping, engine, optimize=self.optimize,
                exec_mode=self.exec_mode,
            )
        )

    # -- execution ---------------------------------------------------------

    def run(self, documents: Iterable[XmlElement]) -> BatchResult:
        """Apply the mapping to every document, in order.

        Returns the successes (input order preserved) plus failure
        records according to the error policy; see
        :class:`BatchResult`.
        """
        wall_started = time.perf_counter()
        stats_before = self.cache.stats
        metrics = BatchMetrics(
            engine=self.engine,
            workers=self.workers,
            error_policy=self.error_policy.value,
        )
        results: dict[int, XmlElement] = {}
        failures: dict[int, DocumentFailure] = {}
        dead_letters: list[DeadLetter] = []
        tracer = self.trace
        batch_span = None
        span_log: Optional[dict] = None
        owns_trace = False
        if tracer:
            from .plan import trace_seed

            if not tracer.seed:
                # The optimize-independent base fingerprint: span ids
                # agree across evaluation strategies by construction.
                tracer.seed = trace_seed(self.mapping, self.engine)
            if not tracer.engine:
                tracer.engine = self.engine
            tracer.meta.setdefault("workers", self.workers)
            owns_trace = not tracer.active
            batch_span = tracer.begin("batch", policy=self.error_policy.value)
            # (document index) → (attempt number) → span payload; built
            # identically by the inline and pool paths, so the merged
            # tree is worker-count-independent.
            span_log = {}
        if self.workers == 1:
            self._run_inline(
                documents, metrics, results, failures, dead_letters, span_log
            )
        else:
            self._run_pool(
                documents, metrics, results, failures, dead_letters, span_log
            )
        stats_after = self.cache.stats
        metrics.cache_hits = stats_after.hits - stats_before.hits
        metrics.cache_misses = stats_after.misses - stats_before.misses
        metrics.cache_evictions = stats_after.evictions - stats_before.evictions
        metrics.compile_seconds = (
            stats_after.compile_seconds - stats_before.compile_seconds
        )
        metrics.wall_seconds = time.perf_counter() - wall_started
        if batch_span is not None:
            _attach_doc_spans(tracer, span_log)
            batch_span.attrs["documents"] = metrics.documents + metrics.failures
            tracer.end(batch_span)
            for child in batch_span.children:
                batch_span.expand(child.t0, child.t1)
            if owns_trace:
                metrics.trace = tracer.to_trace().to_dict()
        success_indices = sorted(results)
        dead_letters.sort(key=lambda letter: letter.failure.index)
        return BatchResult(
            [results[index] for index in success_indices],
            metrics,
            failures=[failures[index] for index in sorted(failures)],
            dead_letters=dead_letters,
            success_indices=success_indices,
        )

    def __call__(self, documents: Iterable[XmlElement]) -> BatchResult:
        return self.run(documents)

    def _retrieve_plan(self):
        return self.cache.get_or_compile(
            self.mapping, self.engine, fp=self.fingerprint,
            optimize=self.optimize, exec_mode=self.exec_mode,
        )

    def _account(
        self,
        metrics: BatchMetrics,
        doc: XmlElement,
        result: XmlElement,
        seconds: float,
    ) -> None:
        metrics.documents += 1
        metrics.execute_seconds += seconds
        metrics.source_elements += doc.size()
        metrics.target_elements += result.size()
        if self.validate:
            metrics.validation_violations += len(
                validate_instance(result, self.mapping.target)
            )

    def _settle_failure(
        self,
        failure: DocumentFailure,
        doc: XmlElement,
        metrics: BatchMetrics,
        failures: dict[int, DocumentFailure],
        dead_letters: list[DeadLetter],
        cause: Optional[BaseException] = None,
    ) -> None:
        """A document is out of attempts: apply the error policy."""
        metrics.failures += 1
        failures[failure.index] = failure
        if self.error_policy is ErrorPolicy.FAIL_FAST:
            error = DocumentFailureError(failure)
            if cause is not None:
                raise error from cause
            raise error
        if self.error_policy is ErrorPolicy.COLLECT:
            dead_letters.append(DeadLetter(failure, doc))
            metrics.dead_letter += 1

    def _run_inline(
        self,
        documents: Iterable[XmlElement],
        metrics: BatchMetrics,
        results: dict[int, XmlElement],
        failures: dict[int, DocumentFailure],
        dead_letters: list[DeadLetter],
        span_log: Optional[dict] = None,
    ) -> None:
        timeout = self.retry.timeout
        first_plan = None
        counters_before = None
        for index, doc in enumerate(documents):
            plan = self._retrieve_plan()
            if first_plan is None:
                first_plan = plan
                stats = plan.tgd_plan.stats if plan.tgd_plan else None
                # The cached plan accumulates counters across runs;
                # snapshot now so the report shows this run's deltas.
                counters_before = stats.snapshot() if stats else None
            attempt = 0
            while True:
                payload = None
                cause: Optional[BaseException] = None
                if span_log is not None:
                    record = _traced_attempt(
                        plan, doc, index, attempt, self.injector, timeout
                    )
                    kind, value, seconds, payload = (
                        record[0], record[3], record[4], record[5]
                    )
                    span_log.setdefault(index, {})[attempt] = payload
                else:
                    started = time.perf_counter()
                    try:
                        value = _apply_plan(
                            plan, doc, index, attempt, self.injector, timeout
                        )
                        kind = "ok"
                    except Exception as exc:
                        kind = "err"
                        cause = exc
                        value = DocumentFailure.from_exception(
                            index, exc, attempts=attempt + 1
                        )
                    seconds = time.perf_counter() - started
                if kind == "ok":
                    self._account(metrics, doc, value, seconds)
                    results[index] = value
                    break
                failure = value
                if failure.timed_out:
                    metrics.timeouts += 1
                if self.retry.should_retry(attempt + 1, failure.transient):
                    metrics.retries += 1
                    if payload is not None:
                        payload["attrs"]["retried"] = True
                    delay = self.retry.delay(attempt + 1)
                    if delay:
                        time.sleep(delay)
                    attempt += 1
                    continue
                if payload is not None:
                    payload["attrs"]["terminal"] = True
                    if self.error_policy is ErrorPolicy.COLLECT:
                        payload["children"].append(
                            event_payload(
                                "dead-letter", at=payload["t1"],
                                error=failure.error,
                            )
                        )
                self._settle_failure(
                    failure, doc, metrics, failures, dead_letters, cause=cause
                )
                break
        if first_plan is not None:
            report = first_plan.plan_report()
            if report is not None:
                stats = (
                    first_plan.tgd_plan.stats if first_plan.tgd_plan else None
                )
                if stats is not None and counters_before is not None:
                    report["counters"] = [
                        c.to_dict() for c in stats.diff(counters_before)
                    ]
                metrics.plan = report

    def _run_pool(
        self,
        documents: Iterable[XmlElement],
        metrics: BatchMetrics,
        results: dict[int, XmlElement],
        failures: dict[int, DocumentFailure],
        dead_letters: list[DeadLetter],
        span_log: Optional[dict] = None,
    ) -> None:
        docs = list(documents)
        if not docs:
            return
        plan = self._retrieve_plan()  # the one compile, if any
        report = plan.plan_report()
        if report is not None:
            # Pool workers keep their runtime counters process-local;
            # the parent reports the static plan shape only.
            report.pop("counters", None)
            metrics.plan = report
        payload = pickle.dumps(plan.tgd)
        injector_bytes = (
            pickle.dumps(self.injector) if self.injector is not None else b""
        )
        # Codegen closures don't pickle (code objects); ship the
        # generated source string and let each worker re-exec it.
        codegen_source = None
        if plan.tgd_plan is not None and plan.tgd_plan.program is not None:
            codegen_source = plan.tgd_plan.program.source
        ctx = _pool_context()
        _require_importable_for_spawn(ctx)

        def make_executor() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(payload, self.engine, injector_bytes,
                          self.retry.timeout, self.optimize,
                          span_log is not None, self.exec_mode,
                          codegen_source),
            )

        # Retrieval accounting matches the inline path: one cache
        # access per document (the retrieval above covers document 0).
        for _ in range(len(docs) - 1):
            self._retrieve_plan()

        to_submit: deque = deque((index, 0) for index in range(len(docs)))
        pending: dict = {}
        executor = make_executor()
        try:
            while to_submit or pending:
                crashed = False
                try:
                    while to_submit:
                        index, attempt = to_submit[0]
                        future = executor.submit(
                            _run_task, (index, attempt, docs[index])
                        )
                        to_submit.popleft()
                        pending[future] = (index, attempt)
                except BrokenProcessPool:
                    crashed = True
                if pending and not crashed:
                    done, _ = wait(
                        set(pending), return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        index, attempt = pending.pop(future)
                        error = future.exception()
                        if isinstance(error, BrokenProcessPool):
                            # This future was in flight when a worker
                            # died; schedule its replay.
                            crashed = True
                            to_submit.appendleft((index, attempt + 1))
                            continue
                        if error is not None:
                            raise error
                        self._handle_record(
                            future.result(), docs, metrics, results,
                            failures, dead_letters, to_submit, span_log,
                        )
                if crashed:
                    metrics.pool_rebuilds += 1
                    if metrics.pool_rebuilds > 1:
                        raise WorkerCrashError(
                            "worker pool crashed twice; giving up "
                            f"({len(results)} of {len(docs)} documents "
                            "completed)"
                        )
                    # Rebuild once and replay every in-flight document;
                    # completed results are untouched, so successful
                    # outputs stay identical to a crash-free run.
                    for future, (index, attempt) in pending.items():
                        to_submit.append((index, attempt + 1))
                    pending.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = make_executor()
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    def _handle_record(
        self,
        record: Record,
        docs: list[XmlElement],
        metrics: BatchMetrics,
        results: dict[int, XmlElement],
        failures: dict[int, DocumentFailure],
        dead_letters: list[DeadLetter],
        to_submit: deque,
        span_log: Optional[dict] = None,
    ) -> None:
        kind, index, attempt, value, seconds = record[:5]
        payload = record[5] if len(record) > 5 else None
        if payload is not None and span_log is not None:
            # Re-base the worker's clock so the subtree ends when the
            # record arrived (durations preserved; canonical output
            # ignores timestamps either way), then keep the *first*
            # payload per (document, attempt) — crash replays can
            # duplicate one, and first-wins matches the result dedup.
            shift_payload(payload, time.perf_counter() - payload["t1"])
            attempts = span_log.setdefault(index, {})
            if attempt in attempts:
                payload = attempts[attempt]
            else:
                attempts[attempt] = payload
        if kind == "ok":
            # A crash replay can duplicate a completed document (the
            # pure engines make re-evaluation idempotent); keep the
            # first result.
            if index not in results:
                results[index] = value
                self._account(metrics, docs[index], value, seconds)
            return
        failure = value
        failure.attempts = attempt + 1
        if failure.timed_out:
            metrics.timeouts += 1
        if self.retry.should_retry(attempt + 1, failure.transient):
            metrics.retries += 1
            if payload is not None:
                payload["attrs"]["retried"] = True
            delay = self.retry.delay(attempt + 1)
            if delay:
                time.sleep(delay)
            to_submit.append((index, attempt + 1))
            return
        if payload is not None:
            payload["attrs"]["terminal"] = True
            if self.error_policy is ErrorPolicy.COLLECT:
                payload["children"].append(
                    event_payload(
                        "dead-letter", at=payload["t1"],
                        error=failure.error,
                    )
                )
        self._settle_failure(
            failure, docs[index], metrics, failures, dead_letters
        )
