"""Compiled execution plans: compile a mapping once, run it many times.

Section VI's point is that a Clip mapping is *compiled* — the nested
tgd, the emitted XQuery, the generated XSLT are all artifacts of the
mapping alone — and then applied to arbitrarily many instance
documents.  :class:`CompiledPlan` reifies that split: everything that
depends only on ``(mapping, engine)`` happens in :func:`compile_plan`
(validity check, tgd compilation, engine-artifact emission, evaluation
ordering), and applying the plan to a document touches none of it.

:func:`fingerprint` gives plans a stable identity: the SHA-256 of the
mapping's persistent JSON document (schemas as XSD text plus the drawn
lines, see :mod:`repro.io`) combined with the engine name.  Two
structurally equal mappings — the same drawing, loaded twice —
fingerprint identically; any structural edit changes the digest.  The
plan cache (:mod:`repro.runtime.cache`) keys on exactly this.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Optional

from ..core.compile import compile_clip
from ..core.mapping import ClipMapping
from ..core.tgd import NestedTgd
from ..core.validity import ValidityReport, check
from ..executor.engine import prepare
from ..io import dumps as _dump_mapping
from ..xml.model import XmlElement

#: The engines a plan can target, in cross-check order.
ENGINES = ("tgd", "xquery", "xslt")


def fingerprint(mapping: ClipMapping, engine: str = "tgd") -> str:
    """A stable content fingerprint of ``(mapping, engine)``.

    Structural: computed from the mapping's persistent JSON document,
    so distinct in-memory objects describing the same drawing share a
    fingerprint, and any edit (a new value mapping, a changed
    condition, a different schema) produces a new one.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; use one of {ENGINES}")
    payload = f"{engine}\n{_dump_mapping(mapping)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CompiledPlan:
    """One mapping, compiled for one engine, ready for repeated use.

    Calling the plan transforms a source instance.  The plan carries
    the compiled tgd (so it can be shipped to worker processes, which
    rebuild only the engine artifact) and the seconds spent compiling
    (so batch metrics can report compile vs. execute time).
    """

    __slots__ = (
        "engine",
        "fingerprint",
        "report",
        "tgd",
        "compile_seconds",
        "_runner",
    )

    def __init__(
        self,
        engine: str,
        fp: str,
        tgd: NestedTgd,
        runner: Callable[[XmlElement], XmlElement],
        *,
        report: Optional[ValidityReport] = None,
        compile_seconds: float = 0.0,
    ):
        self.engine = engine
        self.fingerprint = fp
        self.report = report
        self.tgd = tgd
        self.compile_seconds = compile_seconds
        self._runner = runner

    def __call__(self, source_instance: XmlElement) -> XmlElement:
        return self._runner(source_instance)

    def run(self, source_instance: XmlElement) -> XmlElement:
        """Apply the plan to one source instance."""
        return self._runner(source_instance)

    def __repr__(self) -> str:
        return (
            f"CompiledPlan(engine={self.engine!r}, "
            f"fingerprint={self.fingerprint[:12]}…)"
        )


def _engine_runner(
    tgd: NestedTgd, engine: str
) -> Callable[[XmlElement], XmlElement]:
    """Build the per-document evaluation closure for one engine."""
    if engine == "tgd":
        return prepare(tgd).run
    if engine == "xquery":
        from ..xquery.emit import emit_xquery
        from ..xquery.interp import run_query

        query = emit_xquery(tgd)
        return lambda doc: run_query(query, doc)
    if engine == "xslt":
        from ..xslt import apply_stylesheet, emit_xslt

        sheet = emit_xslt(tgd)
        return lambda doc: apply_stylesheet(sheet, doc)
    raise ValueError(f"unknown engine {engine!r}; use one of {ENGINES}")


def plan_from_tgd(
    tgd: NestedTgd, engine: str = "tgd", *, fp: str = ""
) -> CompiledPlan:
    """Rebuild a plan from an already-compiled tgd.

    Worker processes use this: the parent ships them the (picklable)
    tgd, and each worker re-emits only its engine artifact — the Clip
    compilation and validity check never run twice anywhere.
    """
    started = time.perf_counter()
    runner = _engine_runner(tgd, engine)
    return CompiledPlan(
        engine, fp, tgd, runner,
        compile_seconds=time.perf_counter() - started,
    )


def compile_plan(
    mapping: ClipMapping,
    engine: str = "tgd",
    *,
    require_valid: bool = True,
    fp: Optional[str] = None,
) -> CompiledPlan:
    """Compile a mapping into a reusable plan for one engine.

    Performs the full once-per-mapping work: Section III validity
    check, tgd compilation, engine-artifact emission.  ``fp`` lets
    callers that already computed the fingerprint (the cache) skip
    recomputing it.
    """
    if fp is None:
        fp = fingerprint(mapping, engine)
    started = time.perf_counter()
    report = check(mapping)
    tgd = compile_clip(mapping, require_valid=require_valid, report=report)
    runner = _engine_runner(tgd, engine)
    return CompiledPlan(
        engine, fp, tgd, runner,
        report=report,
        compile_seconds=time.perf_counter() - started,
    )
