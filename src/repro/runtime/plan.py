"""Compiled execution plans: compile a mapping once, run it many times.

Section VI's point is that a Clip mapping is *compiled* — the nested
tgd, the emitted XQuery, the generated XSLT are all artifacts of the
mapping alone — and then applied to arbitrarily many instance
documents.  :class:`CompiledPlan` reifies that split: everything that
depends only on ``(mapping, engine)`` happens in :func:`compile_plan`
(validity check, tgd compilation, engine-artifact emission, evaluation
ordering), and applying the plan to a document touches none of it.

:func:`fingerprint` gives plans a stable identity: the SHA-256 of the
mapping's persistent JSON document (schemas as XSD text plus the drawn
lines, see :mod:`repro.io`) combined with the engine name.  Two
structurally equal mappings — the same drawing, loaded twice —
fingerprint identically; any structural edit changes the digest.  The
plan cache (:mod:`repro.runtime.cache`) keys on exactly this.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Optional

from ..core.compile import compile_clip
from ..core.mapping import ClipMapping
from ..core.tgd import NestedTgd
from ..core.validity import ValidityReport, check
from ..executor.codegen import resolve_exec_mode
from ..executor.engine import TgdPlan, prepare
from ..executor.planner import resolve_optimize
from ..io import dumps as _dump_mapping
from ..xml.model import XmlElement

#: The engines a plan can target, in cross-check order.
ENGINES = ("tgd", "xquery", "xslt")


def resolve_effective_exec_mode(
    engine: str,
    optimize: Optional[bool] = None,
    exec_mode: Optional[str] = None,
) -> str:
    """The exec mode that will actually run: codegen specializes the
    optimized tgd plan only, so the naive reference path and the
    plannerless engines (xquery/xslt) always resolve to ``interp``."""
    resolved = resolve_exec_mode(exec_mode)
    if engine != "tgd" or not resolve_optimize(optimize):
        return "interp"
    return resolved


def fingerprint(
    mapping: ClipMapping,
    engine: str = "tgd",
    *,
    optimize: Optional[bool] = None,
    exec_mode: Optional[str] = None,
) -> str:
    """A stable content fingerprint of ``(mapping, engine, optimize,
    exec_mode)``.

    Structural: computed from the mapping's persistent JSON document,
    so distinct in-memory objects describing the same drawing share a
    fingerprint, and any edit (a new value mapping, a changed
    condition, a different schema) produces a new one.

    The (resolved) ``optimize`` flag and execution mode participate so
    that a shared plan cache never serves an optimized plan to a
    caller that asked for the naive reference path, or a codegen plan
    to an interpreted caller, or vice versa.  The default
    (optimized, interpreted) case keeps the historical payload, so
    fingerprints recorded before the planner or the codegen backend
    existed still match.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; use one of {ENGINES}")
    marker = "" if resolve_optimize(optimize) else ":no-optimize"
    if resolve_effective_exec_mode(engine, optimize, exec_mode) == "codegen":
        marker += ":codegen"
    payload = f"{engine}{marker}\n{_dump_mapping(mapping)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def canonical_fingerprint(
    mapping: ClipMapping,
    engine: str = "tgd",
    *,
    optimize: Optional[bool] = None,
    exec_mode: Optional[str] = None,
) -> str:
    """A *semantic* plan fingerprint: alpha-renamed-equivalent mappings
    share it.

    Hashes the canonical normal form of the compiled tgd
    (:func:`repro.algebra.canonical_render`) instead of the persistent
    JSON document, so two drawings that differ only in bound variable
    names or ``where``-conjunct order key the same cache slot.  The
    engine / optimize / exec-mode markers participate exactly as in
    :func:`fingerprint`, plus a ``|canonical`` tag so canonical and
    structural keys can never collide.

    Used by :class:`repro.runtime.cache.PlanCache` when canonicalization
    is enabled (``CLIP_CACHE_CANONICALIZE``).
    """
    from ..algebra.normalize import canonical_render

    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; use one of {ENGINES}")
    marker = "" if resolve_optimize(optimize) else ":no-optimize"
    if resolve_effective_exec_mode(engine, optimize, exec_mode) == "codegen":
        marker += ":codegen"
    tgd = mapping if isinstance(mapping, NestedTgd) else compile_clip(mapping)
    payload = f"{engine}{marker}|canonical\n{canonical_render(tgd)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def eligible_engines(tgd: NestedTgd) -> tuple[str, ...]:
    """The engines able to execute an already-compiled tgd.

    The tgd executor and the XQuery pipeline cover the full language;
    XSLT 1.0 covers the non-grouped, non-distributed subset only.  The
    probe is the XSLT emitter itself — emission is cheap, pure, and
    exactly the authority on its own limits — so eligibility can never
    drift from what :func:`repro.xslt.emit_xslt` actually accepts.
    The fuzz farm uses this to decide which engines to cross-check per
    corpus case.
    """
    from ..xslt import UnsupportedForXslt, emit_xslt

    try:
        emit_xslt(tgd)
    except UnsupportedForXslt:
        return ("tgd", "xquery")
    return ("tgd", "xquery", "xslt")


def trace_seed(mapping: ClipMapping, engine: str = "tgd") -> str:
    """The trace-id namespace for ``(mapping, engine)``.

    Deliberately the *base* fingerprint (the optimized interpreted
    payload, optimize- and exec-mode-independent): span ids must agree
    between ``optimize=True``/``optimize=False`` and
    ``interp``/``codegen`` runs of the same mapping, so their traces
    differ only in the ``plan`` subtree's content — the determinism
    contract ``docs/FORMATS.md`` §7 specifies and the property suite
    enforces.
    """
    return fingerprint(mapping, engine, optimize=True, exec_mode="interp")


class CompiledPlan:
    """One mapping, compiled for one engine, ready for repeated use.

    Calling the plan transforms a source instance.  The plan carries
    the compiled tgd (so it can be shipped to worker processes, which
    rebuild only the engine artifact) and the seconds spent compiling
    (so batch metrics can report compile vs. execute time).
    """

    __slots__ = (
        "engine",
        "fingerprint",
        "report",
        "tgd",
        "optimize",
        "exec_mode",
        "tgd_plan",
        "compile_seconds",
        "_runner",
    )

    def __init__(
        self,
        engine: str,
        fp: str,
        tgd: NestedTgd,
        runner: Callable[[XmlElement], XmlElement],
        *,
        report: Optional[ValidityReport] = None,
        compile_seconds: float = 0.0,
        optimize: bool = True,
        exec_mode: str = "interp",
        tgd_plan: Optional[TgdPlan] = None,
    ):
        self.engine = engine
        self.fingerprint = fp
        self.report = report
        self.tgd = tgd
        self.compile_seconds = compile_seconds
        self.optimize = optimize
        #: The effective execution mode ("interp" or "codegen").
        self.exec_mode = exec_mode
        #: The underlying :class:`TgdPlan` (tgd engine only): carries
        #: the compiled level plans and the accumulated plan counters
        #: that batch metrics report.
        self.tgd_plan = tgd_plan
        self._runner = runner

    def plan_report(self) -> Optional[dict]:
        """The compiled-plan description plus accumulated counters, or
        ``None`` when the engine has no planner (xquery/xslt)."""
        if self.tgd_plan is None or self.tgd_plan.planned is None:
            if self.engine == "tgd":
                return {"optimize": False, "exec_mode": "interp"}
            return None
        stats = self.tgd_plan.stats
        payload = {
            "optimize": True,
            "exec_mode": self.tgd_plan.exec_mode,
            "levels": [p.describe() for p in self.tgd_plan.planned.levels],
            "counters": [c.to_dict() for c in stats.counters] if stats else [],
        }
        if self.tgd_plan.program is not None:
            payload["codegen"] = self.tgd_plan.program.describe()
        return payload

    def __call__(self, source_instance: XmlElement) -> XmlElement:
        return self._runner(source_instance)

    def run(self, source_instance: XmlElement, *, trace=None) -> XmlElement:
        """Apply the plan to one source instance.

        ``trace`` (a :class:`repro.runtime.trace.SpanTracer`) records
        the engine's execution spans; ``None`` (default) runs the
        untraced closure unchanged.
        """
        if trace is None:
            return self._runner(source_instance)
        return self._runner(source_instance, trace=trace)

    def __repr__(self) -> str:
        return (
            f"CompiledPlan(engine={self.engine!r}, "
            f"fingerprint={self.fingerprint[:12]}…)"
        )


def _engine_runner(
    tgd: NestedTgd,
    engine: str,
    optimize: bool,
    exec_mode: str = "interp",
    codegen_source: Optional[str] = None,
) -> tuple[Callable[[XmlElement], XmlElement], Optional[TgdPlan]]:
    """Build the per-document evaluation closure for one engine.

    Returns the closure plus, for the tgd engine, the underlying
    :class:`TgdPlan` (so plan statistics stay reachable).  The tgd and
    XQuery evaluators both navigate through the shared per-document
    index of :func:`repro.xml.index.index_for`, built lazily on first
    use and reused across every mapping applied to the same document.

    Every closure accepts an optional ``trace`` keyword: the tgd
    engine records execute/plan spans, the XQuery interpreter eval
    spans; XSLT has no internal instrumentation, so its closure accepts
    and ignores the tracer (the batch layer's attempt spans still
    cover it).
    """
    if engine == "tgd":
        tgd_plan = prepare(
            tgd, optimize=optimize, exec_mode=exec_mode,
            codegen_source=codegen_source,
        )
        return tgd_plan.run, tgd_plan
    if engine == "xquery":
        from ..xquery.emit import emit_xquery
        from ..xquery.interp import run_query

        query = emit_xquery(tgd)
        return (lambda doc, trace=None: run_query(query, doc, trace=trace)), None
    if engine == "xslt":
        from ..xslt import apply_stylesheet, emit_xslt

        sheet = emit_xslt(tgd)
        return (lambda doc, trace=None: apply_stylesheet(sheet, doc)), None
    raise ValueError(f"unknown engine {engine!r}; use one of {ENGINES}")


def plan_from_tgd(
    tgd: NestedTgd,
    engine: str = "tgd",
    *,
    fp: str = "",
    optimize: Optional[bool] = None,
    exec_mode: Optional[str] = None,
    codegen_source: Optional[str] = None,
) -> CompiledPlan:
    """Rebuild a plan from an already-compiled tgd.

    Worker processes use this: the parent ships them the (picklable)
    tgd — plus, for codegen plans, the cached generated source string
    (source pickles; code objects don't) — and each worker re-emits
    only its engine artifact.  The Clip compilation and validity check
    never run twice anywhere.
    """
    resolved = resolve_optimize(optimize)
    mode = resolve_effective_exec_mode(engine, resolved, exec_mode)
    started = time.perf_counter()
    runner, tgd_plan = _engine_runner(
        tgd, engine, resolved, mode, codegen_source
    )
    return CompiledPlan(
        engine, fp, tgd, runner,
        compile_seconds=time.perf_counter() - started,
        optimize=resolved,
        exec_mode=mode,
        tgd_plan=tgd_plan,
    )


def compile_plan(
    mapping: ClipMapping,
    engine: str = "tgd",
    *,
    require_valid: bool = True,
    fp: Optional[str] = None,
    optimize: Optional[bool] = None,
    exec_mode: Optional[str] = None,
) -> CompiledPlan:
    """Compile a mapping into a reusable plan for one engine.

    Performs the full once-per-mapping work: Section III validity
    check, tgd compilation, engine-artifact emission, and (for the tgd
    engine, unless ``optimize`` resolves off) the join-aware level
    plans of :mod:`repro.executor.planner` — plus, when ``exec_mode``
    resolves to ``codegen``, the specialized generated-Python program.
    ``fp`` lets callers that already computed the fingerprint (the
    cache) skip recomputing it.
    """
    resolved = resolve_optimize(optimize)
    mode = resolve_effective_exec_mode(engine, resolved, exec_mode)
    if fp is None:
        fp = fingerprint(mapping, engine, optimize=resolved, exec_mode=exec_mode)
    started = time.perf_counter()
    report = check(mapping)
    tgd = compile_clip(mapping, require_valid=require_valid, report=report)
    runner, tgd_plan = _engine_runner(tgd, engine, resolved, mode)
    return CompiledPlan(
        engine, fp, tgd, runner,
        report=report,
        compile_seconds=time.perf_counter() - started,
        optimize=resolved,
        exec_mode=mode,
        tgd_plan=tgd_plan,
    )
