"""Machine-readable run metrics for batch and pipeline execution.

Every batch run produces one :class:`BatchMetrics` report: document
counts, plan-cache hits/misses, compile vs. execute vs. wall seconds,
element counts, validation-violation counts, fault accounting and (for
pipelines) a per-stage breakdown.  ``to_dict()`` yields a stable,
version-tagged document — the contract the CLI's ``--metrics-json``
writes and CI consumes::

    {
      "format": "clip-batch-metrics",
      "version": 2,
      "engine": "tgd",
      "workers": 4,
      "error_policy": "collect",
      "documents": 90,
      "failures": 10,
      "retries": 3,
      "timeouts": 1,
      "dead_letter": 10,
      "pool_rebuilds": 0,
      "plan_cache": {"hits": 99, "misses": 1, "evictions": 0,
                     "compile_seconds": 0.0004},
      "timings": {"compile_seconds": 0.0004,
                  "execute_seconds": 0.0310,
                  "wall_seconds": 0.0330},
      "source_elements": 12000,
      "target_elements": 4200,
      "validation_violations": 0,
      "stages": [ {"index": 0, "source_root": "source",
                   "target_root": "target", "documents": 100,
                   "execute_seconds": 0.0310, "violations": 0,
                   "failures": 0, "retries": 0, "timeouts": 0,
                   "dead_letter": 0}, … ]
    }

``stages`` is present only for pipeline runs.  ``documents`` counts
*successful* documents; ``documents + failures`` is the input size.

Version history: version 1 lacked ``error_policy`` and the fault
counters (``failures``/``retries``/``timeouts``/``dead_letter``/
``pool_rebuilds``, per run and per stage).  :func:`BatchMetrics.from_dict`
parses both versions — absent fault counters read as zero.

Version 2 documents may additionally carry an optional ``plan`` key —
the compiled tgd plan's description and per-level runtime counters
(see :mod:`repro.executor.planner`).  The key is additive: documents
without it parse unchanged, so the version stays 2.

Likewise additive is the optional ``trace`` key: a full ``clip-trace``
document (:mod:`repro.runtime.trace`) embedded when the run was traced
(``BatchRunner(trace=…)`` / ``--trace-json``).  Versioning of the
embedded document is the trace format's own; the metrics version stays
2 either way.

A third additive key, ``incremental``, carries the
:class:`~repro.runtime.incremental.IncrementalReport` of a
delta-scoped run (``clip run --incremental`` or the service's
``/transform/delta``): mode, fallback reason, delta/unit accounting.
Documents without it parse unchanged; the version stays 2.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

METRICS_FORMAT = "clip-batch-metrics"
METRICS_VERSION = 2

#: Versions :func:`BatchMetrics.from_dict` accepts.
PARSEABLE_VERSIONS = (1, 2)


@dataclass
class StageMetrics:
    """Counters for one pipeline stage across a batch."""

    index: int
    source_root: str
    target_root: str
    documents: int = 0
    execute_seconds: float = 0.0
    violations: int = 0
    failures: int = 0
    retries: int = 0
    timeouts: int = 0
    dead_letter: int = 0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "source_root": self.source_root,
            "target_root": self.target_root,
            "documents": self.documents,
            "execute_seconds": self.execute_seconds,
            "violations": self.violations,
            "failures": self.failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "dead_letter": self.dead_letter,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "StageMetrics":
        return cls(
            index=doc["index"],
            source_root=doc["source_root"],
            target_root=doc["target_root"],
            documents=doc.get("documents", 0),
            execute_seconds=doc.get("execute_seconds", 0.0),
            violations=doc.get("violations", 0),
            failures=doc.get("failures", 0),
            retries=doc.get("retries", 0),
            timeouts=doc.get("timeouts", 0),
            dead_letter=doc.get("dead_letter", 0),
        )


@dataclass
class BatchMetrics:
    """The aggregate report of one batch (or pipeline-batch) run."""

    engine: str
    workers: int
    error_policy: str = "fail_fast"
    documents: int = 0
    failures: int = 0
    retries: int = 0
    timeouts: int = 0
    dead_letter: int = 0
    pool_rebuilds: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    wall_seconds: float = 0.0
    source_elements: int = 0
    target_elements: int = 0
    validation_violations: int = 0
    stages: list[StageMetrics] = field(default_factory=list)
    #: Optional compiled-plan report: ``{"optimize": bool, "levels":
    #: [...], "counters": [...]}`` (tgd engine; counters for inline
    #: runs only — pool workers keep their counters process-local).
    plan: Optional[dict] = None
    #: Optional embedded ``clip-trace`` document (see
    #: :mod:`repro.runtime.trace`): present when the run was traced
    #: and this runner owned the tracer.  Additive, like ``plan``.
    trace: Optional[dict] = None
    #: Optional delta-scoped execution report (see
    #: :mod:`repro.runtime.incremental`): ``IncrementalReport.to_dict()``
    #: of an incremental run.  Additive, like ``plan`` and ``trace``.
    incremental: Optional[dict] = None

    def to_dict(self) -> dict:
        doc = {
            "format": METRICS_FORMAT,
            "version": METRICS_VERSION,
            "engine": self.engine,
            "workers": self.workers,
            "error_policy": self.error_policy,
            "documents": self.documents,
            "failures": self.failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "dead_letter": self.dead_letter,
            "pool_rebuilds": self.pool_rebuilds,
            "plan_cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "compile_seconds": self.compile_seconds,
            },
            "timings": {
                "compile_seconds": self.compile_seconds,
                "execute_seconds": self.execute_seconds,
                "wall_seconds": self.wall_seconds,
            },
            "source_elements": self.source_elements,
            "target_elements": self.target_elements,
            "validation_violations": self.validation_violations,
        }
        if self.stages:
            doc["stages"] = [stage.to_dict() for stage in self.stages]
        if self.plan is not None:
            doc["plan"] = self.plan
        if self.trace is not None:
            doc["trace"] = self.trace
        if self.incremental is not None:
            doc["incremental"] = self.incremental
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "BatchMetrics":
        """Parse a metrics document of any supported version.

        Version-1 documents (no fault accounting) read back with zero
        failures/retries/timeouts and ``error_policy="fail_fast"`` —
        exactly what their all-or-nothing runs meant.
        """
        if doc.get("format") != METRICS_FORMAT:
            raise ValueError(
                f"not a {METRICS_FORMAT} document: "
                f"format={doc.get('format')!r}"
            )
        version = doc.get("version")
        if version not in PARSEABLE_VERSIONS:
            raise ValueError(
                f"unsupported {METRICS_FORMAT} version {version!r}; "
                f"supported: {PARSEABLE_VERSIONS}"
            )
        plan_cache = doc.get("plan_cache", {})
        timings = doc.get("timings", {})
        return cls(
            engine=doc["engine"],
            workers=doc["workers"],
            error_policy=doc.get("error_policy", "fail_fast"),
            documents=doc.get("documents", 0),
            failures=doc.get("failures", 0),
            retries=doc.get("retries", 0),
            timeouts=doc.get("timeouts", 0),
            dead_letter=doc.get("dead_letter", 0),
            pool_rebuilds=doc.get("pool_rebuilds", 0),
            cache_hits=plan_cache.get("hits", 0),
            cache_misses=plan_cache.get("misses", 0),
            cache_evictions=plan_cache.get("evictions", 0),
            compile_seconds=timings.get("compile_seconds", 0.0),
            execute_seconds=timings.get("execute_seconds", 0.0),
            wall_seconds=timings.get("wall_seconds", 0.0),
            source_elements=doc.get("source_elements", 0),
            target_elements=doc.get("target_elements", 0),
            validation_violations=doc.get("validation_violations", 0),
            stages=[
                StageMetrics.from_dict(stage)
                for stage in doc.get("stages", [])
            ],
            plan=doc.get("plan"),
            trace=doc.get("trace"),
            incremental=doc.get("incremental"),
        )

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "BatchMetrics":
        return cls.from_dict(json.loads(text))
