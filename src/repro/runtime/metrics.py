"""Machine-readable run metrics for batch and pipeline execution.

Every batch run produces one :class:`BatchMetrics` report: document
counts, plan-cache hits/misses, compile vs. execute vs. wall seconds,
element counts, validation-violation counts, and (for pipelines) a
per-stage breakdown.  ``to_dict()`` yields a stable, version-tagged
document — the contract the CLI's ``--metrics-json`` writes and CI
consumes::

    {
      "format": "clip-batch-metrics",
      "version": 1,
      "engine": "tgd",
      "workers": 4,
      "documents": 100,
      "plan_cache": {"hits": 99, "misses": 1, "evictions": 0,
                     "compile_seconds": 0.0004},
      "timings": {"compile_seconds": 0.0004,
                  "execute_seconds": 0.0310,
                  "wall_seconds": 0.0330},
      "source_elements": 12000,
      "target_elements": 4200,
      "validation_violations": 0,
      "stages": [ {"index": 0, "source_root": "source",
                   "target_root": "target", "documents": 100,
                   "execute_seconds": 0.0310, "violations": 0}, … ]
    }

``stages`` is present only for pipeline runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

METRICS_FORMAT = "clip-batch-metrics"
METRICS_VERSION = 1


@dataclass
class StageMetrics:
    """Counters for one pipeline stage across a batch."""

    index: int
    source_root: str
    target_root: str
    documents: int = 0
    execute_seconds: float = 0.0
    violations: int = 0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "source_root": self.source_root,
            "target_root": self.target_root,
            "documents": self.documents,
            "execute_seconds": self.execute_seconds,
            "violations": self.violations,
        }


@dataclass
class BatchMetrics:
    """The aggregate report of one batch (or pipeline-batch) run."""

    engine: str
    workers: int
    documents: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    wall_seconds: float = 0.0
    source_elements: int = 0
    target_elements: int = 0
    validation_violations: int = 0
    stages: list[StageMetrics] = field(default_factory=list)

    def to_dict(self) -> dict:
        doc = {
            "format": METRICS_FORMAT,
            "version": METRICS_VERSION,
            "engine": self.engine,
            "workers": self.workers,
            "documents": self.documents,
            "plan_cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "compile_seconds": self.compile_seconds,
            },
            "timings": {
                "compile_seconds": self.compile_seconds,
                "execute_seconds": self.execute_seconds,
                "wall_seconds": self.wall_seconds,
            },
            "source_elements": self.source_elements,
            "target_elements": self.target_elements,
            "validation_violations": self.validation_violations,
        }
        if self.stages:
            doc["stages"] = [stage.to_dict() for stage in self.stages]
        return doc

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
