"""Retry policy for per-document execution: backoff, timeout, triage.

A batch over real traffic sees three kinds of per-document failure:

* **transient** — worth re-attempting: resource pressure, I/O hiccups,
  a timeout, anything raising :class:`repro.errors.TransientError`;
* **permanent** — deterministic: a :class:`CompileError`, an
  :class:`ExecutionError` from the engine, malformed instance data.
  Retrying a pure function on the same input reproduces the failure,
  so these go straight to the error policy (dead-letter or raise);
* **worker loss** — the process evaluating the document died; handled
  by the pool rebuild in :mod:`repro.runtime.batch`, not here.

:class:`RetryPolicy` bundles the knobs: attempt budget, a
*deterministic* exponential backoff schedule (no jitter — reruns of a
batch must behave identically), and the per-document wall-clock
timeout that :func:`call_with_timeout` enforces.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..errors import DocumentTimeout, TransientError

#: Exception types the policy considers worth retrying.  Built on the
#: :mod:`repro.errors` hierarchy: :class:`TransientError` covers the
#: package's own retryable failures (including timeouts); ``OSError``
#: and ``TimeoutError`` cover the environment's.
TRANSIENT_TYPES: tuple = (TransientError, OSError, TimeoutError)


def is_transient(error: BaseException) -> bool:
    """Whether an error is worth re-attempting (see TRANSIENT_TYPES)."""
    return isinstance(error, TRANSIENT_TYPES)


@dataclass(frozen=True)
class RetryPolicy:
    """How failing documents are re-attempted.

    Parameters
    ----------
    max_retries:
        Extra attempts after the first (``0`` disables retries).
    backoff:
        Seconds before the first retry; each further retry multiplies
        by ``backoff_factor`` up to ``max_backoff``.  The schedule is
        deterministic — no jitter — so a rerun sleeps identically.
    timeout:
        Per-document wall-clock budget in seconds (``None`` = none);
        an overrun raises :class:`repro.errors.DocumentTimeout`, which
        is transient and therefore retryable.
    retry_permanent:
        Also retry permanent errors.  Off by default: the engines are
        pure functions, so a deterministic failure cannot heal.
    """

    max_retries: int = 0
    backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    timeout: Optional[float] = None
    retry_permanent: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries!r}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout!r}")

    def delay(self, retry_number: int) -> float:
        """Seconds to wait before retry ``retry_number`` (1-based)."""
        if retry_number < 1 or self.backoff <= 0:
            return 0.0
        return min(
            self.max_backoff,
            self.backoff * self.backoff_factor ** (retry_number - 1),
        )

    def should_retry(self, attempts_made: int, transient: bool) -> bool:
        """Whether a document that failed ``attempts_made`` times (and
        whose last error was/wasn't transient) gets another attempt."""
        if attempts_made > self.max_retries:
            return False
        return transient or self.retry_permanent


class Deadline:
    """A wall-clock budget that starts ticking when constructed.

    The serving layer hands each request one deadline; every stage of
    handling (body parse, plan retrieval, evaluation) then runs under
    whatever is *left* of the budget rather than a fresh one, so a slow
    early stage cannot grant later stages more time than the request
    has.  ``budget=None`` is unbounded — every method degrades to a
    no-op wrapper.

    Overruns surface as :class:`repro.errors.DocumentTimeout`, the same
    transient-classified error the per-document batch timeout raises,
    so the existing retry/error-policy triage applies unchanged.
    """

    __slots__ = ("budget", "_started")

    def __init__(self, budget: Optional[float]):
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive, got {budget!r}")
        self.budget = budget
        self._started = time.monotonic()

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return time.monotonic() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds left (never negative), or ``None`` when unbounded."""
        if self.budget is None:
            return None
        return max(0.0, self.budget - self.elapsed())

    def expired(self) -> bool:
        """Whether the budget has run out (never, when unbounded)."""
        return self.budget is not None and self.elapsed() >= self.budget

    def run(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn()`` under the *remaining* budget.

        Raises :class:`DocumentTimeout` immediately when the budget is
        already spent, and via :func:`call_with_timeout` when ``fn``
        overruns what is left.
        """
        remaining = self.remaining()
        if remaining is None:
            return fn()
        if remaining <= 0:
            raise DocumentTimeout(
                f"deadline exceeded before evaluation started "
                f"({self.budget:g}s budget)"
            )
        return call_with_timeout(fn, remaining)


def call_with_timeout(
    fn: Callable[[], Any], timeout: Optional[float]
) -> Any:
    """Run ``fn()`` under a wall-clock budget.

    With no budget this is a plain call.  With one, the call runs in a
    daemon thread; an overrun raises :class:`DocumentTimeout` in the
    caller (the worker thread is left to finish and be discarded — the
    engines are pure, so an abandoned evaluation has no side effects).
    """
    if timeout is None:
        return fn()
    outcome: list = []

    def target() -> None:
        try:
            outcome.append(("ok", fn()))
        except BaseException as exc:  # noqa: BLE001 — relayed below
            outcome.append(("err", exc))

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise DocumentTimeout(
            f"document evaluation exceeded the {timeout:g}s budget"
        )
    kind, value = outcome[0]
    if kind == "err":
        raise value
    return value
