"""Execution tracing: deterministic span trees across the full stack.

Every run of a compiled mapping — single-document, batch, or pipeline —
can record a hierarchical trace: ``compile`` → ``plan`` → ``execute``
spans from the engines, ``doc[i]``/``attempt[k]`` spans from the batch
runtime (merged back from worker processes), ``stage[i]`` spans from
pipelines, and error/retry/dead-letter records from the fault layer.
The result is a versioned ``clip-trace`` JSON document.

Two properties make traces usable as regression oracles rather than
just debugging aids:

* **deterministic identity** — a span's id is derived from the trace
  seed (the mapping's base plan fingerprint), the span's slash-joined
  structural path (``batch/doc[3]/attempt[0]/execute``) and its sibling
  ordinal, never from wall-clock time or process ids.  The same
  (mapping, document, engine, optimize, worker-count) tuple always
  produces the same ids;
* **a canonical form** — :meth:`Trace.canonical_json` strips the
  recorded timestamps (``t0``/``t1``) and every attribute whose key
  ends in ``_seconds``, then serializes with sorted keys and fixed
  separators.  What remains is byte-deterministic, so golden traces
  can be committed and diffed, and ``workers=1`` vs ``workers=4``
  runs can be compared for identity.

Tracing is strictly opt-in and zero-cost when off: instrumented code
guards on the tracer's truthiness (``if trace:``), ``None`` and
:class:`NullTracer` are both falsy, and no tracing code runs inside
the engines' hot loops — spans are recorded at document, stage and
plan-level granularity, with per-level :class:`~repro.executor.planner.
PlanCounters` attached by snapshot/diff around each evaluation.

Versioning follows the repo's report-format contract (see
``docs/FORMATS.md``): additive keys keep the version; renaming or
removing a key, changing the id derivation, or changing the canonical
form bumps ``TRACE_VERSION`` and extends ``PARSEABLE_TRACE_VERSIONS``.
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

TRACE_FORMAT = "clip-trace"
TRACE_VERSION = 1

#: Versions :func:`Trace.from_dict` accepts.
PARSEABLE_TRACE_VERSIONS = (1,)

#: Span kinds: ``span`` (an interval), ``event`` (a point-in-time
#: marker, ``t0 == t1``), ``error`` (a failed interval — one per
#: failed attempt / :class:`~repro.runtime.faults.DocumentFailure`).
SPAN_KINDS = ("span", "event", "error")

#: Attribute keys with this suffix carry wall-clock durations and are
#: excluded from the canonical form (like ``t0``/``t1`` themselves).
NONCANONICAL_SUFFIX = "_seconds"

#: Hex digits of SHA-256 kept as a span id.
SPAN_ID_LEN = 16


def span_id(seed: str, path: str) -> str:
    """The deterministic id of the span at ``path`` under ``seed``."""
    payload = f"{seed}\n{path}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:SPAN_ID_LEN]


def combine_seeds(seeds) -> str:
    """One trace seed for a multi-mapping run (pipelines): the SHA-256
    of the newline-joined per-stage seeds."""
    payload = "\n".join(seeds).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


class Span:
    """One node of a trace tree, pre-serialization.

    Ids are *not* stored here: they are a function of the span's
    position in the finished tree and are assigned by
    :meth:`SpanTracer.to_trace`, which is what lets worker processes
    build subtrees without coordinating with the parent.
    """

    __slots__ = ("name", "kind", "t0", "t1", "attrs", "children")

    def __init__(self, name: str, kind: str = "span", *,
                 t0: float = 0.0, t1: float = 0.0,
                 attrs: Optional[dict] = None):
        self.name = name
        self.kind = kind
        self.t0 = t0
        self.t1 = t1
        self.attrs: dict = attrs if attrs is not None else {}
        self.children: list = []

    def expand(self, t0: float, t1: float) -> None:
        """Widen the interval to cover ``[t0, t1]`` (worker merging)."""
        self.t0 = min(self.t0, t0)
        self.t1 = max(self.t1, t1)

    def to_payload(self) -> dict:
        """A picklable plain-dict form, for crossing process
        boundaries; round-trips through :func:`span_from_payload`."""
        return {
            "name": self.name,
            "kind": self.kind,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": self.attrs,
            "children": [child.to_payload() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, kind={self.kind!r}, "
            f"{len(self.children)} children)"
        )


def span_from_payload(payload: dict) -> Span:
    """Rebuild a :class:`Span` subtree from its payload dict."""
    span = Span(
        payload["name"], payload.get("kind", "span"),
        t0=payload.get("t0", 0.0), t1=payload.get("t1", 0.0),
        attrs=dict(payload.get("attrs", {})),
    )
    span.children = [
        span_from_payload(child) for child in payload.get("children", [])
    ]
    return span


def event_payload(name: str, *, kind: str = "event",
                  at: Optional[float] = None, **attrs) -> dict:
    """A zero-duration span payload — for grafting point events
    (dead-letters, say) onto payloads built elsewhere.  ``at`` pins the
    timestamp (e.g. the enclosing span's ``t1``, so the event does not
    escape an already-closed parent interval); default is now."""
    now = time.perf_counter() if at is None else at
    return {"name": name, "kind": kind, "t0": now, "t1": now,
            "attrs": attrs, "children": []}


def shift_payload(payload: dict, delta: float) -> dict:
    """Shift a payload subtree's timestamps by ``delta`` seconds.

    Worker processes report ``time.perf_counter()`` values from their
    own clock; the parent re-bases a received subtree so it ends at the
    moment the record arrived.  Durations are preserved; canonical
    output is unaffected (timestamps are non-canonical).
    """
    payload["t0"] += delta
    payload["t1"] += delta
    for child in payload.get("children", []):
        shift_payload(child, delta)
    return payload


class SpanTracer:
    """Collects a span tree; truthy (instrumentation guards fire).

    ``seed`` is the deterministic id namespace — instrumented layers
    set it to the mapping's *base* plan fingerprint (engine + mapping,
    optimize-independent) on first use, so the same mapping always
    yields the same ids regardless of evaluation strategy.
    """

    def __init__(self, *, seed: str = "", engine: str = "",
                 meta: Optional[dict] = None):
        self.seed = seed
        self.engine = engine
        self.meta: dict = meta if meta is not None else {}
        self._roots: list = []
        self._stack: list = []

    @property
    def active(self) -> bool:
        """Whether a span is currently open."""
        return bool(self._stack)

    @property
    def roots(self) -> list:
        return self._roots

    def begin(self, name: str, kind: str = "span", **attrs) -> Span:
        """Open a span nested under the innermost open span."""
        span = Span(name, kind, attrs=attrs)
        span.t0 = span.t1 = time.perf_counter()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Optional[Span] = None, **attrs) -> Span:
        """Close the innermost open span (which must be ``span`` when
        given — unbalanced begin/end is a programming error)."""
        if not self._stack:
            raise RuntimeError("SpanTracer.end() with no open span")
        top = self._stack.pop()
        if span is not None and span is not top:
            raise RuntimeError(
                f"unbalanced span nesting: closing {span.name!r} "
                f"but {top.name!r} is innermost"
            )
        top.t1 = time.perf_counter()
        top.attrs.update(attrs)
        return top

    @contextmanager
    def span(self, name: str, kind: str = "span", **attrs):
        opened = self.begin(name, kind, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    def event(self, name: str, **attrs) -> Span:
        """Record a point-in-time marker under the current span."""
        span = Span(name, "event", attrs=attrs)
        span.t0 = span.t1 = time.perf_counter()
        (self._stack[-1].children if self._stack else self._roots).append(span)
        return span

    def error(self, name: str, **attrs) -> Span:
        """Record a point-in-time error marker under the current span."""
        span = self.event(name, **attrs)
        span.kind = "error"
        return span

    def attach(self, payload: dict) -> Span:
        """Graft a serialized span subtree (a worker's attempt, say)
        under the current span; ids are assigned later, uniformly."""
        span = span_from_payload(payload)
        (self._stack[-1].children if self._stack else self._roots).append(span)
        return span

    def to_trace(self) -> "Trace":
        """Serialize the finished tree into a :class:`Trace` document,
        assigning deterministic ids.  All spans must be closed."""
        if self._stack:
            open_names = [span.name for span in self._stack]
            raise RuntimeError(f"spans still open: {open_names}")
        spans = _serialize_siblings(self._roots, "", None, self.seed)
        return Trace(engine=self.engine, seed=self.seed, spans=spans,
                     meta=dict(self.meta))

    def __bool__(self) -> bool:
        return True


class NullTracer:
    """A falsy no-op tracer: every guarded instrumentation site skips
    itself, so ``Transformer(trace=NullTracer())`` costs nothing."""

    seed = ""
    engine = ""
    active = False

    def begin(self, name: str, kind: str = "span", **attrs) -> None:
        return None

    def end(self, span: Any = None, **attrs) -> None:
        return None

    @contextmanager
    def span(self, name: str, kind: str = "span", **attrs):
        yield None

    def event(self, name: str, **attrs) -> None:
        return None

    def error(self, name: str, **attrs) -> None:
        return None

    def attach(self, payload: dict) -> None:
        return None

    def to_trace(self) -> "Trace":
        return Trace(engine="", seed="", spans=[], meta={})

    def __bool__(self) -> bool:
        return False


def _serialize_siblings(spans, parent_path: str, parent_id: Optional[str],
                        seed: str) -> list[dict]:
    """Serialize a sibling list, deduplicating repeated names.

    The first occurrence of a name keeps it; the k-th (k ≥ 2) becomes
    ``name#k`` — by construction order, which every instrumented layer
    keeps deterministic.
    """
    counts: dict[str, int] = {}
    out = []
    for span in spans:
        occurrence = counts.get(span.name, 0)
        counts[span.name] = occurrence + 1
        display = span.name if occurrence == 0 else f"{span.name}#{occurrence + 1}"
        path = f"{parent_path}/{display}" if parent_path else display
        sid = span_id(seed, path)
        out.append({
            "id": sid,
            "parent": parent_id,
            "name": display,
            "kind": span.kind,
            "path": path,
            "t0": span.t0,
            "t1": span.t1,
            "attrs": dict(span.attrs),
            "children": _serialize_siblings(span.children, path, sid, seed),
        })
    return out


def canonical_span(span: dict) -> dict:
    """The canonical (timestamp-free) form of one serialized span."""
    return {
        "id": span["id"],
        "parent": span.get("parent"),
        "name": span["name"],
        "kind": span.get("kind", "span"),
        "path": span["path"],
        "attrs": {
            key: value
            for key, value in span.get("attrs", {}).items()
            if not key.endswith(NONCANONICAL_SUFFIX)
        },
        "children": [
            canonical_span(child) for child in span.get("children", [])
        ],
    }


class Trace:
    """A finished ``clip-trace`` document.

    ``spans`` holds serialized span dicts (id, parent, name, kind,
    path, t0, t1, attrs, children).  ``meta`` carries run facts that
    are deliberately outside the canonical form (worker count, say).
    """

    __slots__ = ("engine", "seed", "spans", "meta")

    def __init__(self, *, engine: str = "", seed: str = "",
                 spans: Optional[list] = None, meta: Optional[dict] = None):
        self.engine = engine
        self.seed = seed
        self.spans: list = spans if spans is not None else []
        self.meta: dict = meta if meta is not None else {}

    def iter_spans(self) -> Iterator[dict]:
        """Every span dict, depth-first in document order."""
        stack = list(reversed(self.spans))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.get("children", [])))

    def find(self, name: str) -> Optional[dict]:
        """The first span (document order) with ``name``, or None."""
        for span in self.iter_spans():
            if span["name"] == name:
                return span
        return None

    def to_dict(self) -> dict:
        doc = {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "engine": self.engine,
            "seed": self.seed,
            "spans": self.spans,
        }
        if self.meta:
            doc["meta"] = self.meta
        return doc

    def canonical_dict(self) -> dict:
        """The deterministic subset: ids, nesting, names, kinds and
        canonical attributes — no timestamps, no ``meta``."""
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "engine": self.engine,
            "seed": self.seed,
            "spans": [canonical_span(span) for span in self.spans],
        }

    def canonical_json(self) -> str:
        """Byte-deterministic serialization of the canonical form —
        the committed golden-trace representation."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True,
            separators=(",", ":"), ensure_ascii=False,
        )

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, doc: dict) -> "Trace":
        if doc.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"not a {TRACE_FORMAT} document: format={doc.get('format')!r}"
            )
        version = doc.get("version")
        if version not in PARSEABLE_TRACE_VERSIONS:
            raise ValueError(
                f"unsupported {TRACE_FORMAT} version {version!r}; "
                f"supported: {PARSEABLE_TRACE_VERSIONS}"
            )
        return cls(
            engine=doc.get("engine", ""),
            seed=doc.get("seed", ""),
            spans=doc.get("spans", []),
            meta=doc.get("meta", {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        return (
            f"Trace(engine={self.engine!r}, "
            f"seed={self.seed[:12]}…, {len(self.spans)} root spans)"
        )
