"""Delta-scoped incremental re-execution of compiled tgd plans.

Mapping services re-transform documents a user just edited; re-running
the full plan discards everything the previous run already computed.
:func:`transform_delta` is the view-maintenance entry point: given a
compiled plan, the previous source/target pair, and a machine
:class:`~repro.xml.diff.Delta`, it produces the new target by reusing
the previous one wherever the delta provably cannot reach.

Three outcomes, reported in the returned :class:`IncrementalReport`:

``unchanged``
    No compiled level's source read-set intersects the delta — the
    previous target is correct as-is and is returned as a copy.

``scoped``
    The root mapping's iteration is partitioned into *units* — one per
    top-level environment, or one per grouping key when the root level
    carries a grouping Skolem.  Units whose source bindings lie outside
    every changed subtree keep their previous target fragment (a deep
    copy); dirty units re-execute through the ordinary engine machinery
    over the new document's index tables.  Fragments are emitted in the
    new document's enumeration order, so the result is byte-identical
    to a full recompute.

``fallback``
    Full recomputation — taken when the delta ratio exceeds the
    threshold, when the mapping uses a construct the scoped path does
    not model (multiple root mappings, ``distribute`` generators,
    writes escaping the per-unit fragment), or when the delta touches a
    *document-scoped* read of a nested level (a generator re-scanning
    the whole document per group, as in the Figure 7 employee join,
    cannot be localized to units).

Scoped re-execution leans on two structural facts checked up front:
every root-level read hangs off the root generators' own bindings, so
a unit's output depends only on its bound subtrees; and nested
document-scoped generators are either *membership-scoped* (tied to a
group variable by a membership condition, like ``$p2`` in Figure 7) or
cause a fallback when the delta reaches the paths they read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..errors import ReproError, XmlError
from ..core.tgd import (
    Constant,
    Membership,
    NestedTgd,
    SchemaRoot,
    SourceGenerator,
    TargetGenerator,
    TgdComparison,
    TgdMapping,
    Var,
    expr_labels,
    expr_root,
)
from ..executor.engine import GroupBinding, TgdPlan, _Engine
from ..executor.planner import PlanMemo, _OptimizedEngine, _term_exprs
from ..xml.diff import (
    Delta,
    DeltaRecord,
    apply_delta,
    apply_delta_in_place,
    compute_delta,
    resolve_steps,
)
from ..xml.index import index_for
from ..xml.model import XmlElement

#: Above this changed-nodes / source-size ratio the scoped path cannot
#: win and :func:`transform_delta` recomputes from scratch.
DEFAULT_THRESHOLD = 0.25

_Chain = tuple[str, ...]


@dataclass
class IncrementalReport:
    """How one :func:`transform_delta` call produced its target."""

    mode: str  # "unchanged" | "scoped" | "fallback"
    reason: str = ""
    delta_records: int = 0
    changed_nodes: int = 0
    delta_ratio: float = 0.0
    threshold: float = DEFAULT_THRESHOLD
    #: Indices of compiled levels whose read-set the delta intersects.
    dirty_levels: tuple[int, ...] = ()
    grouped: bool = False
    #: Units of the scoped partition (root environments or groups).
    total_units: int = 0
    reused_units: int = 0
    recomputed_units: int = 0

    @property
    def incremental(self) -> bool:
        """Whether the previous target contributed to the result."""
        return self.mode in ("unchanged", "scoped")

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "reason": self.reason,
            "delta_records": self.delta_records,
            "changed_nodes": self.changed_nodes,
            "delta_ratio": round(self.delta_ratio, 6),
            "threshold": self.threshold,
            "dirty_levels": list(self.dirty_levels),
            "grouped": self.grouped,
            "total_units": self.total_units,
            "reused_units": self.reused_units,
            "recomputed_units": self.recomputed_units,
        }


# -- delta ↔ read-set intersection ------------------------------------------


def _record_chain(record: DeltaRecord) -> _Chain:
    base = tuple(tag for tag, _ in record.steps)
    if record.op == "mutate-attribute":
        return base + (f"@{record.name}",)
    if record.op == "mutate-text":
        return base + ("value",)
    if record.op == "insert" and record.name:
        return base + (record.name,)
    return base


def _intersects(record: DeltaRecord, read: _Chain) -> bool:
    """Whether one delta record can influence one read chain.

    Mutations change a single attribute/text slot, so only the exact
    chain observes them (a bare prefix of the chain is a node-set read
    — binding existence and identity — which interior mutations leave
    intact).  Structural records change the whole subtree at their
    chain, so any read *at or below* it may observe the edit; reads
    strictly above are node-set or value reads whose own population is
    untouched (their dependence on the subtree's contents is recorded
    as separate, deeper chains).
    """
    chain = _record_chain(record)
    if record.op in ("mutate-attribute", "mutate-text"):
        return chain == read
    return read[: len(chain)] == chain


def _delta_touches(delta: Delta, reads, resolved: bool) -> bool:
    if not resolved:
        return True
    return any(
        _intersects(record, read)
        for record in delta.records
        for read in reads
    )


# -- supported-shape analysis -----------------------------------------------


@dataclass
class _Shape:
    """The root-level structure the scoped path relies on."""

    root: TgdMapping
    #: Unquantified wrapper chain above the per-unit fragments (the CPT
    #: "constant tags" of Figure 3); empty when fragments hang directly
    #: off the target root.
    prefix: tuple[TargetGenerator, ...]
    suffix: tuple[TargetGenerator, ...]
    grouped: bool
    #: Absolute chains read by nested levels *outside* their unit scope
    #: (document-wide re-scans); a delta touching these falls back.
    global_reads: frozenset[_Chain] = field(default_factory=frozenset)
    global_resolved: bool = True
    #: Per root-generator variable: the label chains the unit reads
    #: *relative to that variable's binding* — its own value reads,
    #: nested generator populations, and reads of membership-pinned
    #: variables re-anchored to the binding they are pinned to.  Lets
    #: the dirty test ask "can this record reach a read of this unit?"
    #: instead of marking every unit whose binding merely contains the
    #: changed node.  ``None`` when some read could not be anchored;
    #: the dirty test then falls back to ancestor marking.
    var_reads: Optional[dict[str, frozenset[_Chain]]] = None


def _atomic_variants(chains: set[_Chain]) -> set[_Chain]:
    out = set(chains)
    for chain in chains:
        if not chain or not (chain[-1] == "value" or chain[-1].startswith("@")):
            out.add(chain + ("value",))
    return out


def _level_value_reads(mapping: TgdMapping):
    """``(expr, atomic, member)`` triples for the level's non-generator
    reads; ``member`` is set on a membership condition's collection
    expression (the read is then a per-member containment test)."""
    for condition in mapping.where:
        if isinstance(condition, Membership):
            yield condition.member, False, None
            yield condition.collection, False, condition.member
        elif isinstance(condition, TgdComparison):
            for operand in (condition.left, condition.right):
                if not isinstance(operand, Constant):
                    yield operand, True, None
    if mapping.skolem is not None:
        for attr in mapping.skolem[1].attrs:
            yield attr, True, None
    for assignment in mapping.assignments:
        for expr in _term_exprs(assignment.value):
            yield expr, True, None


def _membership_collection(
    mapping: TgdMapping, gen: SourceGenerator, scoped: set[str]
):
    """The collection expression pinning a document-rooted generator to
    unit scope via a membership condition, or ``None`` (Figure 7's
    ``$p2`` ranges over all projects but ``$p2 in $p`` restricts it to
    the group's members — the surviving bindings are, by identity,
    elements of the collection)."""
    for condition in mapping.where:
        if not isinstance(condition, Membership):
            continue
        member_root = expr_root(condition.member)
        collection_root = expr_root(condition.collection)
        if (
            isinstance(member_root, Var)
            and member_root.name == gen.var
            and isinstance(collection_root, Var)
            and collection_root.name in scoped
        ):
            return condition.collection
    return None


def _anchor_of(expr, anchors: dict) -> Optional[tuple[str, _Chain]]:
    """The anchor of a projection chain rooted at an anchored variable:
    where the expression's nodes live relative to a root generator's
    binding (``None`` when the root is unanchored)."""
    base = expr_root(expr)
    if not isinstance(base, Var):
        return None
    found = anchors.get(base.name)
    if found is None:
        return None
    root_var, rel = found
    return root_var, rel + tuple(expr_labels(expr))


def _analyze(tgd: NestedTgd) -> tuple[Optional[_Shape], str]:
    """Check the tgd against the scoped path's supported shape."""
    if len(tgd.roots) != 1:
        return None, "multiple root mappings"
    root = tgd.roots[0]
    for level in root.walk():
        for gen in level.target_gens:
            if gen.distribute:
                return None, "distribute target generator"
    if not root.source_gens:
        return None, "root mapping has no source generators"
    prefix, suffix = _Engine._split_targets(root.target_gens)
    if not suffix:
        return None, "root mapping builds no target element"
    # The unquantified prefix must be a single wrapper chain anchored at
    # the target root (the CPT "constant tags" of Figure 3), with the
    # per-unit fragment generator hanging off its innermost element.
    chain_var: Optional[str] = None
    for gen in (*prefix, suffix[0]):
        base = gen.expr.base
        if chain_var is None:
            if not isinstance(base, SchemaRoot):
                return None, "root target prefix not anchored at the target root"
        elif not (isinstance(base, Var) and base.name == chain_var):
            return None, "root target prefix is not a single wrapper chain"
        chain_var = gen.var
    # Everything written per unit must stay inside the unit's fragment:
    # target generators and assignment targets may only hang off the
    # quantified fragment element, never the shared prefix or the
    # target root.
    binding_vars = {suffix[0].var}
    for gen in suffix[1:]:
        base = gen.expr.base
        if not (isinstance(base, Var) and base.name in binding_vars):
            return None, "root target generator escapes the unit fragment"
        binding_vars.add(gen.var)

    def check_targets(mapping: TgdMapping, scope: set[str]) -> str:
        for gen in mapping.target_gens:
            base = gen.expr.base
            if not (isinstance(base, Var) and base.name in scope):
                return "nested target generator escapes the unit fragment"
            scope.add(gen.var)
        for assignment in mapping.assignments:
            expr = assignment.target
            while not isinstance(expr, (Var, SchemaRoot)):
                expr = expr.base
            if not (isinstance(expr, Var) and expr.name in scope):
                return "assignment escapes the unit fragment"
        for sub in mapping.submappings:
            found = check_targets(sub, set(scope))
            if found:
                return found
        return ""

    for assignment in root.assignments:
        expr = assignment.target
        while not isinstance(expr, (Var, SchemaRoot)):
            expr = expr.base
        if not (isinstance(expr, Var) and expr.name in binding_vars):
            return None, "assignment escapes the unit fragment"
    for sub in root.submappings:
        reason = check_targets(sub, set(binding_vars))
        if reason:
            return None, reason

    global_reads: set[_Chain] = set()
    global_resolved = True
    #: Relative read chains per root generator variable; each local
    #: variable carries an *anchor* ``(root_var, relative_chain)``
    #: identifying where its bindings live inside the unit's subtrees.
    var_reads: dict[str, set[_Chain]] = {}
    var_resolved = True
    unsupported = ""

    def add_global(chains: Optional[frozenset], atomic: bool) -> None:
        nonlocal global_resolved
        if chains is None:
            global_resolved = False
            return
        global_reads.update(
            _atomic_variants(set(chains)) if atomic else chains
        )

    def classify(
        mapping: TgdMapping,
        scoped: set[str],
        var_chains: dict[str, Optional[frozenset]],
        var_anchors: dict[str, Optional[tuple[str, _Chain]]],
        is_root: bool,
    ) -> None:
        nonlocal unsupported, var_resolved
        if unsupported:
            return
        local = set(scoped)
        chains_scope = dict(var_chains)
        anchors = dict(var_anchors)

        def add_var_read(anchor, labels: tuple, atomic: bool) -> None:
            nonlocal var_resolved
            if anchor is None:
                var_resolved = False
                return
            root_var, rel = anchor
            chains = {rel + labels}
            if atomic:
                chains = _atomic_variants(chains)
            var_reads.setdefault(root_var, set()).update(chains)

        for gen in mapping.source_gens:
            gen_root = expr_root(gen.expr)
            labels = tuple(expr_labels(gen.expr))
            if is_root:
                # Root generators are the unit's own bindings; their
                # enumeration is tracked by structural signatures, not
                # by read chains.
                anchors[gen.var] = (gen.var, ())
            if isinstance(gen_root, SchemaRoot):
                chains_scope[gen.var] = frozenset({labels})
                collection = (
                    None if is_root
                    else _membership_collection(mapping, gen, local)
                )
                if is_root:
                    local.add(gen.var)
                elif collection is not None:
                    local.add(gen.var)
                    anchors[gen.var] = _anchor_of(collection, anchors)
                    if anchors[gen.var] is None:
                        var_resolved = False
                else:
                    add_global(chains_scope[gen.var], False)
            elif isinstance(gen_root, Var):
                bases = chains_scope.get(gen_root.name)
                chains_scope[gen.var] = (
                    frozenset(base + labels for base in bases)
                    if bases is not None
                    else None
                )
                if is_root:
                    local.add(gen.var)
                elif gen_root.name in local:
                    local.add(gen.var)
                    # The generator both *reads* its population chain
                    # (structural edits there change the enumeration)
                    # and anchors its bindings under it.
                    base_anchor = anchors.get(gen_root.name)
                    add_var_read(base_anchor, labels, False)
                    anchors[gen.var] = (
                        None if base_anchor is None
                        else (base_anchor[0], base_anchor[1] + labels)
                    )
                    if anchors[gen.var] is None:
                        var_resolved = False
                else:
                    collection = _membership_collection(mapping, gen, local)
                    if collection is not None:
                        # Ranges over a document-wide chain but a
                        # membership condition pins the surviving
                        # bindings to the unit's own elements (Figure
                        # 7's $p2 in $p).
                        local.add(gen.var)
                        anchors[gen.var] = _anchor_of(collection, anchors)
                        if anchors[gen.var] is None:
                            var_resolved = False
                    else:
                        add_global(chains_scope[gen.var], False)
            else:
                unsupported = f"unsupported generator base {gen.expr!r}"
                return
        for expr, atomic, member in _level_value_reads(mapping):
            expr_base = expr_root(expr)
            if isinstance(expr_base, Var) and expr_base.name in local:
                add_var_read(
                    anchors.get(expr_base.name),
                    tuple(expr_labels(expr)),
                    atomic,
                )
                continue
            if member is not None:
                member_root = expr_root(member)
                if isinstance(member_root, Var) and member_root.name in local:
                    # A containment test of a unit-scoped element: the
                    # outcome depends only on the member's own ancestry,
                    # which any edit would have marked dirty — edits to
                    # *other* collection elements cannot flip it.
                    continue
            labels = tuple(expr_labels(expr))
            if isinstance(expr_base, SchemaRoot):
                add_global(frozenset({labels}), atomic)
            else:
                bases = chains_scope.get(expr_base.name)
                add_global(
                    None
                    if bases is None
                    else frozenset(base + labels for base in bases),
                    atomic,
                )
        for sub in mapping.submappings:
            classify(sub, local, chains_scope, anchors, False)

    classify(root, set(), {}, {}, True)
    if unsupported:
        return None, unsupported
    return (
        _Shape(
            root=root,
            prefix=tuple(prefix),
            suffix=suffix,
            grouped=root.skolem is not None,
            global_reads=frozenset(global_reads),
            global_resolved=global_resolved,
            var_reads=(
                {var: frozenset(chains) for var, chains in var_reads.items()}
                if var_resolved
                else None
            ),
        ),
        "",
    )


# -- dirty-region and unit bookkeeping --------------------------------------


def _dirty_ids(prev_source: XmlElement, delta: Delta) -> set[int]:
    """Identities of previous-source elements a record can affect: the
    addressed element and its ancestors always; its whole subtree for
    structural removals/replacements (descendant bindings vanish)."""
    dirty: set[int] = set()
    for record in delta.records:
        target = resolve_steps(prev_source, record.steps)
        if record.op in ("remove", "replace"):
            for node in target.iter():
                dirty.add(id(node))
        else:
            dirty.add(id(target))
        node = target.parent
        while node is not None:
            dirty.add(id(node))
            node = node.parent
    return dirty


class _DirtyIndex:
    """Decides whether a root environment's unit can observe the delta.

    With resolved ``var_reads`` the test is read-anchored: a binding
    ``B`` of root variable ``v`` is dirty when it lies inside a
    removed/replaced subtree (its environment vanishes or re-binds), or
    when it is the addressed node or an ancestor of it *and* the
    record's chain relative to ``B`` intersects one of ``v``'s read
    chains.  An edit inside a binding that the unit never reads —
    Figure 7's department context when only ``$p.pname`` feeds the
    group — leaves the unit clean, where plain ancestor marking would
    recompute every group touching that department.

    Without resolved reads it degrades to the conservative ancestor
    rule of :func:`_dirty_ids`.
    """

    __slots__ = ("ids", "records", "var_reads")

    def __init__(
        self,
        prev_source: XmlElement,
        delta: Delta,
        var_reads: Optional[dict[str, frozenset[_Chain]]],
    ):
        self.var_reads = var_reads
        if var_reads is None:
            self.ids = _dirty_ids(prev_source, delta)
            self.records: Optional[list] = None
            return
        self.ids = set()
        self.records = []
        for record in delta.records:
            target = resolve_steps(prev_source, record.steps)
            if record.op in ("remove", "replace"):
                for node in target.iter():
                    self.ids.add(id(node))
            chain = _record_chain(record)
            mutate = record.op in ("mutate-attribute", "mutate-text")
            # How many leading chain entries to strip to express the
            # record relative to each ancestor-or-self of the target.
            strip: dict[int, int] = {}
            node: Optional[XmlElement] = target
            depth = len(record.steps)
            while node is not None:
                strip[id(node)] = depth
                node = node.parent
                depth -= 1
            self.records.append((mutate, chain, strip))

    def env_dirty(self, env, gens) -> bool:
        if self.records is None:
            return any(id(env[gen.var]) in self.ids for gen in gens)
        for gen in gens:
            binding = env[gen.var]
            ident = id(binding)
            if ident in self.ids:
                return True
            reads = self.var_reads.get(gen.var)
            if not reads:
                continue
            for mutate, chain, strip in self.records:
                depth = strip.get(ident)
                if depth is None:
                    continue
                rel = chain[depth:]
                if mutate:
                    if rel in reads:
                        return True
                elif any(read[: len(rel)] == rel for read in reads):
                    return True
        return False


class _Signer:
    """Structural addresses — ``((tag, per-tag index), …)`` chains from
    the document root — memoized per element.  Equal addresses in the
    previous and new document identify "the same" element across
    :func:`apply_delta`'s copy."""

    __slots__ = ("_memo",)

    def __init__(self):
        self._memo: dict[int, tuple] = {}

    def signature(self, element: XmlElement) -> tuple:
        found = self._memo.get(id(element))
        if found is not None:
            return found
        parent = element.parent
        if parent is None:
            found = ()
        else:
            occurrence = 0
            for sibling in parent.children:
                if sibling is element:
                    break
                if sibling.tag == element.tag:
                    occurrence += 1
            found = self.signature(parent) + ((element.tag, occurrence),)
        self._memo[id(element)] = found
        return found

    def env_signature(self, gens, env) -> tuple:
        return tuple(self.signature(env[gen.var]) for gen in gens)


def _make_engine(
    tgd_plan: TgdPlan,
    source: XmlElement,
    shared_memo: Optional[PlanMemo] = None,
) -> _Engine:
    """An engine over ``source`` with the plan's strategy (optimized
    when the plan compiled level plans, naive otherwise) — but without
    the plan's cumulative counters, which a partial run would skew.
    ``shared_memo`` lets a session carry document-scoped sequences and
    join tables across engines."""
    if tgd_plan.planned is not None:
        return _OptimizedEngine(
            tgd_plan.tgd,
            source,
            tgd_plan.planned,
            ordered=tgd_plan.ordered,
            shared_memo=shared_memo,
        )
    return _Engine(tgd_plan.tgd, source, ordered=tgd_plan.ordered)


def _group_members(gens, members: list[dict]) -> dict:
    """The grouped environment ``_run_grouped`` builds for one key:
    the first member, with each introduced variable rebound to the
    identity-distinct members in document order."""
    group_env = dict(members[0])
    for gen in gens:
        distinct: list[XmlElement] = []
        seen: set[int] = set()
        for member in members:
            binding = member[gen.var]
            if isinstance(binding, XmlElement) and id(binding) not in seen:
                seen.add(id(binding))
                distinct.append(binding)
        group_env[gen.var] = GroupBinding(distinct)
    return group_env


# -- entry point -------------------------------------------------------------


def transform_delta(
    plan,
    prev_source: XmlElement,
    prev_target: XmlElement,
    delta: Delta,
    *,
    new_source: Optional[XmlElement] = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[XmlElement, IncrementalReport]:
    """Re-transform an edited document, reusing the previous target.

    ``plan`` is a :class:`~repro.executor.engine.TgdPlan` or a
    :class:`~repro.runtime.plan.CompiledPlan`; ``delta`` must be
    ``compute_delta(prev_source, new_source)``.  When ``new_source`` is
    omitted it is reconstructed with :func:`apply_delta`.  The result
    is byte-identical to ``plan.run(new_source)`` in every mode.
    """
    tgd_plan: Optional[TgdPlan] = (
        plan if isinstance(plan, TgdPlan) else getattr(plan, "tgd_plan", None)
    )
    if new_source is None:
        new_source = apply_delta(prev_source, delta)

    report = IncrementalReport(
        mode="fallback",
        threshold=threshold,
        delta_records=len(delta.records),
        changed_nodes=delta.changed_nodes,
        delta_ratio=delta.ratio(prev_source.size()),
    )

    def fallback(reason: str) -> tuple[XmlElement, IncrementalReport]:
        report.mode = "fallback"
        report.reason = reason
        return plan.run(new_source), report

    if delta.truncated:
        return fallback("truncated delta")
    if tgd_plan is None:
        return fallback("plan has no tgd execution plan")
    if delta.is_empty:
        report.mode = "unchanged"
        report.reason = "empty delta"
        return prev_target.copy(), report
    if report.delta_ratio > threshold:
        return fallback(
            f"delta ratio {report.delta_ratio:.3f} exceeds "
            f"threshold {threshold:.3f}"
        )

    if tgd_plan.planned is not None:
        report.dirty_levels = tuple(
            index
            for index, level in enumerate(tgd_plan.planned.levels)
            if _delta_touches(delta, level.read_paths, level.reads_resolved)
        )
        if not report.dirty_levels:
            report.mode = "unchanged"
            report.reason = "no level read-set intersects the delta"
            return prev_target.copy(), report

    shape, reason = _analyze(tgd_plan.tgd)
    if shape is None:
        return fallback(f"unsupported mapping shape: {reason}")
    report.grouped = shape.grouped
    if _delta_touches(delta, shape.global_reads, shape.global_resolved):
        return fallback("delta intersects document-scoped reads of nested levels")
    if prev_target.tag != tgd_plan.tgd.target_root:
        return fallback("previous target root does not match the plan")

    try:
        return _scoped(
            plan, tgd_plan, shape, prev_source, prev_target, delta,
            new_source, report,
        )
    except ReproError as exc:
        return fallback(f"scoped re-execution unavailable: {exc}")


def _scoped(
    plan,
    tgd_plan: TgdPlan,
    shape: _Shape,
    prev_source: XmlElement,
    prev_target: XmlElement,
    delta: Delta,
    new_source: XmlElement,
    report: IncrementalReport,
) -> tuple[XmlElement, IncrementalReport]:
    root = shape.root
    suffix = shape.suffix
    fragment_tag = suffix[0].expr.label

    try:
        dirty = _DirtyIndex(prev_source, delta, shape.var_reads)
    except XmlError as exc:
        raise ReproError(f"delta does not resolve: {exc}") from exc

    old_engine = _make_engine(tgd_plan, prev_source)
    new_engine = _make_engine(tgd_plan, new_source)
    old_envs = old_engine._enumerate(root, {})
    new_envs = new_engine._enumerate(root, {})

    signer = _Signer()
    gens = root.source_gens
    old_sigs = [signer.env_signature(gens, env) for env in old_envs]
    old_dirty = [dirty.env_dirty(env, gens) for env in old_envs]
    new_sigs = [signer.env_signature(gens, env) for env in new_envs]

    prev_parent = prev_target
    for gen in shape.prefix:
        found = prev_parent.find(gen.expr.label)
        if found is None:
            raise ReproError("previous target lacks the root wrapper chain")
        prev_parent = found
    fragments = prev_parent.children
    # The engine materializes unquantified wrappers lazily, per binding:
    # with no bindings a full run leaves the target root empty, so only
    # materialize the chain when at least one unit will be emitted.
    if shape.prefix and new_envs:
        (base_env,) = new_engine._materialize_targets(shape.prefix, {})
        out_parent = base_env[shape.prefix[-1].var]
    else:
        base_env = {}
        out_parent = new_engine.target_root
    out = new_engine.target_root

    if not shape.grouped:
        if [c.tag for c in fragments] != [fragment_tag] * len(old_envs):
            raise ReproError("previous target does not align with plan output")
        # Signature matching is sound because compute_delta's insert
        # records always land at per-tag occurrences beyond the paired
        # ones: an inserted element's address can never collide with a
        # surviving old element's, and mid-sequence shifts surface as
        # mutations that mark the shifted elements dirty.
        clean: dict[tuple, int] = {
            sig: index
            for index, sig in enumerate(old_sigs)
            if not old_dirty[index]
        }
        report.total_units = len(new_envs)
        for env, sig in zip(new_envs, new_sigs):
            match = clean.get(sig)
            if match is not None:
                out_parent.append(fragments[match].copy())
                report.reused_units += 1
                continue
            report.recomputed_units += 1
            (iter_env,) = new_engine._materialize_targets(suffix, base_env)
            for assignment in root.assignments:
                new_engine._apply_assignment(assignment, env, iter_env)
            for sub in root.submappings:
                new_engine._run_mapping(sub, env, iter_env)
        report.mode = "scoped"
        report.reason = "per-binding fragments spliced"
        return out, report

    # Grouped root level: the unit is one grouping key.
    _, skolem_app = root.skolem
    old_groups: dict[tuple, list[int]] = {}
    for index, env in enumerate(old_envs):
        key = old_engine._group_key(root, skolem_app, env)
        old_groups.setdefault(key, []).append(index)
    if [c.tag for c in fragments] != [fragment_tag] * len(old_groups):
        raise ReproError("previous target does not align with plan output")
    old_fragment_of = {
        key: fragments[position]
        for position, key in enumerate(old_groups)
    }
    new_groups: dict[tuple, list[dict]] = {}
    new_group_sigs: dict[tuple, list[tuple]] = {}
    for env, sig in zip(new_envs, new_sigs):
        key = new_engine._group_key(root, skolem_app, env)
        new_groups.setdefault(key, []).append(env)
        new_group_sigs.setdefault(key, []).append(sig)

    # A group is reusable when its member set is structurally identical
    # (same signatures, in order) and no old member's unit observes the
    # delta: every difference between the documents is a delta record,
    # so equal-signature clean members are bytewise-equivalent inputs.
    report.total_units = len(new_groups)
    for key, members in new_groups.items():
        old_members = old_groups.get(key)
        untouched = (
            old_members is not None
            and not any(old_dirty[i] for i in old_members)
            and [old_sigs[i] for i in old_members] == new_group_sigs[key]
        )
        if untouched:
            out_parent.append(old_fragment_of[key].copy())
            report.reused_units += 1
            continue
        report.recomputed_units += 1
        group_env = _group_members(gens, members)
        (iter_env,) = new_engine._materialize_targets(
            suffix, base_env, group_key=key
        )
        for assignment in root.assignments:
            new_engine._apply_assignment(assignment, group_env, iter_env)
        for sub in root.submappings:
            new_engine._run_mapping(sub, group_env, iter_env)
    report.mode = "scoped"
    report.reason = "per-group fragments spliced"
    return out, report


# -- chained incremental sessions --------------------------------------------


class IncrementalSession:
    """Stateful delta-scoped execution over a maintained document.

    :func:`transform_delta` is stateless: every call re-enumerates the
    previous document, rebuilds the plan's document-scoped join tables
    from scratch, and deep-copies every reused fragment.  A session
    amortizes all three across a *chain* of edits — the steady state of
    a mapping service re-transforming a document its user keeps
    editing:

    * the source tree is **maintained in place**: each delta is applied
      to the session's own copy (:func:`~repro.xml.diff.apply_delta_in_place`),
      so node identities survive outside the edited subtrees and the
      per-document :class:`~repro.xml.index.DocumentIndex` only drops
      the tables the edit touched (:meth:`~repro.xml.index.DocumentIndex.invalidate`);
    * document-scoped generator sequences and join hash tables live in
      a :class:`~repro.executor.planner.PlanMemo` keyed by the label
      chains they read, invalidated per delta by chain intersection —
      the Figure 7 employee join table survives every edit that does
      not touch ``dept/regEmp``;
    * root environments, their structural signatures and grouping keys
      are carried over as the next call's "old side", and clean target
      fragments are **moved** from the previous target rather than
      deep-copied.

    The returned target is owned by the session: it is recycled as the
    fragment source of the next :meth:`transform` call, so callers must
    serialize (or copy) it before calling :meth:`transform` again.
    Every mode is byte-identical to ``plan.run(new_source)``, as for
    the stateless entry point.
    """

    def __init__(self, plan, *, threshold: float = DEFAULT_THRESHOLD):
        self.plan = plan
        self.threshold = threshold
        self._tgd_plan: Optional[TgdPlan] = (
            plan
            if isinstance(plan, TgdPlan)
            else getattr(plan, "tgd_plan", None)
        )
        if self._tgd_plan is None:
            self._shape, self._shape_reason = (
                None, "plan has no tgd execution plan",
            )
        else:
            self._shape, self._shape_reason = _analyze(self._tgd_plan.tgd)
        self._memo: Optional[PlanMemo] = (
            PlanMemo()
            if self._tgd_plan is not None and self._tgd_plan.planned is not None
            else None
        )
        self._source: Optional[XmlElement] = None
        self._size = 0
        self._target: Optional[XmlElement] = None
        self._envs: list[dict] = []
        self._sigs: list[tuple] = []
        self._keys: Optional[list[tuple]] = None
        self._applied = False

    def transform(
        self, new_source: XmlElement
    ) -> tuple[XmlElement, IncrementalReport]:
        """The plan's target for ``new_source``, incrementally when the
        delta against the maintained document allows it.

        ``new_source`` is never mutated and never retained; the session
        keeps its own maintained copy."""
        report = IncrementalReport(mode="fallback", threshold=self.threshold)
        if self._tgd_plan is None or self._shape is None:
            # Unsupported shape: a permanent stateless full run.
            report.reason = f"unsupported mapping shape: {self._shape_reason}"
            return self.plan.run(new_source), report
        report.grouped = self._shape.grouped
        if self._source is None or self._target is None:
            return self._full(new_source, report, reason="no previous state")
        delta = compute_delta(self._source, new_source)
        if delta.truncated:
            report.delta_records = len(delta.records)
            report.changed_nodes = delta.changed_nodes
            report.delta_ratio = delta.ratio(self._size)
            return self._full(new_source, report, reason="truncated delta")
        return self.apply(delta)

    def apply(
        self, delta: Delta
    ) -> tuple[XmlElement, IncrementalReport]:
        """The plan's target after applying ``delta`` to the maintained
        document.

        The delta-driven twin of :meth:`transform`, matching the
        stateless :func:`transform_delta` contract where the edit
        script is an input: callers that know their edits (editors,
        changelog consumers) skip the :func:`~repro.xml.diff.compute_delta`
        tree walk entirely, which is the dominant per-call cost once
        the delta itself is small.  Requires an established session
        (a prior :meth:`transform` call) and a non-truncated delta;
        raises :class:`ReproError` otherwise.  Ownership of the
        returned target is the same as for :meth:`transform`.
        """
        if self._tgd_plan is None or self._shape is None:
            raise ReproError(
                f"unsupported mapping shape: {self._shape_reason}"
            )
        if self._source is None or self._target is None:
            raise ReproError(
                "session has no base document; call transform() first"
            )
        if delta.truncated:
            raise ReproError("cannot apply a truncated delta")
        report = IncrementalReport(mode="fallback", threshold=self.threshold)
        report.grouped = self._shape.grouped
        report.delta_records = len(delta.records)
        report.changed_nodes = delta.changed_nodes
        report.delta_ratio = delta.ratio(self._size)
        if delta.is_empty:
            report.mode = "unchanged"
            report.reason = "empty delta"
            return self._target, report
        if report.delta_ratio > self.threshold:
            self._apply(delta)
            return self._full(
                self._source,
                report,
                reason=(
                    f"delta ratio {report.delta_ratio:.3f} exceeds "
                    f"threshold {self.threshold:.3f}"
                ),
                own=True,
            )
        planned = self._tgd_plan.planned
        if planned is not None:
            report.dirty_levels = tuple(
                index
                for index, level in enumerate(planned.levels)
                if _delta_touches(delta, level.read_paths, level.reads_resolved)
            )
            if not report.dirty_levels:
                # The edit lands where no level reads: the target — and
                # the cached enumeration, whose chains are level reads —
                # stay valid; only the maintained tree must catch up.
                self._apply(delta)
                report.mode = "unchanged"
                report.reason = "no level read-set intersects the delta"
                return self._target, report
        if _delta_touches(
            delta, self._shape.global_reads, self._shape.global_resolved
        ):
            self._apply(delta)
            return self._full(
                self._source,
                report,
                reason="delta intersects document-scoped reads of nested levels",
                own=True,
            )
        touched = delta.tag_paths()
        self._applied = False
        try:
            return self._scoped(delta, touched, report)
        except ReproError as exc:
            reason = f"scoped re-execution unavailable: {exc}"
            if not self._applied:
                self._apply(delta)
            # The maintained tree already matches the edited document
            # bytewise; recompute over it so state stays aligned.
            return self._full(self._source, report, reason=reason, own=True)

    # -- internals ------------------------------------------------------

    def _full(
        self,
        source: XmlElement,
        report: IncrementalReport,
        *,
        reason: str,
        own: bool = False,
    ) -> tuple[XmlElement, IncrementalReport]:
        report.mode = "fallback"
        report.reason = reason
        base = source if own else source.copy()
        target = self.plan.run(base)
        if self._memo is not None and not own:
            # A new document wholesale: every document-scoped entry is
            # stale.  (``own`` re-runs over the maintained tree, whose
            # entries were already invalidated per delta.)
            self._memo.clear()
        self._source = base
        self._size = base.size()
        self._target = target
        self._refresh()
        return target, report

    def _refresh(self) -> None:
        """Re-derive the cached old side (environments, signatures,
        grouping keys) from the maintained source."""
        assert self._shape is not None and self._tgd_plan is not None
        assert self._source is not None
        root = self._shape.root
        gens = root.source_gens
        engine = _make_engine(self._tgd_plan, self._source, self._memo)
        self._envs = engine._enumerate(root, {})
        signer = _Signer()
        self._sigs = [signer.env_signature(gens, env) for env in self._envs]
        if self._shape.grouped:
            _, skolem_app = root.skolem
            self._keys = [
                engine._group_key(root, skolem_app, env) for env in self._envs
            ]
        else:
            self._keys = None

    def _apply(self, delta: Delta) -> None:
        """Apply a delta to the maintained tree, dropping exactly the
        caches it could have invalidated."""
        assert self._source is not None
        touched_nodes = apply_delta_in_place(self._source, delta)
        index = index_for(self._source)
        for node in touched_nodes:
            index.invalidate(node)
        if self._memo is not None:
            self._memo.invalidate(*delta.tag_paths_by_kind())
        if any(
            record.op not in ("mutate-attribute", "mutate-text")
            for record in delta.records
        ):
            self._size = self._source.size()
        self._applied = True

    def _scoped(
        self, delta: Delta, touched: set, report: IncrementalReport
    ) -> tuple[XmlElement, IncrementalReport]:
        assert self._shape is not None and self._tgd_plan is not None
        assert self._source is not None and self._target is not None
        shape = self._shape
        root = shape.root
        suffix = shape.suffix
        fragment_tag = suffix[0].expr.label
        gens = root.source_gens

        try:
            dirty = _DirtyIndex(self._source, delta, shape.var_reads)
        except XmlError as exc:
            raise ReproError(f"delta does not resolve: {exc}") from exc
        old_envs, old_sigs = self._envs, self._sigs
        old_dirty = [dirty.env_dirty(env, gens) for env in old_envs]

        prev_target = self._target
        if prev_target.tag != self._tgd_plan.tgd.target_root:
            raise ReproError("previous target root does not match the plan")
        prev_parent = prev_target
        for gen in shape.prefix:
            found = prev_parent.find(gen.expr.label)
            if found is None:
                raise ReproError("previous target lacks the root wrapper chain")
            prev_parent = found
        fragments = prev_parent.children

        old_groups: dict[tuple, list[int]] = {}
        old_fragment_of: dict[tuple, XmlElement] = {}
        if shape.grouped:
            assert self._keys is not None
            for index, key in enumerate(self._keys):
                old_groups.setdefault(key, []).append(index)
            if [c.tag for c in fragments] != [fragment_tag] * len(old_groups):
                raise ReproError("previous target does not align with plan output")
            old_fragment_of = {
                key: fragments[position]
                for position, key in enumerate(old_groups)
            }
        elif [c.tag for c in fragments] != [fragment_tag] * len(old_envs):
            raise ReproError("previous target does not align with plan output")

        # Validation done — from here on the maintained tree advances.
        structural = any(
            record.op not in ("mutate-attribute", "mutate-text")
            for record in delta.records
        )
        old_by_ids = {
            tuple(id(env[gen.var]) for gen in gens): index
            for index, env in enumerate(old_envs)
        }
        self._apply(delta)
        new_engine = _make_engine(self._tgd_plan, self._source, self._memo)
        new_envs = new_engine._enumerate(root, {})
        # In-place application preserves binding identities, so per-unit
        # derivations carry over from the previous call: a mutate-only
        # delta moves no node, keeping structural signatures valid; and
        # a clean unit's grouping key reads only chains the delta never
        # touched (``old_dirty`` covers every read of the unit).
        signer = _Signer()
        old_keys = self._keys
        new_sigs: list[tuple] = []
        new_keys: Optional[list[tuple]] = [] if shape.grouped else None
        if shape.grouped:
            _, skolem_app = root.skolem
        for env in new_envs:
            index = old_by_ids.get(tuple(id(env[gen.var]) for gen in gens))
            if index is not None and not structural:
                new_sigs.append(old_sigs[index])
            else:
                new_sigs.append(signer.env_signature(gens, env))
            if new_keys is None:
                continue
            if index is not None and old_keys is not None and not old_dirty[index]:
                new_keys.append(old_keys[index])
            else:
                new_keys.append(new_engine._group_key(root, skolem_app, env))

        if shape.prefix and new_envs:
            (base_env,) = new_engine._materialize_targets(shape.prefix, {})
            out_parent = base_env[shape.prefix[-1].var]
        else:
            base_env = {}
            out_parent = new_engine.target_root
        out = new_engine.target_root

        def take(fragment: XmlElement) -> None:
            # Move, not copy: the previous target belongs to the session
            # and is dismantled by this call (see the class docstring).
            parent = fragment.parent
            if parent is not None:
                parent.remove(fragment)
            out_parent.append(fragment)

        if not shape.grouped:
            clean: dict[tuple, int] = {
                sig: index
                for index, sig in enumerate(old_sigs)
                if not old_dirty[index]
            }
            report.total_units = len(new_envs)
            for env, sig in zip(new_envs, new_sigs):
                match = clean.get(sig)
                if match is not None:
                    take(fragments[match])
                    report.reused_units += 1
                    continue
                report.recomputed_units += 1
                (iter_env,) = new_engine._materialize_targets(suffix, base_env)
                for assignment in root.assignments:
                    new_engine._apply_assignment(assignment, env, iter_env)
                for sub in root.submappings:
                    new_engine._run_mapping(sub, env, iter_env)
        else:
            assert new_keys is not None
            new_groups: dict[tuple, list[dict]] = {}
            new_group_sigs: dict[tuple, list[tuple]] = {}
            for env, sig, key in zip(new_envs, new_sigs, new_keys):
                new_groups.setdefault(key, []).append(env)
                new_group_sigs.setdefault(key, []).append(sig)
            report.total_units = len(new_groups)
            for key, members in new_groups.items():
                old_members = old_groups.get(key)
                untouched = (
                    old_members is not None
                    and not any(old_dirty[i] for i in old_members)
                    and [old_sigs[i] for i in old_members] == new_group_sigs[key]
                )
                if untouched:
                    take(old_fragment_of[key])
                    report.reused_units += 1
                    continue
                report.recomputed_units += 1
                group_env = _group_members(gens, members)
                (iter_env,) = new_engine._materialize_targets(
                    suffix, base_env, group_key=key
                )
                for assignment in root.assignments:
                    new_engine._apply_assignment(assignment, group_env, iter_env)
                for sub in root.submappings:
                    new_engine._run_mapping(sub, group_env, iter_env)

        self._target = out
        self._envs = new_envs
        self._sigs = new_sigs
        self._keys = new_keys
        report.mode = "scoped"
        report.reason = (
            "per-group fragments spliced"
            if shape.grouped
            else "per-binding fragments spliced"
        )
        return out, report
