"""The compiled-plan cache: one compile per ``(mapping, engine)``.

A serving loop retrieves the plan for every document it applies; the
cache turns all but the first retrieval into a dictionary hit.  Keys
are the structural fingerprints of :func:`repro.runtime.plan.fingerprint`,
so the cache sees through object identity — the same mapping document
loaded twice compiles once — while any structural edit compiles fresh.

The cache is thread-safe (one lock around the table and counters) and
bounded: least-recently-used plans are evicted beyond ``maxsize``.
:class:`CacheStats` feeds the batch metrics report — hits, misses,
evictions, and the seconds spent compiling on misses.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..core.mapping import ClipMapping
from .plan import CompiledPlan, compile_plan, fingerprint


@dataclass
class CacheStats:
    """Cumulative counters for one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    compile_seconds: float = 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            self.hits, self.misses, self.evictions, self.compile_seconds
        )

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "compile_seconds": self.compile_seconds,
        }


class PlanCache:
    """An LRU cache of :class:`CompiledPlan` keyed by fingerprint."""

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("maxsize must be a positive integer")
        self.maxsize = maxsize
        self._plans: OrderedDict[str, CompiledPlan] = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()

    @property
    def stats(self) -> CacheStats:
        """A point-in-time copy of the counters."""
        with self._lock:
            return self._stats.snapshot()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, fp: str) -> bool:
        with self._lock:
            return fp in self._plans

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def put(self, plan: CompiledPlan) -> None:
        """Seed the cache with an externally compiled plan (e.g. a
        pipeline reusing its transformers' compiled tgds)."""
        with self._lock:
            self._stats.compile_seconds += plan.compile_seconds
            self._plans[plan.fingerprint] = plan
            self._plans.move_to_end(plan.fingerprint)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self._stats.evictions += 1

    def peek(self, fp: str) -> Optional[CompiledPlan]:
        """The cached plan for a fingerprint without touching the
        hit/miss counters or the LRU order.

        Observability callers (the service's mapping-detail endpoint,
        diagnostics) use this so that *inspecting* the cache never
        perturbs the statistics that serving traffic reports.
        """
        with self._lock:
            return self._plans.get(fp)

    def lookup(self, fp: str) -> Optional[CompiledPlan]:
        """The cached plan for a fingerprint, or ``None`` (counts as a
        hit or miss)."""
        with self._lock:
            plan = self._plans.get(fp)
            if plan is None:
                self._stats.misses += 1
                return None
            self._plans.move_to_end(fp)
            self._stats.hits += 1
            return plan

    def get_or_compile(
        self,
        mapping: ClipMapping,
        engine: str = "tgd",
        *,
        require_valid: bool = True,
        fp: Optional[str] = None,
        optimize: Optional[bool] = None,
        exec_mode: Optional[str] = None,
    ) -> CompiledPlan:
        """The plan for ``(mapping, engine, optimize, exec_mode)``,
        compiling on first use.

        Callers applying one mapping to many documents should compute
        ``fp = fingerprint(mapping, engine, optimize=…, exec_mode=…)``
        once and pass it in: the per-document retrieval is then a pure
        dictionary hit.  The fingerprint covers the ``optimize`` flag
        and the execution mode, so optimized, naive, and codegen plans
        for the same mapping coexist without collisions.
        """
        if fp is None:
            fp = fingerprint(mapping, engine, optimize=optimize, exec_mode=exec_mode)
        plan = self.lookup(fp)
        if plan is not None:
            return plan
        # Compile outside the lock: deterministic, so a concurrent
        # duplicate compile is wasted work but not an error.
        plan = compile_plan(
            mapping, engine, require_valid=require_valid, fp=fp,
            optimize=optimize, exec_mode=exec_mode,
        )
        with self._lock:
            self._stats.compile_seconds += plan.compile_seconds
            self._plans[fp] = plan
            self._plans.move_to_end(fp)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self._stats.evictions += 1
        return plan


#: The process-wide default cache: independent runners and CLI calls
#: within one process share compiled plans.
_DEFAULT_CACHE = PlanCache()


def default_cache() -> PlanCache:
    """The process-wide default :class:`PlanCache`."""
    return _DEFAULT_CACHE


def get_plan(
    mapping: ClipMapping,
    engine: str = "tgd",
    *,
    require_valid: bool = True,
) -> CompiledPlan:
    """Retrieve (compiling at most once) a plan from the default cache."""
    return _DEFAULT_CACHE.get_or_compile(
        mapping, engine, require_valid=require_valid
    )
