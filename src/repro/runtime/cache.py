"""The compiled-plan cache: one compile per ``(mapping, engine)``.

A serving loop retrieves the plan for every document it applies; the
cache turns all but the first retrieval into a dictionary hit.  Keys
are the structural fingerprints of :func:`repro.runtime.plan.fingerprint`,
so the cache sees through object identity — the same mapping document
loaded twice compiles once — while any structural edit compiles fresh.

With *canonicalization* enabled (``PlanCache(canonicalize=True)`` or
the ``CLIP_CACHE_CANONICALIZE`` environment flag), keys are the
semantic fingerprints of :func:`repro.runtime.plan.canonical_fingerprint`
instead: mappings that differ only by bound-variable renaming or
``where``-conjunct order — which provably produce byte-identical
output — share one compiled plan.  The ``canonical_hits`` /
``canonical_misses`` counters report how often the canonical key paid
off, separately from the raw hit/miss totals.

The cache is thread-safe (one lock around the table and counters) and
bounded: least-recently-used plans are evicted beyond ``maxsize``.
:class:`CacheStats` feeds the batch metrics report — hits, misses,
evictions, and the seconds spent compiling on misses.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..core.mapping import ClipMapping
from .plan import CompiledPlan, canonical_fingerprint, compile_plan, fingerprint

#: Environment flag turning canonical cache keys on by default.
CANONICALIZE_ENV = "CLIP_CACHE_CANONICALIZE"

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off")


def resolve_canonicalize(value: Optional[bool] = None) -> bool:
    """Resolve a canonicalization request against the environment.

    ``True``/``False`` win outright; ``None`` defers to
    ``CLIP_CACHE_CANONICALIZE`` (default: off, preserving the
    structural-fingerprint behaviour existing deployments key on).
    """
    if value is not None:
        return bool(value)
    raw = os.environ.get(CANONICALIZE_ENV)
    if raw is None:
        return False
    lowered = raw.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY or lowered == "":
        return False
    raise ValueError(
        f"unrecognized {CANONICALIZE_ENV}={raw!r}; use one of "
        f"{_TRUTHY + _FALSY}"
    )


@dataclass
class CacheStats:
    """Cumulative counters for one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    compile_seconds: float = 0.0
    #: Lookups resolved through a *canonical* key (only counted when
    #: the cache canonicalizes): a canonical hit on a structurally new
    #: mapping is exactly one compile saved by the algebra.
    canonical_hits: int = 0
    canonical_misses: int = 0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            self.hits,
            self.misses,
            self.evictions,
            self.compile_seconds,
            self.canonical_hits,
            self.canonical_misses,
        )

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "compile_seconds": self.compile_seconds,
            "canonical_hits": self.canonical_hits,
            "canonical_misses": self.canonical_misses,
        }


class PlanCache:
    """An LRU cache of :class:`CompiledPlan` keyed by fingerprint."""

    def __init__(self, maxsize: int = 128, *, canonicalize: Optional[bool] = None):
        if maxsize < 1:
            raise ValueError("maxsize must be a positive integer")
        self.maxsize = maxsize
        #: Whether :meth:`get_or_compile` keys plans by canonical
        #: (semantic) fingerprints instead of structural ones.
        self.canonicalize = resolve_canonicalize(canonicalize)
        self._plans: OrderedDict[str, CompiledPlan] = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()

    @property
    def stats(self) -> CacheStats:
        """A point-in-time copy of the counters."""
        with self._lock:
            return self._stats.snapshot()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, fp: str) -> bool:
        with self._lock:
            return fp in self._plans

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def fingerprint_for(
        self,
        mapping: ClipMapping,
        engine: str = "tgd",
        *,
        optimize: Optional[bool] = None,
        exec_mode: Optional[str] = None,
    ) -> str:
        """The key this cache would use for a mapping: canonical when
        the cache canonicalizes, structural otherwise."""
        if self.canonicalize:
            return canonical_fingerprint(
                mapping, engine, optimize=optimize, exec_mode=exec_mode
            )
        return fingerprint(mapping, engine, optimize=optimize, exec_mode=exec_mode)

    def put(self, plan: CompiledPlan) -> None:
        """Seed the cache with an externally compiled plan (e.g. a
        pipeline reusing its transformers' compiled tgds)."""
        with self._lock:
            self._stats.compile_seconds += plan.compile_seconds
            self._plans[plan.fingerprint] = plan
            self._plans.move_to_end(plan.fingerprint)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self._stats.evictions += 1

    def peek(self, fp: str) -> Optional[CompiledPlan]:
        """The cached plan for a fingerprint without touching the
        hit/miss counters or the LRU order.

        Observability callers (the service's mapping-detail endpoint,
        diagnostics) use this so that *inspecting* the cache never
        perturbs the statistics that serving traffic reports.
        """
        with self._lock:
            return self._plans.get(fp)

    def lookup(self, fp: str) -> Optional[CompiledPlan]:
        """The cached plan for a fingerprint, or ``None`` (counts as a
        hit or miss)."""
        with self._lock:
            plan = self._plans.get(fp)
            if plan is None:
                self._stats.misses += 1
                return None
            self._plans.move_to_end(fp)
            self._stats.hits += 1
            return plan

    def _count_canonical(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self._stats.canonical_hits += 1
            else:
                self._stats.canonical_misses += 1

    def get_or_compile(
        self,
        mapping: ClipMapping,
        engine: str = "tgd",
        *,
        require_valid: bool = True,
        fp: Optional[str] = None,
        optimize: Optional[bool] = None,
        exec_mode: Optional[str] = None,
        count_canonical: Optional[bool] = None,
    ) -> CompiledPlan:
        """The plan for ``(mapping, engine, optimize, exec_mode)``,
        compiling on first use.

        Callers applying one mapping to many documents should compute
        the key once via :meth:`fingerprint_for` and pass it in: the
        per-document retrieval is then a pure dictionary hit.  The
        fingerprint covers the ``optimize`` flag and the execution
        mode, so optimized, naive, and codegen plans for the same
        mapping coexist without collisions.

        When the cache canonicalizes and no ``fp`` is supplied, the key
        is the canonical fingerprint: an alpha-renamed variant of an
        already-compiled mapping is served the existing plan (sound —
        such variants produce byte-identical output) and counted as a
        canonical hit.  A caller that computed the canonical key itself
        via :meth:`fingerprint_for` (the service's registration path)
        passes ``count_canonical=True`` to opt into the same counting;
        per-document retrievals leave it unset so serving traffic never
        inflates the compiles-saved metric.
        """
        if count_canonical is None:
            canonical_key = fp is None and self.canonicalize
        else:
            canonical_key = count_canonical and self.canonicalize
        if fp is None:
            fp = self.fingerprint_for(
                mapping, engine, optimize=optimize, exec_mode=exec_mode
            )
        plan = self.lookup(fp)
        if canonical_key:
            self._count_canonical(plan is not None)
        if plan is not None:
            return plan
        # Compile outside the lock: deterministic, so a concurrent
        # duplicate compile is wasted work but not an error.
        plan = compile_plan(
            mapping, engine, require_valid=require_valid, fp=fp,
            optimize=optimize, exec_mode=exec_mode,
        )
        with self._lock:
            self._stats.compile_seconds += plan.compile_seconds
            self._plans[fp] = plan
            self._plans.move_to_end(fp)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self._stats.evictions += 1
        return plan


#: The process-wide default cache: independent runners and CLI calls
#: within one process share compiled plans.
_DEFAULT_CACHE = PlanCache()


def default_cache() -> PlanCache:
    """The process-wide default :class:`PlanCache`."""
    return _DEFAULT_CACHE


def get_plan(
    mapping: ClipMapping,
    engine: str = "tgd",
    *,
    require_valid: bool = True,
) -> CompiledPlan:
    """Retrieve (compiling at most once) a plan from the default cache."""
    return _DEFAULT_CACHE.get_or_compile(
        mapping, engine, require_valid=require_valid
    )
