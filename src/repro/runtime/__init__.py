"""Batch execution runtime: compile once, run everywhere, survive faults.

The paper compiles a Clip mapping into executable artifacts (nested
tgd, XQuery, XSLT) exactly once and then applies them to any number of
instance documents.  This package is the serving-side realization of
that split:

* :mod:`repro.runtime.plan` — :class:`CompiledPlan` (the once-per-
  mapping work, reified) and the structural :func:`fingerprint` that
  identifies it;
* :mod:`repro.runtime.cache` — :class:`PlanCache`, an LRU keyed on
  fingerprints with hit/miss/compile-time accounting;
* :mod:`repro.runtime.batch` — :class:`BatchRunner`, order-preserving
  document fan-out across a process pool (deterministic in-process
  path for ``workers=1``) with per-document fault isolation and
  pool-crash recovery;
* :mod:`repro.runtime.faults` — :class:`ErrorPolicy`
  (``fail_fast``/``skip``/``collect``), :class:`DocumentFailure`
  records, dead-letter persistence, and the deterministic
  :class:`FaultInjector` test harness;
* :mod:`repro.runtime.retry` — :class:`RetryPolicy` (deterministic
  exponential backoff, per-document timeout) and transient-vs-
  permanent error triage;
* :mod:`repro.runtime.metrics` — :class:`BatchMetrics`, the machine-
  readable per-run report (``--metrics-json``), format version 2;
* :mod:`repro.runtime.incremental` — :func:`transform_delta`, delta-
  scoped re-execution of a compiled plan over an edited document: only
  the units a :class:`~repro.xml.diff.Delta` can reach are recomputed,
  the rest of the previous target is spliced back in, byte-identical
  to a full recompute either way;
* :mod:`repro.runtime.trace` — :class:`SpanTracer`, deterministic
  hierarchical execution traces (the ``clip-trace`` format) spanning
  compile → plan → execute → render across every layer, with worker-
  process span merging; :mod:`repro.runtime.traceview` renders them
  as Chrome ``trace_event`` JSON or indented text.

Quickstart::

    from repro.runtime import BatchRunner
    from repro.scenarios import deptstore

    runner = BatchRunner(
        deptstore.mapping_fig4(), workers=4,
        error_policy="collect", max_retries=2, timeout=5.0,
    )
    batch = runner.run(documents)          # list or iterator
    print(batch.metrics.to_json())         # hits, failures, timings…
    for result in batch:                   # input order preserved
        ...
    for letter in batch.dead_letters:      # failed inputs, for replay
        print(letter.failure)
"""

from __future__ import annotations

from .batch import BatchResult, BatchRunner
from .cache import CacheStats, PlanCache, default_cache, get_plan
from .faults import (
    DeadLetter,
    DocumentFailure,
    ErrorPolicy,
    Fault,
    FaultInjector,
    write_dead_letters,
)
from .incremental import (
    DEFAULT_THRESHOLD,
    IncrementalReport,
    IncrementalSession,
    transform_delta,
)
from .metrics import (
    METRICS_FORMAT,
    METRICS_VERSION,
    PARSEABLE_VERSIONS,
    BatchMetrics,
    StageMetrics,
)
from .plan import (
    ENGINES,
    CompiledPlan,
    canonical_fingerprint,
    compile_plan,
    eligible_engines,
    fingerprint,
    plan_from_tgd,
    trace_seed,
)
from .retry import Deadline, RetryPolicy, call_with_timeout, is_transient
from .trace import (
    PARSEABLE_TRACE_VERSIONS,
    TRACE_FORMAT,
    TRACE_VERSION,
    NullTracer,
    Span,
    SpanTracer,
    Trace,
    combine_seeds,
    span_id,
)
from .traceview import render_tree, to_chrome_trace

__all__ = [
    "ENGINES",
    "BatchMetrics",
    "BatchResult",
    "BatchRunner",
    "CacheStats",
    "CompiledPlan",
    "DEFAULT_THRESHOLD",
    "DeadLetter",
    "Deadline",
    "DocumentFailure",
    "ErrorPolicy",
    "Fault",
    "FaultInjector",
    "IncrementalReport",
    "IncrementalSession",
    "METRICS_FORMAT",
    "METRICS_VERSION",
    "NullTracer",
    "PARSEABLE_TRACE_VERSIONS",
    "PARSEABLE_VERSIONS",
    "PlanCache",
    "RetryPolicy",
    "Span",
    "SpanTracer",
    "StageMetrics",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Trace",
    "call_with_timeout",
    "canonical_fingerprint",
    "combine_seeds",
    "compile_plan",
    "default_cache",
    "eligible_engines",
    "fingerprint",
    "get_plan",
    "is_transient",
    "plan_from_tgd",
    "render_tree",
    "span_id",
    "to_chrome_trace",
    "trace_seed",
    "transform_delta",
    "write_dead_letters",
]
