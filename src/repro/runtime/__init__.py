"""Batch execution runtime: compile once, run everywhere.

The paper compiles a Clip mapping into executable artifacts (nested
tgd, XQuery, XSLT) exactly once and then applies them to any number of
instance documents.  This package is the serving-side realization of
that split:

* :mod:`repro.runtime.plan` — :class:`CompiledPlan` (the once-per-
  mapping work, reified) and the structural :func:`fingerprint` that
  identifies it;
* :mod:`repro.runtime.cache` — :class:`PlanCache`, an LRU keyed on
  fingerprints with hit/miss/compile-time accounting;
* :mod:`repro.runtime.batch` — :class:`BatchRunner`, order-preserving
  document fan-out across a process pool (deterministic in-process
  path for ``workers=1``);
* :mod:`repro.runtime.metrics` — :class:`BatchMetrics`, the machine-
  readable per-run report (``--metrics-json``).

Quickstart::

    from repro.runtime import BatchRunner
    from repro.scenarios import deptstore

    runner = BatchRunner(deptstore.mapping_fig4(), workers=4)
    batch = runner.run(documents)          # list or iterator
    print(batch.metrics.to_json())         # hits, misses, timings…
    for result in batch:                   # input order preserved
        ...
"""

from __future__ import annotations

from .batch import BatchResult, BatchRunner
from .cache import CacheStats, PlanCache, default_cache, get_plan
from .metrics import (
    METRICS_FORMAT,
    METRICS_VERSION,
    BatchMetrics,
    StageMetrics,
)
from .plan import ENGINES, CompiledPlan, compile_plan, fingerprint, plan_from_tgd

__all__ = [
    "ENGINES",
    "BatchMetrics",
    "BatchResult",
    "BatchRunner",
    "CacheStats",
    "CompiledPlan",
    "METRICS_FORMAT",
    "METRICS_VERSION",
    "PlanCache",
    "StageMetrics",
    "compile_plan",
    "default_cache",
    "fingerprint",
    "get_plan",
    "plan_from_tgd",
]
