"""Command-line interface: ``python -m repro <command>``.

The CLI drives the full pipeline from the shell, on mapping documents
saved by :mod:`repro.io`:

* ``show MAPPING.json`` — render the diagram, validity report and tgd;
* ``validate MAPPING.json`` — check the Section III rules (exit 1 if
  invalid);
* ``xquery MAPPING.json`` — print the generated XQuery;
* ``xslt MAPPING.json`` — print the generated XSLT stylesheet;
* ``run MAPPING.json SOURCE.xml [-o OUT.xml] [--engine tgd|xquery]
  [--no-optimize] [--exec-mode interp|codegen] [--trace-json PATH]
  [--incremental PREV_SOURCE PREV_TARGET] [--baseline]
  [--compose SECOND.json]`` —
  transform an instance, optionally recording a ``clip-trace``
  execution trace; with ``--incremental``, treat SOURCE as an edited
  document and re-transform it delta-scoped against the previous
  run's source/target pair (``--baseline`` additionally times the
  full recompute and checks byte-identity); with ``--compose``,
  chain a second ``B→C`` mapping — fused into one pass when the pair
  composes algebraically, sequential otherwise, identical bytes
  either way;
* ``compose FIRST.json SECOND.json [SOURCE.xml] [-o OUT.xml]
  [--engine E] [--verify]`` — fuse an ``A→B`` and a ``B→C`` mapping
  (:mod:`repro.algebra`): print the composed nested tgd (or the
  sequential-fallback reason), optionally transform an instance
  through it, and with ``--verify`` check the result byte-for-byte
  against running the two stages in sequence;
* ``explain MAPPING.json SOURCE.xml [--json] [--no-optimize]
  [--exec-mode interp|codegen]`` — print the compiled tgd plan (hash
  joins, pushed filters, generator order) and its runtime counters for
  one document, as text or as a ``clip-plan-explain`` JSON document;
* ``batch MAPPING.json SOURCE.xml [SOURCE2.xml …] [--workers N]
  [--engine E] [--output-dir DIR] [--metrics-json PATH] [--validate]
  [--error-policy fail_fast|skip|collect] [--max-retries N]
  [--timeout SECONDS] [--dead-letter-dir DIR] [--no-optimize]
  [--exec-mode interp|codegen] [--trace-json PATH]``
  — transform many instances through the compiled-plan cache, with an
  optional worker pool, per-document fault isolation (retry, timeout,
  dead-lettering) and a machine-readable metrics report;
* ``trace TRACE.json [--chrome OUT.json] [--canonical]`` — inspect a
  recorded ``clip-trace`` document (or the trace embedded in a metrics
  report): span tree, Chrome ``trace_event`` conversion, or the
  canonical byte-deterministic form;
* ``lineage MAPPING.json [--source PATH | --target PATH]`` — lineage /
  impact analysis;
* ``suggest SOURCE.xsd TARGET.xsd [--threshold T]`` — schema matching
  plus generated mapping;
* ``figures [FIG]`` — reproduce the paper's figure outputs;
* ``table1`` — reproduce the Table I flexibility measurement;
* ``serve [--host H] [--port N] [--workers N] [--deadline SECONDS]
  [--dead-letter-dir DIR] [--max-inflight N] [--history N]`` — run the
  long-lived HTTP mapping service (:mod:`repro.service`): register
  mappings once, transform documents against warm compiled plans,
  scrape Prometheus metrics.  Every flag falls back to its
  ``CLIP_SERVICE_*`` environment variable, then to the documented
  default; the HMAC secret is environment-only
  (``CLIP_SERVICE_SECRET``), never a flag, so it can't leak into
  ``ps`` output.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from . import Transformer
from .core.render import render_mapping
from .core.validity import check
from .errors import ReproError
from .io import load as load_mapping
from .lineage import impact_of_source, impact_of_target, lineage, render_lineage
from .xml.parser import parse_xml
from .xml.serialize import to_ascii, to_xml


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _cmd_show(args) -> int:
    clip = load_mapping(args.mapping)
    print(render_mapping(clip))
    report = check(clip)
    print(f"\nVALIDITY: {report}")
    transformer = Transformer(clip, require_valid=False)
    print("\nNESTED TGD")
    print(transformer.tgd)
    return 0


def _cmd_validate(args) -> int:
    report = check(load_mapping(args.mapping))
    if report.is_valid:
        print("valid mapping")
        return 0
    for issue in report.errors():
        print(issue)
    return 1


def _cmd_xquery(args) -> int:
    transformer = Transformer(load_mapping(args.mapping))
    print(transformer.xquery_text)
    return 0


def _cmd_xslt(args) -> int:
    transformer = Transformer(load_mapping(args.mapping))
    print(transformer.xslt_text)
    return 0


def _write_trace(tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(tracer.to_trace().to_json())
    print(f"wrote {path}")


def _run_incremental(args, clip, transformer, instance):
    """``run --incremental``: delta-scoped re-transform of an edited
    document against the previous run's source/target pair."""
    import time

    from .runtime import transform_delta
    from .xml.diff import compute_delta

    prev_source_path, prev_target_path = args.incremental
    prev_source = parse_xml(_read(prev_source_path), schema=clip.source)
    prev_target = parse_xml(_read(prev_target_path), schema=clip.target)
    delta = compute_delta(prev_source, instance)
    started = time.perf_counter()
    result, report = transform_delta(
        transformer.plan, prev_source, prev_target, delta,
        new_source=instance,
    )
    incremental_seconds = time.perf_counter() - started
    print(
        f"incremental: mode={report.mode}"
        + (f" ({report.reason})" if report.reason else "")
        + f" records={report.delta_records}"
        f" ratio={report.delta_ratio:.3f}"
        f" units={report.reused_units}/{report.total_units} reused"
        f" in {incremental_seconds * 1000:.1f} ms",
        file=sys.stderr,
    )
    if args.baseline:
        started = time.perf_counter()
        full = transformer.plan.run(instance)
        full_seconds = time.perf_counter() - started
        identical = to_xml(full) == to_xml(result)
        speedup = (
            full_seconds / incremental_seconds
            if incremental_seconds > 0
            else float("inf")
        )
        print(
            f"baseline: full recompute in {full_seconds * 1000:.1f} ms "
            f"({speedup:.1f}x) — byte-identical: {identical}",
            file=sys.stderr,
        )
        if not identical:
            raise ReproError(
                "incremental result diverges from full recompute"
            )
    return result


def _cmd_run(args) -> int:
    clip = load_mapping(args.mapping)
    instance = parse_xml(_read(args.source), schema=clip.source)
    optimize = False if args.no_optimize else None
    tracer = None
    if args.trace_json:
        from .runtime import SpanTracer

        tracer = SpanTracer()
    transformer = Transformer(
        clip, engine=args.engine, optimize=optimize,
        exec_mode=args.exec_mode, trace=tracer,
    )
    if args.compose:
        if args.incremental:
            raise ReproError(
                "--compose and --incremental are mutually exclusive"
            )
        composed = transformer.compose(load_mapping(args.compose))
        if composed.fallback_reason:
            print(
                f"compose: sequential fallback ({composed.fallback_reason})",
                file=sys.stderr,
            )
        result = composed(instance)
    elif args.incremental:
        if args.engine != "tgd":
            raise ReproError("--incremental requires the tgd engine")
        result = _run_incremental(args, clip, transformer, instance)
    else:
        result = transformer(instance)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(to_xml(result))
        print(f"wrote {args.output} ({result.size()} elements)")
    else:
        print(to_xml(result) if args.xml else to_ascii(result))
    if tracer is not None:
        _write_trace(tracer, args.trace_json)
    return 0


def _cmd_compose(args) -> int:
    """``repro compose``: fuse two mapping documents, show the composed
    tgd, optionally transform an instance (with sequential cross-check)."""
    from .core.tgd import render_tgd

    first = load_mapping(args.first)
    second = load_mapping(args.second)
    t1 = Transformer(first, engine=args.engine)
    t2 = Transformer(second, engine=args.engine)
    composed = t1.compose(t2)
    if composed.mode == "inlined":
        print("COMPOSED NESTED TGD")
        print(render_tgd(composed.tgd))
        print(f"\nfingerprint: {composed.fingerprint}")
    else:
        print(f"sequential fallback: {composed.fallback_reason}")
    if args.source is None:
        return 0
    instance = parse_xml(_read(args.source), schema=first.source)
    result = composed(instance)
    if args.verify:
        sequential = t2(t1(instance))
        if to_xml(sequential) != to_xml(result):
            print(
                "VERIFY FAILED: composed output differs from sequential "
                "execution",
                file=sys.stderr,
            )
            return 1
        print("verified: byte-identical to sequential execution")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(to_xml(result))
        print(f"wrote {args.output} ({result.size()} elements)")
    else:
        print(to_xml(result) if args.xml else to_ascii(result))
    return 0


def _cmd_batch(args) -> int:
    import os

    from .runtime import (
        BatchRunner,
        DeadLetter,
        DocumentFailure,
        PlanCache,
        write_dead_letters,
    )

    if args.workers < 1:
        print(
            f"error: --workers must be a positive integer, got {args.workers}",
            file=sys.stderr,
        )
        return 2
    if args.max_retries < 0:
        print(
            f"error: --max-retries must be >= 0, got {args.max_retries}",
            file=sys.stderr,
        )
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print(
            f"error: --timeout must be positive, got {args.timeout}",
            file=sys.stderr,
        )
        return 2
    error_policy = args.error_policy
    if args.dead_letter_dir and error_policy != "collect":
        # A dead-letter directory only makes sense when failures are
        # collected; promote the policy rather than silently ignoring.
        error_policy = "collect"
    clip = load_mapping(args.mapping)
    # Under skip/collect an unreadable or malformed input is isolated
    # like any other per-document fault instead of aborting the batch;
    # its raw text (when readable) is what gets dead-lettered.
    documents = []
    source_index: list[int] = []
    parse_failures: list[DocumentFailure] = []
    parse_letters: list[DeadLetter] = []
    for position, path in enumerate(args.sources):
        try:
            text = _read(path)
            documents.append(parse_xml(text, schema=clip.source))
        except (OSError, ReproError) as exc:
            if error_policy == "fail_fast":
                raise
            failure = DocumentFailure.from_exception(position, exc)
            parse_failures.append(failure)
            if error_policy == "collect":
                raw = text if not isinstance(exc, OSError) else ""
                parse_letters.append(DeadLetter(failure, raw))
        else:
            source_index.append(position)
    tracer = None
    if args.trace_json:
        from .runtime import SpanTracer

        tracer = SpanTracer()
    runner = BatchRunner(
        clip,
        engine=args.engine,
        workers=args.workers,
        validate=args.validate,
        error_policy=error_policy,
        max_retries=args.max_retries,
        timeout=args.timeout,
        optimize=False if args.no_optimize else None,
        exec_mode=args.exec_mode,
        trace=tracer,
        # One cache per invocation: the metrics report then describes
        # exactly this run, not whatever the process compiled before.
        cache=PlanCache(),
    )
    batch = runner.run(documents)
    if tracer is not None:
        _write_trace(tracer, args.trace_json)
    # Runner indices address the parsed-documents list; map them back
    # to positions in ``args.sources`` (parse failures left gaps).
    for failure in batch.failures:
        failure.index = source_index[failure.index]
    all_failures = sorted(
        batch.failures + parse_failures, key=lambda failure: failure.index
    )
    all_dead_letters = sorted(
        batch.dead_letters + parse_letters,
        key=lambda letter: letter.failure.index,
    )
    succeeded = [args.sources[source_index[index]] for index in batch.success_indices]
    if args.output_dir:
        os.makedirs(args.output_dir, exist_ok=True)
        for path, result in zip(succeeded, batch):
            stem = os.path.splitext(os.path.basename(path))[0]
            out_path = os.path.join(args.output_dir, f"{stem}.out.xml")
            with open(out_path, "w", encoding="utf-8") as handle:
                handle.write(to_xml(result))
            print(f"wrote {out_path} ({result.size()} elements)")
    else:
        for path, result in zip(succeeded, batch):
            print(f"{path}: {result.size()} elements")
    metrics = batch.metrics
    metrics.failures += len(parse_failures)
    metrics.dead_letter += len(parse_letters)
    for failure in all_failures:
        print(
            f"failed: {args.sources[failure.index]}: "
            f"{failure.error}: {failure.message} "
            f"({failure.attempts} attempt{'s' if failure.attempts != 1 else ''})",
            file=sys.stderr,
        )
    if args.dead_letter_dir and all_dead_letters:
        paths = write_dead_letters(all_dead_letters, args.dead_letter_dir)
        print(
            f"dead-lettered {len(all_dead_letters)} inputs to "
            f"{args.dead_letter_dir} ({len(paths)} files)"
        )
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            handle.write(metrics.to_json())
        print(f"wrote {args.metrics_json}")
    print(
        f"transformed {metrics.documents} documents "
        f"(engine={metrics.engine}, workers={metrics.workers}, "
        f"failures={metrics.failures}, retries={metrics.retries}, "
        f"cache hits={metrics.cache_hits}, misses={metrics.cache_misses})"
    )
    if args.validate and metrics.validation_violations:
        print(
            f"validation violations: {metrics.validation_violations}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_explain(args) -> int:
    clip = load_mapping(args.mapping)
    instance = parse_xml(_read(args.source), schema=clip.source)
    optimize = False if args.no_optimize else None
    transformer = Transformer(clip, optimize=optimize, exec_mode=args.exec_mode)
    report = transformer.explain_plan(instance)
    print(report.to_json() if args.json else report.render())
    return 0


def _cmd_trace(args) -> int:
    import json

    from .runtime import METRICS_FORMAT, Trace, render_tree, to_chrome_trace

    with open(args.trace, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("format") == METRICS_FORMAT:
        # A metrics document: unwrap the embedded trace, if any.
        doc = doc.get("trace")
        if doc is None:
            print(
                f"error: {args.trace} is a {METRICS_FORMAT} document "
                "without an embedded trace (run with --trace-json or "
                "BatchRunner(trace=…))",
                file=sys.stderr,
            )
            return 2
    try:
        trace = Trace.from_dict(doc)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    emitted = False
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(to_chrome_trace(trace), handle, indent=2)
        print(f"wrote {args.chrome}")
        emitted = True
    if args.canonical:
        print(trace.canonical_json())
        emitted = True
    if not emitted:
        print(render_tree(trace))
    return 0


def _cmd_lineage(args) -> int:
    transformer = Transformer(load_mapping(args.mapping), require_valid=False)
    if args.source_path:
        entries = impact_of_source(transformer.tgd, args.source_path)
        print(f"entries affected by a change to {args.source_path}:")
    elif args.target_path:
        entries = impact_of_target(transformer.tgd, args.target_path)
        print(f"entries writing at or below {args.target_path}:")
    else:
        entries = lineage(transformer.tgd)
    print(render_lineage(entries) or "(no entries)")
    return 0


def _cmd_suggest(args) -> int:
    from .matching import bootstrap_mapping
    from .xsd.parser import parse_xsd

    source = parse_xsd(_read(args.source_xsd))
    target = parse_xsd(_read(args.target_xsd))
    matches, generation = bootstrap_mapping(
        source, target, threshold=args.threshold
    )
    if not matches:
        print("no correspondences above the threshold")
        return 1
    print("suggested value mappings:")
    for match in matches:
        print(f"  {match}")
    print("\ngenerated nested mapping:")
    print(generation.tgd)
    return 0


def _cmd_figures(args) -> int:
    from .core.compile import compile_clip
    from .executor import execute
    from .scenarios import deptstore

    names = [args.figure] if args.figure else [f.figure for f in deptstore.FIGURES]
    instance = deptstore.source_instance()
    for name in names:
        scenario = deptstore.scenario(name)
        print(f"=== {name}: {scenario.description}")
        out = execute(compile_clip(scenario.make_mapping()), instance)
        print(to_ascii(out))
        matches = out == scenario.expected() or (
            not scenario.ordered and out.equals_canonically(scenario.expected())
        )
        print(f"[matches the paper's printed output: {'yes' if matches else 'NO'}]\n")
    return 0


def _cmd_fuzz(args) -> int:
    from .fuzz import FuzzError, FuzzFarm
    from .generation import resolve_axes

    try:
        workers = tuple(int(w) for w in args.workers_csv.split(","))
    except ValueError:
        raise FuzzError(
            f"--workers expects comma-separated integers, got "
            f"{args.workers_csv!r}"
        ) from None
    exec_modes = tuple(m.strip() for m in args.exec_modes_csv.split(","))
    farm = FuzzFarm(
        workers=workers,
        exec_modes=exec_modes,
        budget_seconds=args.budget_seconds,
        dead_letter_dir=args.dead_letter_dir,
    )
    if args.replay:
        result = farm.replay(args.replay)
        combo = result.combo
        mode = "optimized" if combo.optimize else "naive"
        if combo.exec_mode != "interp":
            mode = combo.exec_mode
        print(
            f"replay {result.case_id} on {combo.engine} ({mode}, "
            f"workers={combo.workers}):"
        )
        if result.error:
            print(f"  error: {result.error}")
            return 1
        if result.diverged:
            print("  still diverges:")
            for line in result.differences[:10]:
                print(f"    {line}")
            return 1
        print("  clean: engines agree on this case now")
        return 0
    axes = resolve_axes(args.axes.split(",")) if args.axes else None
    report = farm.run_corpus(args.seed, args.count, axes=axes)
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
    executed = sum(c.executed for c in report.axis_coverage.values())
    print(
        f"fuzz: seed={report.seed} cases={executed}/{report.cases} "
        f"executions={report.executions} comparisons={report.comparisons}"
    )
    for axis, cov in sorted(report.axis_coverage.items()):
        print(
            f"  {axis:16} cases={cov.cases:4} executed={cov.executed:4} "
            f"xslt-eligible={cov.xslt_eligible:4}"
        )
    if report.exhausted_budget:
        print(f"  budget exhausted: {report.skipped} case(s) skipped")
    if report.divergences:
        print(f"DIVERGENT: {len(report.divergences)} divergence(s)")
        for d in report.divergences[:10]:
            mode = "optimized" if d.optimize else "naive"
            if d.exec_mode != "interp":
                mode = d.exec_mode
            where = f" -> {d.dead_letter}" if d.dead_letter else ""
            print(f"  {d.case_id} {d.engine} ({mode}, w{d.workers}){where}")
        return 1
    print("status: ok (no divergences)")
    return 0


def _cmd_table1(args) -> int:
    from .generation import measure_flexibility
    from .scenarios.published import TABLE1_ROWS

    print(f"{'Example':26} {'vms':>4} {'paper':>6} {'measured':>9}")
    ok = True
    for factory in TABLE1_ROWS:
        example = factory()
        result = measure_flexibility(
            example.source, example.target, list(example.value_mappings),
            example.witness,
        )
        ok = ok and result.extra >= example.paper_extra
        print(
            f"{example.row:26} {example.paper_value_mappings:>4} "
            f"{example.paper_extra:>6} {result.extra:>9}"
        )
    print("\nall rows meet the paper's lower bounds" if ok else "\nBOUND MISSED")
    return 0 if ok else 1


def _cmd_serve(args) -> int:
    from .service import ClipService, ServiceConfig, make_server

    try:
        config = ServiceConfig.resolve(
            host=args.host,
            port=args.port,
            workers=args.workers,
            deadline=args.deadline,
            dead_letter_dir=args.dead_letter_dir,
            max_inflight=args.max_inflight,
            history=args.history,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service = ClipService(config)
    server = make_server(service)
    host, port = server.server_address[:2]
    # The definitive line: with --port 0 the OS picks the port, and the
    # smoke harness parses it from here.  Flush so a piped parent sees
    # it before the first request.
    print(f"clip service listening on http://{host}:{port}", flush=True)
    if config.secret is not None:
        print("request signing: required (X-Clip-Signature)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clip schema mappings: compile, validate, run, analyze.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    show = commands.add_parser("show", help="render a mapping document")
    show.add_argument("mapping")
    show.set_defaults(handler=_cmd_show)

    validate = commands.add_parser("validate", help="check Section III validity")
    validate.add_argument("mapping")
    validate.set_defaults(handler=_cmd_validate)

    xquery = commands.add_parser("xquery", help="print the generated XQuery")
    xquery.add_argument("mapping")
    xquery.set_defaults(handler=_cmd_xquery)

    xslt = commands.add_parser("xslt", help="print the generated XSLT")
    xslt.add_argument("mapping")
    xslt.set_defaults(handler=_cmd_xslt)

    run = commands.add_parser("run", help="transform a source instance")
    run.add_argument("mapping")
    run.add_argument("source")
    run.add_argument("-o", "--output", default=None)
    run.add_argument("--engine", choices=("tgd", "xquery", "xslt"), default="tgd")
    run.add_argument("--xml", action="store_true", help="print XML instead of a tree")
    run.add_argument(
        "--no-optimize", action="store_true",
        help="evaluate through the naive reference path instead of the "
             "join-aware compiled plan (tgd engine only)",
    )
    run.add_argument(
        "--exec-mode", choices=("interp", "codegen"), default=None,
        help="execution mode for the optimized tgd plan: interpret the "
             "compiled plan (interp) or run specialized generated Python "
             "(codegen); default follows CLIP_EXEC_MODE (interp)",
    )
    run.add_argument(
        "--trace-json", default=None, metavar="PATH",
        help="record an execution trace (compile/prepare/execute spans) "
             "and write the clip-trace JSON document here",
    )
    run.add_argument(
        "--incremental", nargs=2, default=None,
        metavar=("PREV_SOURCE", "PREV_TARGET"),
        help="delta-scoped re-transform (tgd engine only): SOURCE is the "
             "edited document; reuse the previous run's source/target "
             "pair and recompute only what the edit can reach",
    )
    run.add_argument(
        "--baseline", action="store_true",
        help="with --incremental: also run the full recompute, check "
             "byte-identity, and report both timings",
    )
    run.add_argument(
        "--compose", default=None, metavar="SECOND.json",
        help="chain a second (B→C) mapping: transform straight to C "
             "through the fused one-pass plan when the pair composes "
             "algebraically, or the two stages in sequence when not — "
             "byte-identical either way",
    )
    run.set_defaults(handler=_cmd_run)

    compose_cmd = commands.add_parser(
        "compose",
        help="fuse an A→B and a B→C mapping into one A→C transform",
    )
    compose_cmd.add_argument("first", help="the A→B mapping document")
    compose_cmd.add_argument("second", help="the B→C mapping document")
    compose_cmd.add_argument(
        "source", nargs="?", default=None,
        help="optional A instance to transform through the composition",
    )
    compose_cmd.add_argument("-o", "--output", default=None)
    compose_cmd.add_argument(
        "--engine", choices=("tgd", "xquery", "xslt"), default="tgd"
    )
    compose_cmd.add_argument(
        "--xml", action="store_true", help="print XML instead of a tree"
    )
    compose_cmd.add_argument(
        "--verify", action="store_true",
        help="also run the two stages sequentially and check the "
             "composed output is byte-identical",
    )
    compose_cmd.set_defaults(handler=_cmd_compose)

    explain_cmd = commands.add_parser(
        "explain", help="print the compiled tgd plan and its statistics"
    )
    explain_cmd.add_argument("mapping")
    explain_cmd.add_argument("source")
    explain_cmd.add_argument(
        "--json", action="store_true",
        help="emit the clip-plan-explain JSON document instead of text",
    )
    explain_cmd.add_argument(
        "--no-optimize", action="store_true",
        help="describe the plan but execute the naive reference path "
             "(runtime counters stay zero)",
    )
    explain_cmd.add_argument(
        "--exec-mode", choices=("interp", "codegen"), default=None,
        help="execution mode for the optimized tgd plan; codegen adds a "
             "codegen section (source hash, line count, compile time)",
    )
    explain_cmd.set_defaults(handler=_cmd_explain)

    batch = commands.add_parser(
        "batch", help="transform many source instances via the plan cache"
    )
    batch.add_argument("mapping")
    batch.add_argument("sources", nargs="+", metavar="source")
    batch.add_argument("--workers", type=int, default=1)
    batch.add_argument("--engine", choices=("tgd", "xquery", "xslt"), default="tgd")
    batch.add_argument("--output-dir", default=None)
    batch.add_argument(
        "--metrics-json", default=None,
        help="write the machine-readable run metrics to this path",
    )
    batch.add_argument(
        "--validate", action="store_true",
        help="validate outputs against the target schema (exit 1 on violations)",
    )
    batch.add_argument(
        "--error-policy", choices=("fail_fast", "skip", "collect"),
        default="fail_fast",
        help="per-document failure handling: abort the batch (fail_fast, "
             "default), drop failed documents (skip), or record failures "
             "and keep their inputs for replay (collect)",
    )
    batch.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="re-attempt transiently failing documents up to N times "
             "(deterministic exponential backoff)",
    )
    batch.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-document evaluation wall-clock budget; overruns count "
             "as transient failures",
    )
    batch.add_argument(
        "--dead-letter-dir", default=None, metavar="DIR",
        help="write failed inputs and a failures.json manifest here "
             "(implies --error-policy collect)",
    )
    batch.add_argument(
        "--no-optimize", action="store_true",
        help="evaluate through the naive reference path instead of the "
             "join-aware compiled plan (tgd engine only)",
    )
    batch.add_argument(
        "--exec-mode", choices=("interp", "codegen"), default=None,
        help="execution mode for the optimized tgd plan: interpret the "
             "compiled plan (interp) or run specialized generated Python "
             "(codegen); default follows CLIP_EXEC_MODE (interp)",
    )
    batch.add_argument(
        "--trace-json", default=None, metavar="PATH",
        help="record per-document execution spans (merged across "
             "workers) and write the clip-trace JSON document here; "
             "the metrics report embeds the same trace",
    )
    batch.set_defaults(handler=_cmd_batch)

    trace_cmd = commands.add_parser(
        "trace", help="inspect a recorded clip-trace document"
    )
    trace_cmd.add_argument(
        "trace",
        help="a clip-trace JSON file (--trace-json) or a "
             "clip-batch-metrics file with an embedded trace",
    )
    trace_cmd.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="convert to Chrome trace_event JSON (chrome://tracing, "
             "Perfetto) and write it here",
    )
    trace_cmd.add_argument(
        "--canonical", action="store_true",
        help="print the canonical byte-deterministic form (timestamps "
             "stripped) instead of the span tree",
    )
    trace_cmd.set_defaults(handler=_cmd_trace)

    lineage_cmd = commands.add_parser("lineage", help="lineage / impact analysis")
    lineage_cmd.add_argument("mapping")
    lineage_cmd.add_argument("--source", dest="source_path", default=None)
    lineage_cmd.add_argument("--target", dest="target_path", default=None)
    lineage_cmd.set_defaults(handler=_cmd_lineage)

    suggest = commands.add_parser("suggest", help="schema matching + generation")
    suggest.add_argument("source_xsd")
    suggest.add_argument("target_xsd")
    suggest.add_argument("--threshold", type=float, default=0.45)
    suggest.set_defaults(handler=_cmd_suggest)

    figures = commands.add_parser("figures", help="reproduce paper figures")
    figures.add_argument("figure", nargs="?", default=None)
    figures.set_defaults(handler=_cmd_figures)

    table1 = commands.add_parser("table1", help="reproduce Table I")
    table1.set_defaults(handler=_cmd_table1)

    fuzz = commands.add_parser(
        "fuzz",
        help="differential fuzz: seeded corpus through every engine and "
             "optimizer mode, dead-lettering divergences",
    )
    fuzz.add_argument("--seed", type=int, default=7)
    fuzz.add_argument(
        "--count", type=int, default=100,
        help="number of corpus cases to generate (round-robin over axes)",
    )
    fuzz.add_argument(
        "--axes", default=None, metavar="A,B,…",
        help="comma-separated corpus axes to restrict to (default: all)",
    )
    fuzz.add_argument(
        "--budget-seconds", type=float, default=None, metavar="SECONDS",
        help="stop checking new cases once this much wall clock has "
             "elapsed; skipped cases are reported honestly",
    )
    fuzz.add_argument(
        "--workers", default="1", metavar="N,M,…",
        dest="workers_csv",
        help="comma-separated worker counts; counts above 1 cross-check "
             "the process-pool path (slower)",
    )
    fuzz.add_argument(
        "--exec-modes", default="interp,codegen", metavar="M,N",
        dest="exec_modes_csv",
        help="comma-separated execution modes to sweep; codegen "
             "cross-checks the generated-Python backend against the "
             "interpreted reference (default: interp,codegen)",
    )
    fuzz.add_argument(
        "--dead-letter-dir", default=None, metavar="DIR",
        help="write each divergence's replay directory (mapping, source, "
             "both outputs, clip-trace) under this root",
    )
    fuzz.add_argument(
        "--report-json", default=None, metavar="PATH",
        help="write the clip-fuzz-report JSON document here",
    )
    fuzz.add_argument(
        "--replay", default=None, metavar="CASE_DIR",
        help="re-run one dead-lettered case directory instead of fuzzing",
    )
    fuzz.set_defaults(handler=_cmd_fuzz)

    serve = commands.add_parser(
        "serve",
        help="run the HTTP mapping service (register once, transform "
             "against warm compiled plans; see repro.service)",
    )
    serve.add_argument(
        "--host", default=None,
        help="bind address (default: CLIP_SERVICE_HOST or 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port; 0 picks an ephemeral port "
             "(default: CLIP_SERVICE_PORT or 8317)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="process fan-out ceiling for POST /transform/batch "
             "(default: CLIP_SERVICE_WORKERS or 1)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request wall-clock budget; 0 disables "
             "(default: CLIP_SERVICE_DEADLINE or 30)",
    )
    serve.add_argument(
        "--dead-letter-dir", default=None, metavar="DIR",
        help="persist failed inputs under DIR/<request-id>/ "
             "(default: CLIP_SERVICE_DEAD_LETTER_DIR or off)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="concurrent-request ceiling before shedding with 503 "
             "(default: CLIP_SERVICE_MAX_INFLIGHT or 64)",
    )
    serve.add_argument(
        "--history", type=int, default=None, metavar="N",
        help="past requests keeping fetchable metrics/trace/explain "
             "(default: CLIP_SERVICE_HISTORY or 256)",
    )
    serve.set_defaults(handler=_cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
