"""XML instance substrate: ordered trees, paths, parsing and rendering."""

from .index import DocumentIndex, IndexStats, clear_index_registry, index_for
from .model import AtomicValue, XmlElement, element
from .parser import parse_xml
from .paths import (
    AttributeStep,
    ChildStep,
    Path,
    TextStep,
    atomize,
    evaluate,
    evaluate_one,
    parse_path,
)
from .serialize import to_ascii, to_xml

__all__ = [
    "AtomicValue",
    "DocumentIndex",
    "IndexStats",
    "XmlElement",
    "clear_index_registry",
    "element",
    "index_for",
    "parse_xml",
    "Path",
    "ChildStep",
    "AttributeStep",
    "TextStep",
    "parse_path",
    "evaluate",
    "evaluate_one",
    "atomize",
    "to_xml",
    "to_ascii",
]
