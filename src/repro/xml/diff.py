"""Structural diff between XML instances.

Mapping developers iterate: change a line, re-run, inspect what moved.
:func:`diff` compares two instances and reports the differences as
located edit records — attribute changes, text changes, and
inserted/removed subtrees — matching siblings positionally per tag (the
natural alignment for mapping outputs, whose order is generation
order).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import zip_longest
from typing import Optional

from .model import AtomicValue, XmlElement


@dataclass(frozen=True)
class Difference:
    """One point of divergence between two instances."""

    kind: str  # "attribute" | "text" | "missing" | "extra" | "tag"
    location: str
    left: Optional[AtomicValue] = None
    right: Optional[AtomicValue] = None

    def __str__(self) -> str:
        if self.kind == "missing":
            return f"{self.location}: only in left"
        if self.kind == "extra":
            return f"{self.location}: only in right"
        return f"{self.location}: {self.kind} {self.left!r} != {self.right!r}"


def diff(left: XmlElement, right: XmlElement, *, max_differences: int = 1000) -> list[Difference]:
    """All differences between two instances (up to ``max_differences``)."""
    out: list[Difference] = []
    _diff_elements(left, right, f"/{left.tag}", out, max_differences)
    return out


def _push(out: list[Difference], limit: int, difference: Difference) -> bool:
    if len(out) >= limit:
        return False
    out.append(difference)
    return True


def _diff_elements(
    left: XmlElement,
    right: XmlElement,
    location: str,
    out: list[Difference],
    limit: int,
) -> None:
    if len(out) >= limit:
        return
    if left.tag != right.tag:
        _push(out, limit, Difference("tag", location, left.tag, right.tag))
        return
    for name in dict.fromkeys([*left.attributes, *right.attributes]):
        lv, rv = left.attribute(name), right.attribute(name)
        if lv != rv:
            if not _push(out, limit, Difference("attribute", f"{location}/@{name}", lv, rv)):
                return
    if left.text != right.text:
        if not _push(out, limit, Difference("text", f"{location}/text()", left.text, right.text)):
            return
    # Positional alignment per tag.
    tags = list(dict.fromkeys(
        [c.tag for c in left.children] + [c.tag for c in right.children]
    ))
    for tag in tags:
        lefts = left.findall(tag)
        rights = right.findall(tag)
        for index, (lc, rc) in enumerate(zip_longest(lefts, rights), start=1):
            child_location = f"{location}/{tag}[{index}]"
            if lc is None:
                if not _push(out, limit, Difference("extra", child_location)):
                    return
            elif rc is None:
                if not _push(out, limit, Difference("missing", child_location)):
                    return
            else:
                _diff_elements(lc, rc, child_location, out, limit)
                if len(out) >= limit:
                    return


def render_diff(differences: list[Difference]) -> str:
    """One line per difference, or a friendly 'identical' marker."""
    if not differences:
        return "(instances are identical)"
    return "\n".join(str(d) for d in differences)
