"""Structural diff and machine-consumable deltas between XML instances.

Mapping developers iterate: change a line, re-run, inspect what moved.
:func:`diff` compares two instances and reports the differences as
located edit records — attribute changes, text changes, and
inserted/removed subtrees — matching siblings positionally per tag (the
natural alignment for mapping outputs, whose order is generation
order).  The result is a :class:`DiffResult`: a plain list of
:class:`Difference` records plus a ``truncated`` flag that is set when
``max_differences`` forced at least one record to be dropped.

:func:`compute_delta` produces the *machine* counterpart: a
:class:`Delta` of canonical changed paths and subtree
insert/remove/mutate records precise enough to reconstruct the right
instance from the left one (:func:`apply_delta`, byte-identical under
:func:`repro.xml.serialize.to_xml`).  The incremental execution layer
(:mod:`repro.runtime.incremental`) intersects these records against
compiled-plan read-sets to decide which tgd levels must re-run.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import zip_longest
from typing import Optional

from ..errors import XmlError
from .model import AtomicValue, XmlElement


@dataclass(frozen=True)
class Difference:
    """One point of divergence between two instances."""

    kind: str  # "attribute" | "text" | "missing" | "extra" | "tag"
    location: str
    left: Optional[AtomicValue] = None
    right: Optional[AtomicValue] = None

    def __str__(self) -> str:
        if self.kind == "missing":
            return f"{self.location}: only in left"
        if self.kind == "extra":
            return f"{self.location}: only in right"
        return f"{self.location}: {self.kind} {self.left!r} != {self.right!r}"


class DiffResult(list):
    """The differences, plus whether ``max_differences`` dropped any.

    A plain ``list`` of :class:`Difference` for full backward
    compatibility; ``truncated`` is ``True`` exactly when at least one
    further difference existed beyond the reported ones.
    """

    truncated: bool = False


def diff(
    left: XmlElement, right: XmlElement, *, max_differences: int = 1000
) -> DiffResult:
    """All differences between two instances (up to ``max_differences``).

    When the limit drops records, the returned list's ``truncated``
    attribute is ``True`` — a caller that sees exactly
    ``max_differences`` records can tell a complete report from a
    clipped one.
    """
    out = DiffResult()
    _diff_elements(left, right, f"/{left.tag}", out, max_differences)
    return out


def _push(out: DiffResult, limit: int, difference: Difference) -> bool:
    if len(out) >= limit:
        out.truncated = True
        return False
    out.append(difference)
    return True


def _diff_elements(
    left: XmlElement,
    right: XmlElement,
    location: str,
    out: DiffResult,
    limit: int,
) -> None:
    if out.truncated:
        return
    if left.tag != right.tag:
        _push(out, limit, Difference("tag", location, left.tag, right.tag))
        return
    for name in dict.fromkeys([*left.attributes, *right.attributes]):
        lv, rv = left.attribute(name), right.attribute(name)
        if lv != rv:
            if not _push(out, limit, Difference("attribute", f"{location}/@{name}", lv, rv)):
                return
    if left.text != right.text:
        if not _push(out, limit, Difference("text", f"{location}/text()", left.text, right.text)):
            return
    # Positional alignment per tag.
    tags = list(dict.fromkeys(
        [c.tag for c in left.children] + [c.tag for c in right.children]
    ))
    for tag in tags:
        lefts = left.findall(tag)
        rights = right.findall(tag)
        for index, (lc, rc) in enumerate(zip_longest(lefts, rights), start=1):
            child_location = f"{location}/{tag}[{index}]"
            if lc is None:
                if not _push(out, limit, Difference("extra", child_location)):
                    return
            elif rc is None:
                if not _push(out, limit, Difference("missing", child_location)):
                    return
            else:
                _diff_elements(lc, rc, child_location, out, limit)
                if out.truncated:
                    return


def render_diff(differences: list[Difference]) -> str:
    """One line per difference, or a friendly 'identical' marker."""
    if not differences:
        return "(instances are identical)"
    return "\n".join(str(d) for d in differences)


# -- machine-consumable deltas ---------------------------------------------


@dataclass(frozen=True)
class DeltaRecord:
    """One edit turning a subtree of the left instance into the right.

    ``steps`` addresses an element below the left root as a chain of
    ``(tag, per-tag index)`` child steps (0-based; the diff's positional
    per-tag alignment).  For ``mutate-attribute``/``mutate-text``/
    ``remove``/``replace`` the steps address the affected element; for
    ``insert`` they address the *parent*, and ``position`` is the
    absolute child index the new subtree occupies in the right
    instance.  ``nodes`` counts the source nodes the edit touches (the
    delta-ratio numerator of the incremental layer).
    """

    op: str  # "mutate-attribute" | "mutate-text" | "remove" | "insert" | "replace"
    path: str
    steps: tuple[tuple[str, int], ...]
    name: Optional[str] = None
    value: Optional[AtomicValue] = None
    subtree: Optional[XmlElement] = None
    position: Optional[int] = None
    nodes: int = 1


@dataclass(frozen=True)
class Delta:
    """A machine-consumable edit script between two instances.

    ``records`` are in left-document order; ``truncated`` mirrors
    :class:`DiffResult` (a truncated delta cannot be applied).
    """

    records: tuple[DeltaRecord, ...]
    truncated: bool = False

    @property
    def is_empty(self) -> bool:
        return not self.records and not self.truncated

    @property
    def paths(self) -> tuple[str, ...]:
        """The canonical changed-path set, in left-document order."""
        return tuple(record.path for record in self.records)

    @property
    def changed_nodes(self) -> int:
        """Source nodes touched across all records (ratio numerator)."""
        return sum(record.nodes for record in self.records)

    def tag_paths(self) -> set[tuple[str, ...]]:
        """Index-free label chains touched by the delta, for read-set
        intersection: ``("dept", "Proj", "@pid")`` for an attribute
        mutation, ``("dept", "regEmp", "sal", "value")`` for a text
        mutation, and the subtree's own chain for structural edits
        (prefix semantics cover everything below it)."""
        out: set[tuple[str, ...]] = set()
        for record in self.records:
            base = tuple(tag for tag, _ in record.steps)
            if record.op == "mutate-attribute":
                out.add(base + (f"@{record.name}",))
            elif record.op == "mutate-text":
                out.add(base + ("value",))
            elif record.op == "insert" and record.name:
                out.add(base + (record.name,))
            else:
                out.add(base)
        return out

    def tag_paths_by_kind(self) -> tuple[set[tuple[str, ...]], set[tuple[str, ...]]]:
        """:meth:`tag_paths` split into ``(value, structural)`` chains.

        Value chains come from mutations: they change the atomic value
        at exactly that chain, never the node sets above or below it.
        Structural chains come from insert/remove/replace and carry the
        prefix semantics of :meth:`tag_paths`.  Cache invalidation can
        be exact for the former and must be prefix-wide for the latter.
        """
        values: set[tuple[str, ...]] = set()
        structure: set[tuple[str, ...]] = set()
        for record in self.records:
            base = tuple(tag for tag, _ in record.steps)
            if record.op == "mutate-attribute":
                values.add(base + (f"@{record.name}",))
            elif record.op == "mutate-text":
                values.add(base + ("value",))
            elif record.op == "insert" and record.name:
                structure.add(base + (record.name,))
            else:
                structure.add(base)
        return values, structure

    def ratio(self, base_size: int) -> float:
        """Changed nodes as a fraction of ``base_size`` source nodes."""
        return self.changed_nodes / max(1, base_size)


class _DeltaBuilder:
    """Record collector; path strings are derived from steps only when
    a record is actually pushed — the equal-subtree fast path of the
    delta walk touches every node and must not pay for formatting."""

    __slots__ = ("records", "limit", "truncated", "root_tag")

    def __init__(self, limit: int, root_tag: str):
        self.records: list[DeltaRecord] = []
        self.limit = limit
        self.truncated = False
        self.root_tag = root_tag

    def path_of(self, steps, suffix: str = "") -> str:
        return (
            f"/{self.root_tag}"
            + "".join(f"/{tag}[{k + 1}]" for tag, k in steps)
            + suffix
        )

    def push(self, record: DeltaRecord) -> bool:
        if len(self.records) >= self.limit:
            self.truncated = True
            return False
        self.records.append(record)
        return True

    def push_subtree(self, left: XmlElement, right: XmlElement, steps) -> bool:
        return self.push(DeltaRecord(
            "replace", self.path_of(steps), steps, subtree=right.copy(),
            nodes=max(left.size(), right.size()),
        ))


def compute_delta(
    left: XmlElement, right: XmlElement, *, max_records: int = 10000
) -> Delta:
    """The :class:`Delta` transforming ``left`` into ``right``.

    Guarantees ``apply_delta(left, compute_delta(left, right))`` is
    byte-identical to ``right`` under :func:`repro.xml.serialize.to_xml`
    whenever the delta is not truncated.  Where the positional per-tag
    alignment cannot express a child-sequence change (an interleaving
    change beyond trailing per-tag removals and insertions), the whole
    parent becomes one coarse ``replace`` record rather than a wrong
    fine-grained one.
    """
    builder = _DeltaBuilder(max_records, left.tag)
    _delta_elements(left, right, (), builder)
    return Delta(tuple(builder.records), truncated=builder.truncated)


def _delta_elements(
    left: XmlElement,
    right: XmlElement,
    steps: tuple[tuple[str, int], ...],
    builder: _DeltaBuilder,
) -> None:
    if builder.truncated:
        return
    if left.tag != right.tag:
        builder.push_subtree(left, right, steps)
        return
    # A text value on one side versus children on the other cannot be
    # expressed as mutations — replace the subtree wholesale.
    if (left._text is not None and right._children) or (
        right._text is not None and left._children
    ):
        builder.push_subtree(left, right, steps)
        return
    if left._attributes != right._attributes:
        for name in dict.fromkeys((*left._attributes, *right._attributes)):
            lv = left._attributes.get(name)
            rv = right._attributes.get(name)
            if lv != rv:
                if not builder.push(DeltaRecord(
                    "mutate-attribute", builder.path_of(steps, f"/@{name}"),
                    steps, name=name, value=rv,
                )):
                    return
    if left._text != right._text:
        if not builder.push(DeltaRecord(
            "mutate-text", builder.path_of(steps, "/text()"), steps,
            value=right._text,
        )):
            return
    _delta_children(left, right, steps, builder)


def _annotate(children) -> list[tuple[XmlElement, int, int]]:
    """Each child with its per-tag occurrence index and absolute index."""
    occurrence: dict[str, int] = {}
    out = []
    for absolute, child in enumerate(children):
        k = occurrence.get(child.tag, 0)
        occurrence[child.tag] = k + 1
        out.append((child, k, absolute))
    return out


def _delta_children(
    left: XmlElement,
    right: XmlElement,
    steps: tuple[tuple[str, int], ...],
    builder: _DeltaBuilder,
) -> None:
    lseq, rseq = left._children, right._children
    same_skeleton = len(lseq) == len(rseq)
    if same_skeleton:
        for lc, rc in zip(lseq, rseq):
            if lc.tag is not rc.tag and lc.tag != rc.tag:
                same_skeleton = False
                break
    if same_skeleton:
        occurrence: dict[str, int] = {}
        for lc, rc in zip(lseq, rseq):
            k = occurrence.get(lc.tag, 0)
            occurrence[lc.tag] = k + 1
            _delta_elements(lc, rc, steps + ((lc.tag, k),), builder)
            if builder.truncated:
                return
        return
    # Structural change: pair the first min(L, R) occurrences per tag
    # (the diff's alignment); left extras are removals, right extras
    # insertions.  That is only faithful when the paired skeletons
    # interleave identically on both sides — otherwise the positional
    # model cannot represent the move, and the parent is replaced.
    lcount = Counter(c.tag for c in lseq)
    rcount = Counter(c.tag for c in rseq)
    pair_count = {
        tag: min(lcount[tag], rcount[tag])
        for tag in set(lcount) | set(rcount)
    }
    lann, rann = _annotate(lseq), _annotate(rseq)
    lpaired = [item for item in lann if item[1] < pair_count[item[0].tag]]
    rpaired = [item for item in rann if item[1] < pair_count[item[0].tag]]
    if [c.tag for c, _, _ in lpaired] != [c.tag for c, _, _ in rpaired]:
        builder.push_subtree(left, right, steps)
        return
    for child, k, _ in lann:
        if k >= pair_count[child.tag]:
            child_steps = steps + ((child.tag, k),)
            if not builder.push(DeltaRecord(
                "remove", builder.path_of(child_steps), child_steps,
                nodes=child.size(),
            )):
                return
    for child, k, absolute in rann:
        if k >= pair_count[child.tag]:
            if not builder.push(DeltaRecord(
                "insert",
                builder.path_of(steps, f"/{child.tag}[{k + 1}]"),
                steps, name=child.tag, subtree=child.copy(),
                position=absolute, nodes=child.size(),
            )):
                return
    for (lc, lk, _), (rc, _, _) in zip(lpaired, rpaired):
        _delta_elements(lc, rc, steps + ((lc.tag, lk),), builder)
        if builder.truncated:
            return


def resolve_steps(
    root: XmlElement, steps: tuple[tuple[str, int], ...]
) -> XmlElement:
    """The element a :class:`DeltaRecord`'s steps address below ``root``
    (raises :class:`XmlError` when a step does not resolve)."""
    node = root
    for tag, k in steps:
        matches = node.findall(tag)
        if k >= len(matches):
            raise XmlError(
                f"delta step {tag}[{k + 1}] does not resolve under <{node.tag}>"
            )
        node = matches[k]
    return node


def apply_delta(root: XmlElement, delta: Delta) -> XmlElement:
    """A new instance: ``root`` with ``delta`` applied (``root`` itself
    is never mutated).  Raises :class:`XmlError` for truncated deltas
    or steps that do not resolve."""
    if delta.truncated:
        raise XmlError("cannot apply a truncated delta")
    result = root.copy()
    if not delta.records:
        return result
    first = delta.records[0]
    if first.op == "replace" and not first.steps:
        # Whole-document replacement (compute_delta emits it alone).
        return _subtree_copy(first)
    _apply_records(result, delta.records)
    return result


def apply_delta_in_place(root: XmlElement, delta: Delta) -> list[XmlElement]:
    """Apply ``delta`` to ``root`` itself, mutating the tree.

    Returns the elements whose content or child list changed (mutation
    targets; the parents of structural edits), so callers maintaining
    per-document caches — :meth:`repro.xml.index.DocumentIndex.invalidate`,
    the incremental runtime's plan memos — can drop exactly the stale
    entries.  Node identities outside the edited regions are preserved,
    which is the property the incremental session's cross-call caches
    rely on.  Whole-document replacement cannot be expressed in place
    and raises :class:`XmlError`; callers adopt the new tree instead.
    """
    if delta.truncated:
        raise XmlError("cannot apply a truncated delta")
    if not delta.records:
        return []
    first = delta.records[0]
    if first.op == "replace" and not first.steps:
        raise XmlError("whole-document replace cannot be applied in place")
    return _apply_records(root, delta.records)


def _apply_records(
    result: XmlElement, records: tuple[DeltaRecord, ...]
) -> list[XmlElement]:
    # Resolve every target before mutating anything: steps are
    # left-instance coordinates, which structural edits would disturb.
    resolved = [(record, resolve_steps(result, record.steps))
                for record in records]
    touched: list[XmlElement] = []
    replaces: list[tuple[DeltaRecord, XmlElement]] = []
    removals: list[XmlElement] = []
    inserts: list[tuple[DeltaRecord, XmlElement]] = []
    for record, target in resolved:
        if record.op == "mutate-attribute":
            if record.value is None:
                target.remove_attribute(record.name or "")
            else:
                target.set_attribute(record.name or "", record.value)
            touched.append(target)
        elif record.op == "mutate-text":
            if record.value is None:
                target.clear_text()
            else:
                target.set_text(record.value)
            touched.append(target)
        elif record.op == "replace":
            replaces.append((record, target))
        elif record.op == "remove":
            removals.append(target)
        elif record.op == "insert":
            inserts.append((record, target))
        else:  # pragma: no cover - compute_delta emits no other ops
            raise XmlError(f"unknown delta op {record.op!r}")
    for record, target in replaces:
        parent = target.parent
        if parent is None:
            raise XmlError("replace target has no parent")
        position = next(
            i for i, c in enumerate(parent.children) if c is target
        )
        parent.remove(target)
        parent.insert(position, _subtree_copy(record))
        touched.append(parent)
    for target in removals:
        if target.parent is None:
            raise XmlError("remove target has no parent")
        parent = target.parent
        parent.remove(target)
        touched.append(parent)
    for record, parent in inserts:
        parent.insert(record.position or 0, _subtree_copy(record))
        touched.append(parent)
    return touched


def _subtree_copy(record: DeltaRecord) -> XmlElement:
    if record.subtree is None:
        raise XmlError(f"{record.op} record at {record.path} has no subtree")
    return record.subtree.copy()
