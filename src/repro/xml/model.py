"""Ordered-tree XML instance model.

This is the data substrate of the reproduction: both the direct tgd
executor and the XQuery interpreter produce and consume these trees, and
the paper's printed example instances are transcribed into them.

The model is deliberately small and explicit:

* an :class:`XmlElement` has a tag, an ordered attribute map, and either
  child elements or an atomic text value (mirroring the paper's schema
  drawings, where an element owns attributes, sub-elements and at most
  one ``value`` node);
* atomic values are plain Python values (``str``, ``int``, ``float``,
  ``bool``) so that filter predicates such as ``$r.sal.value > 11000``
  compare numerically, exactly as the paper's examples require.

Elements compare equal when their tag, attributes, text and children are
equal *in document order* (XML is an ordered model).  For data-exchange
results where sibling order is not semantically meaningful, use
:meth:`XmlElement.canonical` to obtain an order-normalized copy before
comparing.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Union

from ..errors import XmlError

#: Atomic values an attribute or text node can carry.
AtomicValue = Union[str, int, float, bool]

_ATOMIC_TYPES = (str, int, float, bool)


def _check_atomic(value: AtomicValue, what: str) -> AtomicValue:
    if not isinstance(value, _ATOMIC_TYPES):
        raise XmlError(f"{what} must be str/int/float/bool, got {type(value).__name__}")
    return value


def _check_name(name: str, what: str) -> str:
    if not isinstance(name, str) or not name:
        raise XmlError(f"{what} must be a non-empty string")
    if name[0].isdigit() or any(c.isspace() for c in name):
        raise XmlError(f"{what} {name!r} is not a legal XML name")
    return name


class XmlElement:
    """A node of an XML instance tree.

    Parameters
    ----------
    tag:
        The element name.
    attributes:
        Attribute name → atomic value.  Names are stored without the
        leading ``@``; accessors accept either form.
    children:
        Child elements, in document order.
    text:
        The atomic text value.  An element with a text value cannot also
        have element children (the paper's model keeps values on leaves).
    """

    __slots__ = ("tag", "_attributes", "_children", "_text", "parent")

    def __init__(
        self,
        tag: str,
        attributes: Optional[Mapping[str, AtomicValue]] = None,
        children: Optional[Iterable["XmlElement"]] = None,
        text: Optional[AtomicValue] = None,
    ):
        self.tag = _check_name(tag, "element tag")
        self._attributes: dict[str, AtomicValue] = {}
        self._children: list[XmlElement] = []
        self._text: Optional[AtomicValue] = None
        self.parent: Optional[XmlElement] = None
        if attributes:
            for name, value in attributes.items():
                self.set_attribute(name, value)
        if children:
            for child in children:
                self.append(child)
        if text is not None:
            self.set_text(text)

    # -- construction -------------------------------------------------

    def append(self, child: "XmlElement") -> "XmlElement":
        """Append ``child`` and return it (for chaining)."""
        if not isinstance(child, XmlElement):
            raise XmlError(f"child must be an XmlElement, got {type(child).__name__}")
        if self._text is not None:
            raise XmlError(
                f"element <{self.tag}> has a text value and cannot have children"
            )
        if child.parent is not None:
            raise XmlError(
                f"element <{child.tag}> already has a parent <{child.parent.tag}>"
            )
        child.parent = self
        self._children.append(child)
        return child

    def insert(self, index: int, child: "XmlElement") -> "XmlElement":
        """Insert ``child`` at ``index`` among the children (same
        checks as :meth:`append`)."""
        if not isinstance(child, XmlElement):
            raise XmlError(f"child must be an XmlElement, got {type(child).__name__}")
        if self._text is not None:
            raise XmlError(
                f"element <{self.tag}> has a text value and cannot have children"
            )
        if child.parent is not None:
            raise XmlError(
                f"element <{child.tag}> already has a parent <{child.parent.tag}>"
            )
        child.parent = self
        self._children.insert(index, child)
        return child

    def extend(self, children: Iterable["XmlElement"]) -> None:
        for child in children:
            self.append(child)

    def remove(self, child: "XmlElement") -> None:
        """Detach a direct child (identity match)."""
        for index, candidate in enumerate(self._children):
            if candidate is child:
                del self._children[index]
                child.parent = None
                return
        raise XmlError(f"<{child.tag}> is not a child of <{self.tag}>")

    def set_attribute(self, name: str, value: AtomicValue) -> None:
        name = _check_name(name.lstrip("@"), "attribute name")
        self._attributes[name] = _check_atomic(value, f"attribute @{name}")

    def set_text(self, value: AtomicValue) -> None:
        if self._children:
            raise XmlError(
                f"element <{self.tag}> has children and cannot carry a text value"
            )
        self._text = _check_atomic(value, f"text of <{self.tag}>")

    def remove_attribute(self, name: str) -> None:
        """Drop an attribute if present (accepts a leading ``@``)."""
        self._attributes.pop(name.lstrip("@"), None)

    def clear_text(self) -> None:
        """Drop the text value if present."""
        self._text = None

    # -- access --------------------------------------------------------

    @property
    def attributes(self) -> Mapping[str, AtomicValue]:
        """Read-only view of the attribute map (insertion-ordered)."""
        return dict(self._attributes)

    @property
    def children(self) -> tuple["XmlElement", ...]:
        return tuple(self._children)

    @property
    def text(self) -> Optional[AtomicValue]:
        return self._text

    def attribute(self, name: str, default: Optional[AtomicValue] = None):
        """Return the attribute value, accepting ``name`` or ``@name``."""
        return self._attributes.get(name.lstrip("@"), default)

    def has_attribute(self, name: str) -> bool:
        return name.lstrip("@") in self._attributes

    def find(self, tag: str) -> Optional["XmlElement"]:
        """Return the first child with the given tag, or ``None``."""
        for child in self._children:
            if child.tag == tag:
                return child
        return None

    def findall(self, tag: str) -> list["XmlElement"]:
        """Return all children with the given tag, in document order."""
        return [child for child in self._children if child.tag == tag]

    def iter(self) -> Iterator["XmlElement"]:
        """Depth-first pre-order traversal over this element and descendants."""
        yield self
        for child in self._children:
            yield from child.iter()

    def descendants(self, tag: str) -> list["XmlElement"]:
        """All descendants (not self) with the given tag, in document order."""
        return [node for node in self.iter() if node is not self and node.tag == tag]

    def path_from_root(self) -> list["XmlElement"]:
        """Elements on the path root → self, inclusive."""
        chain: list[XmlElement] = []
        node: Optional[XmlElement] = self
        while node is not None:
            chain.append(node)
            node = node.parent
        chain.reverse()
        return chain

    def __len__(self) -> int:
        return len(self._children)

    def __iter__(self) -> Iterator["XmlElement"]:
        return iter(self._children)

    def size(self) -> int:
        """Total number of element nodes in this subtree."""
        # An explicit stack instead of the recursive iter(): chained
        # generators cost O(depth) per node, which shows up when the
        # incremental runtime sizes whole documents per call.
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node._children)
        return count

    # -- copies and comparison -----------------------------------------

    def copy(self) -> "XmlElement":
        """Deep copy of this subtree (the copy has no parent).

        Bypasses construction-time validation: every name and value in
        an existing element already passed it, and re-checking on copy
        dominates the cost of reusing clean target fragments in the
        incremental runtime.
        """
        clone = XmlElement.__new__(XmlElement)
        clone.tag = self.tag
        clone._attributes = dict(self._attributes)
        clone._text = self._text
        clone.parent = None
        children = []
        for child in self._children:
            child_clone = child.copy()
            child_clone.parent = clone
            children.append(child_clone)
        clone._children = children
        return clone

    def _key(self):
        return (
            self.tag,
            tuple(sorted(self._attributes.items())),
            self._text,
            tuple(child._key() for child in self._children),
        )

    def _canonical_key(self):
        # Children are ordered by the repr of their keys: a total order
        # even when sibling values mix types (str vs int).
        return (
            self.tag,
            tuple(sorted(self._attributes.items(), key=lambda kv: (kv[0], repr(kv[1])))),
            self._text,
            tuple(
                sorted(
                    (child._canonical_key() for child in self._children), key=repr
                )
            ),
        )

    def canonical(self) -> "XmlElement":
        """Return a copy with children recursively sorted into a canonical
        order, for order-insensitive comparison of data-exchange results."""
        clone = XmlElement(self.tag, attributes=dict(self._attributes))
        if self._text is not None:
            clone.set_text(self._text)
        for child in sorted(self._children, key=lambda c: repr(c._canonical_key())):
            clone.append(child.canonical())
        return clone

    def equals_canonically(self, other: "XmlElement") -> bool:
        """Order-insensitive deep equality."""
        if not isinstance(other, XmlElement):
            return False
        return self._canonical_key() == other._canonical_key()

    def __eq__(self, other) -> bool:
        if not isinstance(other, XmlElement):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        bits = [f"<{self.tag}"]
        if self._attributes:
            bits.append(" " + " ".join(f"{k}={v!r}" for k, v in self._attributes.items()))
        if self._text is not None:
            bits.append(f">{self._text!r}</{self.tag}>")
        elif self._children:
            bits.append(f"> …{len(self._children)} children… </{self.tag}>")
        else:
            bits.append("/>")
        return "".join(bits)


def element(
    tag: str,
    *children: XmlElement,
    text: Optional[AtomicValue] = None,
    **attributes: AtomicValue,
) -> XmlElement:
    """Concise constructor used throughout tests and scenarios.

    >>> element("Proj", element("pname", text="Robotics"), pid=2)
    <Proj pid=2> …1 children… </Proj>
    """
    return XmlElement(tag, attributes=attributes, children=children, text=text)
