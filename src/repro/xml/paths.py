"""A small XPath-like path language over :class:`~repro.xml.model.XmlElement`.

The paper's mappings navigate instances with dotted projections such as
``$r.sal.value`` and ``$p.@pid``; its XQuery listings use slash paths like
``source/dept/Proj`` and ``$p/pname/text()``.  Both surface syntaxes
compile to the same :class:`Path` of :class:`Step` objects, which the
validator, executor and XQuery interpreter all evaluate through
:func:`evaluate`.

Supported steps:

* ``tag`` — child elements with that tag (one step may match many nodes);
* ``@name`` — an attribute value;
* ``text()`` / ``value`` — the element's text value;
* ``*`` — all child elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from ..errors import PathError
from .model import AtomicValue, XmlElement


@dataclass(frozen=True)
class ChildStep:
    """Navigate to child elements with a given tag (``*`` matches all)."""

    tag: str

    def __str__(self) -> str:
        return self.tag


@dataclass(frozen=True)
class AttributeStep:
    """Navigate to an attribute value."""

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class TextStep:
    """Navigate to the element's text value."""

    def __str__(self) -> str:
        return "text()"


Step = Union[ChildStep, AttributeStep, TextStep]


@dataclass(frozen=True)
class Path:
    """A compiled sequence of navigation steps."""

    steps: tuple[Step, ...]

    def __str__(self) -> str:
        return "/".join(str(step) for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def concat(self, other: "Path") -> "Path":
        return Path(self.steps + other.steps)


def parse_path(text: str, *, dotted: bool = False) -> Path:
    """Compile a path from its textual form.

    ``parse_path("dept/Proj/@pid")`` handles slash syntax;
    ``parse_path("sal.value", dotted=True)`` handles the paper's dotted
    projection syntax, where the trailing ``value`` segment denotes the
    text node.
    """
    if not isinstance(text, str):
        raise PathError(f"path must be a string, got {type(text).__name__}")
    text = text.strip()
    if not text:
        return Path(())
    separator = "." if dotted else "/"
    steps: list[Step] = []
    for raw in text.split(separator):
        segment = raw.strip()
        if not segment:
            raise PathError(f"empty step in path {text!r}")
        steps.append(parse_step(segment, dotted=dotted))
    return Path(tuple(steps))


def parse_step(segment: str, *, dotted: bool = False) -> Step:
    """Compile one step of a path."""
    if segment.startswith("@"):
        name = segment[1:]
        if not name:
            raise PathError("attribute step with empty name")
        return AttributeStep(name)
    if segment == "text()" or (dotted and segment == "value"):
        return TextStep()
    if "(" in segment or ")" in segment:
        raise PathError(f"unsupported function step {segment!r}")
    return ChildStep(segment)


Result = Union[XmlElement, AtomicValue]


def evaluate(path: Path, roots: Union[XmlElement, Iterable[XmlElement]]) -> list[Result]:
    """Evaluate ``path`` starting from one or more context elements.

    Returns a document-ordered list; element steps produce elements,
    attribute/text steps produce atomic values (missing attributes or
    text simply contribute nothing, as in XPath).
    """
    if isinstance(roots, XmlElement):
        current: list[Result] = [roots]
    else:
        current = list(roots)
    for step in path.steps:
        nxt: list[Result] = []
        for node in current:
            if not isinstance(node, XmlElement):
                raise PathError(
                    f"step {step} applied to atomic value {node!r}; "
                    "only element nodes can be navigated"
                )
            if isinstance(step, ChildStep):
                if step.tag == "*":
                    nxt.extend(node.children)
                else:
                    nxt.extend(node.findall(step.tag))
            elif isinstance(step, AttributeStep):
                if node.has_attribute(step.name):
                    nxt.append(node.attribute(step.name))
            else:  # TextStep
                if node.text is not None:
                    nxt.append(node.text)
        current = nxt
    return current


def evaluate_one(path: Path, root: XmlElement) -> Result:
    """Evaluate a path expected to produce exactly one result."""
    results = evaluate(path, root)
    if len(results) != 1:
        raise PathError(
            f"path {path} produced {len(results)} results where exactly one "
            "was expected"
        )
    return results[0]


def atomize(results: Sequence[Result]) -> list[AtomicValue]:
    """XPath-style atomization: elements contribute their text value."""
    atoms: list[AtomicValue] = []
    for item in results:
        if isinstance(item, XmlElement):
            if item.text is not None:
                atoms.append(item.text)
        else:
            atoms.append(item)
    return atoms
