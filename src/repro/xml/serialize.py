"""Serializers for XML instance trees.

Two renderings are provided:

* :func:`to_xml` — standard angle-bracket XML text (round-trips through
  :func:`repro.xml.parser.parse_xml`);
* :func:`to_ascii` — the compact tree drawing used by the paper to print
  instances, e.g. ``target---department---project [@name=Appliances]``,
  which the examples use so their console output can be compared with
  the paper's figures at a glance.
"""

from __future__ import annotations

from typing import Optional

from .model import AtomicValue, XmlElement

_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def _escape(text: str) -> str:
    for raw, escaped in _ESCAPES.items():
        text = text.replace(raw, escaped)
    return text


def _value_to_text(value: AtomicValue) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def to_xml(root: XmlElement, *, indent: Optional[str] = "  ") -> str:
    """Serialize to XML text.  Pass ``indent=None`` for a compact string."""
    lines: list[str] = []
    _write(root, lines, indent, 0)
    joiner = "\n" if indent is not None else ""
    return joiner.join(lines)


def _write(node: XmlElement, lines: list[str], indent: Optional[str], depth: int) -> None:
    pad = (indent or "") * depth if indent is not None else ""
    attrs = "".join(
        f' {name}="{_escape(_value_to_text(value))}"'
        for name, value in node.attributes.items()
    )
    if node.text is not None:
        lines.append(f"{pad}<{node.tag}{attrs}>{_escape(_value_to_text(node.text))}</{node.tag}>")
    elif node.children:
        lines.append(f"{pad}<{node.tag}{attrs}>")
        for child in node.children:
            _write(child, lines, indent, depth + 1)
        lines.append(f"{pad}</{node.tag}>")
    else:
        lines.append(f"{pad}<{node.tag}{attrs}/>")


def to_ascii(root: XmlElement) -> str:
    """Render an instance in the paper's compact tree notation.

    Each element is printed as its tag; attributes appear as
    ``@name = value`` lines, text as ``= value`` appended to the tag.
    Branch drawing follows the paper's figures: ``|---`` for middle
    children and ``'---`` for the last child.
    """
    lines: list[str] = []
    _draw(root, lines, prefix="", is_root=True, is_last=True)
    return "\n".join(lines)


def _label(node: XmlElement) -> str:
    if node.text is not None:
        return f"{node.tag} = {_value_to_text(node.text)}"
    return node.tag


def _entries(node: XmlElement) -> list[tuple[str, Optional[XmlElement]]]:
    """The printable rows under a node: attributes first, then children."""
    rows: list[tuple[str, Optional[XmlElement]]] = [
        (f"@{name} = {_value_to_text(value)}", None)
        for name, value in node.attributes.items()
    ]
    rows.extend((_label(child), child) for child in node.children)
    return rows


def _draw(node: XmlElement, lines: list[str], prefix: str, is_root: bool, is_last: bool) -> None:
    if is_root:
        lines.append(_label(node))
        child_prefix = ""
    else:
        connector = "'---" if is_last else "|---"
        lines.append(f"{prefix}{connector}{_label(node)}")
        child_prefix = prefix + ("    " if is_last else "|   ")
    rows = _entries(node)
    for index, (text, child) in enumerate(rows):
        last = index == len(rows) - 1
        if child is None:
            connector = "'---" if last else "|---"
            lines.append(f"{child_prefix}{connector}{text}")
        else:
            _draw(child, lines, child_prefix, is_root=False, is_last=last)
