"""Parse XML text into :class:`~repro.xml.model.XmlElement` trees.

Built on the standard library's :mod:`xml.etree.ElementTree` parser; no
third-party XML dependency is needed.  Attribute and text values are
parsed as strings; :func:`parse_xml` can optionally be given a schema so
that values are coerced to their declared atomic types (``int`` salaries
compare numerically in predicates, as the paper's examples require).
"""

from __future__ import annotations

import xml.etree.ElementTree as _ET
from typing import Optional

from ..errors import XmlParseError
from .model import XmlElement


def parse_xml(text: str, schema: Optional[object] = None) -> XmlElement:
    """Parse XML text into an instance tree.

    Parameters
    ----------
    text:
        The XML document text.
    schema:
        Optional :class:`repro.xsd.schema.Schema`; when given, attribute
        and text values are coerced to the types the schema declares.
    """
    try:
        etree_root = _ET.fromstring(text)
    except _ET.ParseError as exc:
        raise XmlParseError(f"malformed XML: {exc}") from exc
    root = _convert(etree_root)
    if schema is not None:
        _coerce(root, schema.root)
    return root


def _convert(node: "_ET.Element") -> XmlElement:
    tag = node.tag.split("}")[-1]  # drop any namespace prefix
    out = XmlElement(tag, attributes={k.split("}")[-1]: v for k, v in node.attrib.items()})
    children = list(node)
    if children:
        for child in children:
            out.append(_convert(child))
    else:
        text = (node.text or "").strip()
        if text:
            out.set_text(text)
    return out


def _coerce(node: XmlElement, decl) -> None:
    """Recursively coerce string values to the schema's declared types."""
    for attr_decl in decl.attributes:
        raw = node.attribute(attr_decl.name)
        if isinstance(raw, str):
            node.set_attribute(attr_decl.name, attr_decl.type.parse(raw))
    if decl.text_type is not None and isinstance(node.text, str):
        node.set_text(decl.text_type.parse(node.text))
    for child in node.children:
        child_decl = decl.child(child.tag)
        if child_decl is not None:
            _coerce(child, child_decl)
