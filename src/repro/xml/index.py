"""Per-document navigation indexes over :class:`~repro.xml.model.XmlElement`.

Every engine in the reproduction navigates source instances the same
way: child steps (``d.Proj``), attribute/text leaves, and — in the
generated XQuery — repeated re-walks of the same paths (the Figure 7
grouping template re-scans ``source/dept/Proj`` once per distinct
group).  A :class:`DocumentIndex` turns those linear child scans into
hash lookups:

* **child-by-tag** — per element, a ``tag → [children]`` table built
  on first access (one pass over the element's children);
* **descendant-by-tag** — per element, the document-order descendant
  list for a tag, built on first access;
* **memoized path evaluation** — :meth:`evaluate` caches
  :func:`repro.xml.paths.evaluate` results per ``(path, context
  element)``, so a template that re-walks a path per group pays for
  the walk once.

The index assumes the indexed document is **read-only** while indexed —
exactly the contract of the engines, which only ever read the source
instance and build the target as a separate tree.  Indexes are built
lazily and shared: :func:`index_for` keeps a small bounded registry
keyed on root-element identity, so the tgd engine and the XQuery
interpreter applying many mappings to one document in a batch all hit
the same tables (wired through :mod:`repro.runtime.plan`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Union

from .model import XmlElement
from .paths import AttributeStep, ChildStep, Path, Result


@dataclass
class IndexStats:
    """Cumulative counters for one :class:`DocumentIndex`."""

    child_tables_built: int = 0
    child_lookups: int = 0
    descendant_tables_built: int = 0
    descendant_lookups: int = 0
    path_hits: int = 0
    path_misses: int = 0

    def to_dict(self) -> dict:
        return {
            "child_tables_built": self.child_tables_built,
            "child_lookups": self.child_lookups,
            "descendant_tables_built": self.descendant_tables_built,
            "descendant_lookups": self.descendant_lookups,
            "path_hits": self.path_hits,
            "path_misses": self.path_misses,
        }


class DocumentIndex:
    """Lazy hash indexes over one (read-only) document tree.

    The index holds a strong reference to the root, so the ``id()``
    keys it uses internally stay valid for its whole lifetime.
    """

    __slots__ = ("root", "stats", "_children", "_descendants", "_paths", "_pins")

    def __init__(self, root: XmlElement):
        if not isinstance(root, XmlElement):
            raise TypeError(
                f"DocumentIndex requires an XmlElement root, got "
                f"{type(root).__name__}"
            )
        self.root = root
        self.stats = IndexStats()
        # id(element) → {tag: [children in document order]}
        self._children: dict[int, dict[str, list[XmlElement]]] = {}
        # (id(element), tag) → [descendants in document order]
        self._descendants: dict[tuple[int, str], list[XmlElement]] = {}
        # (id(context), path) → cached result list (treated immutable)
        self._paths: dict[tuple[int, Path], list[Result]] = {}
        # Strong refs to every element an id() key above points at.
        # Lookups are not limited to the indexed document (a caller may
        # navigate a freshly constructed element); without the pin such
        # an element could be collected and its id recycled, aliasing a
        # stale table.
        self._pins: list[XmlElement] = []

    # -- child / descendant tables ------------------------------------

    def children(self, element: XmlElement, tag: str) -> list[XmlElement]:
        """All children of ``element`` with ``tag`` — an indexed
        :meth:`XmlElement.findall`.  Callers must not mutate the
        returned list."""
        self.stats.child_lookups += 1
        table = self._children.get(id(element))
        if table is None:
            table = {}
            for child in element.children:
                table.setdefault(child.tag, []).append(child)
            self._children[id(element)] = table
            self._pins.append(element)
            self.stats.child_tables_built += 1
        return table.get(tag, _EMPTY)

    def descendants(self, element: XmlElement, tag: str) -> list[XmlElement]:
        """All descendants of ``element`` with ``tag`` — an indexed
        :meth:`XmlElement.descendants`.  Callers must not mutate the
        returned list."""
        self.stats.descendant_lookups += 1
        key = (id(element), tag)
        found = self._descendants.get(key)
        if found is None:
            found = element.descendants(tag)
            self._descendants[key] = found
            self._pins.append(element)
            self.stats.descendant_tables_built += 1
        return found

    # -- memoized path evaluation ---------------------------------------

    def evaluate(
        self, path: Path, context: Union[XmlElement, Iterable[XmlElement]]
    ) -> list[Result]:
        """Evaluate a compiled path from a context element, memoized.

        Semantically identical to :func:`repro.xml.paths.evaluate`;
        repeated evaluations of the same ``(path, element)`` pair are
        dictionary hits.  The result list is shared — do not mutate.
        Only single-element contexts are memoized; iterables fall
        through to a plain (but index-backed) walk.
        """
        if isinstance(context, XmlElement):
            key = (id(context), path)
            found = self._paths.get(key)
            if found is not None:
                self.stats.path_hits += 1
                return found
            self.stats.path_misses += 1
            result = self._walk(path, [context])
            self._paths[key] = result
            self._pins.append(context)
            return result
        return self._walk(path, list(context))

    # -- invalidation ---------------------------------------------------

    def invalidate(self, element: XmlElement) -> None:
        """Drop every cached table that could observe a mutation at
        ``element``.

        The read-only contract stands for plain indexed reads; the
        incremental runtime (:mod:`repro.runtime.incremental`), which
        maintains a source document across deltas, calls this after
        mutating a subtree so the next read rebuilds fresh tables.
        Invalidates the element's own tables plus those of every
        ancestor — descendant lists and memoized paths anywhere up the
        chain may reach into the mutated subtree.  Child tables of
        *other* elements cannot (they hold direct children only), so
        siblings keep their tables.
        """
        node: Union[XmlElement, None] = element
        while node is not None:
            key = id(node)
            self._children.pop(key, None)
            for table_key in [k for k in self._descendants if k[0] == key]:
                del self._descendants[table_key]
            for path_key in [k for k in self._paths if k[0] == key]:
                del self._paths[path_key]
            node = node.parent

    def _walk(self, path: Path, current: list[Result]) -> list[Result]:
        from ..errors import PathError

        for step in path.steps:
            nxt: list[Result] = []
            for node in current:
                if not isinstance(node, XmlElement):
                    raise PathError(
                        f"step {step} applied to atomic value {node!r}; "
                        "only element nodes can be navigated"
                    )
                if isinstance(step, ChildStep):
                    if step.tag == "*":
                        nxt.extend(node.children)
                    else:
                        nxt.extend(self.children(node, step.tag))
                elif isinstance(step, AttributeStep):
                    if node.has_attribute(step.name):
                        nxt.append(node.attribute(step.name))
                else:  # TextStep
                    if node.text is not None:
                        nxt.append(node.text)
            current = nxt
        return current


_EMPTY: list[XmlElement] = []

#: Bounded registry: root identity → index.  Strong references keep
#: the roots (and so the id keys) alive while registered.
_REGISTRY: OrderedDict[int, DocumentIndex] = OrderedDict()
_REGISTRY_CAPACITY = 8


def index_for(root: XmlElement) -> DocumentIndex:
    """The shared :class:`DocumentIndex` for a document root.

    One index per root, built lazily and reused across engines and
    mappings — a batch applying N mappings to one document builds its
    child tables once.  The registry is bounded (least-recently-used
    documents are dropped); it holds strong references, so keep the
    registry small rather than pointing it at an unbounded stream.
    """
    found = _REGISTRY.get(id(root))
    if found is not None and found.root is root:
        _REGISTRY.move_to_end(id(root))
        return found
    index = DocumentIndex(root)
    _REGISTRY[id(root)] = index
    _REGISTRY.move_to_end(id(root))
    while len(_REGISTRY) > _REGISTRY_CAPACITY:
        _REGISTRY.popitem(last=False)
    return index


def clear_index_registry() -> None:
    """Drop all registered indexes (tests; releases document refs)."""
    _REGISTRY.clear()
