"""XSLT rendering of mappings (the paper's alternative target language)."""

from .emit import UnsupportedForXslt, emit_xslt
from .interp import apply_stylesheet
from .stylesheet import Stylesheet

__all__ = ["emit_xslt", "apply_stylesheet", "Stylesheet", "UnsupportedForXslt"]
