"""An interpreter for the emitted XSLT 1.0 subset.

Plays the role of an external XSLT processor so the stylesheet
rendering is runnable and cross-checkable offline, exactly as
:mod:`repro.xquery.interp` does for the XQuery rendering.

One deliberate deviation from a W3C processor: where XSLT 1.0 would
stringify every value, this interpreter preserves *typed* atomics when
a ``value-of``/``attribute`` resolves to a single typed node — so its
output trees compare equal to the other two engines' (which the test
suite asserts on every supported figure and on random instances).
"""

from __future__ import annotations

from typing import Union

from ..errors import XQueryError, XQueryTypeError
from ..xml.model import AtomicValue, XmlElement
from .stylesheet import (
    Arith,
    AttributeInstr,
    BooleanAnd,
    Call,
    Compare,
    Expr,
    ForEach,
    If,
    Literal,
    LiteralElement,
    Node,
    Stylesheet,
    ValueOf,
    VariableBind,
    XPath,
)

Item = Union[XmlElement, AtomicValue]


def apply_stylesheet(stylesheet: Stylesheet, source_root: XmlElement) -> XmlElement:
    """Apply the stylesheet to a source document; returns the single
    element the root template constructs."""
    interp = _Interpreter(source_root)
    sink = XmlElement("result-sink")
    interp.process(stylesheet.body, source_root, {}, sink)
    elements = sink.children
    if len(elements) != 1:
        raise XQueryError(
            f"stylesheet produced {len(elements)} root elements, expected 1"
        )
    out = elements[0]
    sink.remove(out)
    return out


class _Interpreter:
    def __init__(self, source_root: XmlElement):
        self.source_root = source_root

    # -- XPath evaluation ----------------------------------------------------

    def eval(self, expr: Expr, context: XmlElement, env: dict) -> list[Item]:
        if isinstance(expr, Literal):
            return [expr.value]
        if isinstance(expr, XPath):
            return self._eval_path(expr, context, env)
        if isinstance(expr, Compare):
            return [self._compare(expr, context, env)]
        if isinstance(expr, BooleanAnd):
            return [all(self._ebv(self.eval(p, context, env)) for p in expr.parts)]
        if isinstance(expr, Call):
            return self._call(expr, context, env)
        if isinstance(expr, Arith):
            return [self._arith(expr, context, env)]
        raise XQueryError(f"unsupported XPath expression {expr!r}")

    def _eval_path(self, expr: XPath, context: XmlElement, env: dict) -> list[Item]:
        steps = list(expr.steps)
        if expr.var == "/":
            current: list[Item] = [self.source_root]
            if steps and steps[0] == self.source_root.tag:
                steps.pop(0)
            else:
                return []
        elif expr.var:
            try:
                current = list(env[expr.var])
            except KeyError:
                raise XQueryError(f"unbound XSLT variable ${expr.var}") from None
        else:
            current = [context]
        for step in steps:
            nxt: list[Item] = []
            for item in current:
                if not isinstance(item, XmlElement):
                    raise XQueryTypeError(
                        f"XPath step {step!r} applied to atomic {item!r}"
                    )
                if step.startswith("@"):
                    if item.has_attribute(step[1:]):
                        nxt.append(item.attribute(step[1:]))
                elif step == "text()":
                    if item.text is not None:
                        nxt.append(item.text)
                else:
                    nxt.extend(item.findall(step))
            current = nxt
        return current

    @staticmethod
    def _atomize(items: list[Item]) -> list[AtomicValue]:
        atoms: list[AtomicValue] = []
        for item in items:
            if isinstance(item, XmlElement):
                if item.text is not None:
                    atoms.append(item.text)
            else:
                atoms.append(item)
        return atoms

    def _compare(self, expr: Compare, context: XmlElement, env: dict) -> bool:
        lefts = self._atomize(self.eval(expr.left, context, env))
        rights = self._atomize(self.eval(expr.right, context, env))
        for lv in lefts:
            for rv in rights:
                if self._holds(lv, expr.op, rv):
                    return True
        return False

    @staticmethod
    def _holds(lv, op, rv) -> bool:
        try:
            if op == "=":
                return lv == rv
            if op == "!=":
                return lv != rv
            if op == "<":
                return lv < rv
            if op == "<=":
                return lv <= rv
            if op == ">":
                return lv > rv
            if op == ">=":
                return lv >= rv
        except TypeError as exc:
            raise XQueryTypeError(f"cannot compare {lv!r} {op} {rv!r}") from exc
        raise XQueryError(f"unknown operator {op!r}")

    @staticmethod
    def _ebv(items: list[Item]) -> bool:
        if not items:
            return False
        first = items[0]
        if isinstance(first, XmlElement):
            return True
        if isinstance(first, bool):
            return first
        if isinstance(first, (int, float)):
            return first != 0
        return bool(first)

    def _call(self, expr: Call, context: XmlElement, env: dict) -> list[Item]:
        if expr.name == "count":
            (arg,) = expr.args
            return [len(self.eval(arg, context, env))]
        if expr.name == "sum":
            (arg,) = expr.args
            atoms = self._atomize(self.eval(arg, context, env))
            numbers = []
            for value in atoms:
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise XQueryTypeError(f"sum() over non-numeric {value!r}")
                numbers.append(value)
            return [sum(numbers)]
        if expr.name == "concat":
            parts = []
            for arg in expr.args:
                atoms = self._atomize(self.eval(arg, context, env))
                parts.append(self._string(atoms[0]) if atoms else "")
            return ["".join(parts)]
        if expr.name == "generate-id":
            (arg,) = expr.args
            items = self.eval(arg, context, env)
            nodes = [i for i in items if isinstance(i, XmlElement)]
            return [f"id{id(nodes[0])}" if nodes else ""]
        raise XQueryError(f"unsupported XPath function {expr.name}()")

    @staticmethod
    def _string(value: AtomicValue) -> str:
        if isinstance(value, bool):
            return "true" if value else "false"
        return str(value)

    def _arith(self, expr: Arith, context: XmlElement, env: dict) -> AtomicValue:
        def number(side: Expr) -> float:
            atoms = self._atomize(self.eval(side, context, env))
            if not atoms:
                raise XQueryTypeError("arithmetic over an empty node-set")
            value = atoms[0]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise XQueryTypeError(f"arithmetic over non-numeric {value!r}")
            return value

        lv, rv = number(expr.left), number(expr.right)
        if expr.op == "+":
            return lv + rv
        if expr.op == "-":
            return lv - rv
        if expr.op == "*":
            return lv * rv
        if expr.op == "div":
            if rv == 0:
                raise XQueryError("division by zero in stylesheet")
            result = lv / rv
            return int(result) if isinstance(result, float) and result.is_integer() else result
        raise XQueryError(f"unknown arithmetic operator {expr.op!r}")

    # -- template processing ------------------------------------------------------

    def process(
        self,
        nodes: tuple[Node, ...],
        context: XmlElement,
        env: dict,
        output: XmlElement,
    ) -> None:
        local_env = env
        for node in nodes:
            if isinstance(node, LiteralElement):
                created = output.append(XmlElement(node.tag))
                self.process(node.body, context, dict(local_env), created)
            elif isinstance(node, ForEach):
                for item in self.eval(node.select, context, local_env):
                    if not isinstance(item, XmlElement):
                        raise XQueryTypeError(
                            "xsl:for-each over an atomic value"
                        )
                    self.process(node.body, item, dict(local_env), output)
            elif isinstance(node, VariableBind):
                value = (
                    [context]
                    if not node.select.steps and not node.select.var
                    else self.eval(node.select, context, local_env)
                )
                local_env = dict(local_env)
                local_env[node.name] = value
            elif isinstance(node, If):
                if self._ebv(self.eval(node.test, context, local_env)):
                    self.process(node.body, context, dict(local_env), output)
            elif isinstance(node, AttributeInstr):
                atoms = self._atomize(self.eval(node.select, context, local_env))
                if atoms:
                    output.set_attribute(node.name, atoms[0])
            elif isinstance(node, ValueOf):
                atoms = self._atomize(self.eval(node.select, context, local_env))
                if atoms:
                    output.set_text(atoms[0])
            else:
                raise XQueryError(f"unsupported template node {node!r}")
