"""AST and serializer for the emitted XSLT 1.0 subset.

Clio "can render queries that convert source data into target data in a
number of languages (XQuery, XSLT, SQL/XML, SQL)"; this package adds
the XSLT rendering next to the XQuery one.  The emitted subset:

* one root template over ``/`` producing the target document;
* literal result elements with ``xsl:attribute`` instructions;
* ``xsl:for-each`` for iteration, with an ``xsl:variable`` binding each
  tgd variable to the current node so that joins and value mappings can
  reference any in-scope variable uniformly (``$r/ename/text()``);
* ``xsl:if`` for filters (and for omitting attributes whose source
  value is absent);
* ``xsl:value-of`` for values, with XPath 1.0's ``count()``/``sum()``
  for aggregates (``avg`` becomes ``sum(…) div count(…)``).

The XPath fragment is represented structurally (:class:`XPath` et al.)
so the same AST serializes to stylesheet text and evaluates in
:mod:`repro.xslt.interp`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..errors import XQueryError

# -- XPath 1.0 fragment -----------------------------------------------------


@dataclass(frozen=True)
class XPath:
    """A location path: absolute (``/source/dept``), relative to the
    context node (``Proj``), or rooted at a variable (``$d/regEmp``)."""

    steps: tuple[str, ...]  # "tag", "@attr", "text()"
    var: str = ""  # "" → context-relative; "/" → absolute; else variable name

    def serialize(self) -> str:
        prefix = ""
        if self.var == "/":
            prefix = "/"
        elif self.var:
            prefix = f"${self.var}/" if self.steps else f"${self.var}"
        return prefix + "/".join(self.steps)


@dataclass(frozen=True)
class Literal:
    value: Union[str, int, float, bool]

    def serialize(self) -> str:
        if isinstance(self.value, bool):
            return "true()" if self.value else "false()"
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Compare:
    left: "Expr"
    op: str  # = != < <= > >=
    right: "Expr"

    def serialize(self) -> str:
        op = {"<": "&lt;", "<=": "&lt;=", ">": "&gt;", ">=": "&gt;="}.get(
            self.op, self.op
        )
        return f"{self.left.serialize()} {op} {self.right.serialize()}"


@dataclass(frozen=True)
class BooleanAnd:
    parts: tuple["Expr", ...]

    def serialize(self) -> str:
        return " and ".join(p.serialize() for p in self.parts)


@dataclass(frozen=True)
class Call:
    """count(), sum(), string-length()… — XPath 1.0 function call."""

    name: str
    args: tuple["Expr", ...]

    def serialize(self) -> str:
        return f"{self.name}({', '.join(a.serialize() for a in self.args)})"


@dataclass(frozen=True)
class Arith:
    left: "Expr"
    op: str  # + - * div
    right: "Expr"

    def serialize(self) -> str:
        return f"({self.left.serialize()} {self.op} {self.right.serialize()})"


Expr = Union[XPath, Literal, Compare, BooleanAnd, Call, Arith]


# -- template instructions ------------------------------------------------------


@dataclass(frozen=True)
class ValueOf:
    select: Expr


@dataclass(frozen=True)
class AttributeInstr:
    name: str
    select: Expr


@dataclass(frozen=True)
class VariableBind:
    name: str
    select: Expr  # typically XPath((), "") — the current node "."

    def serialize_select(self) -> str:
        text = self.select.serialize()
        return text if text else "."


@dataclass(frozen=True)
class ForEach:
    select: XPath
    body: tuple["Node", ...]


@dataclass(frozen=True)
class If:
    test: Expr
    body: tuple["Node", ...]


@dataclass(frozen=True)
class LiteralElement:
    tag: str
    body: tuple["Node", ...] = ()


Node = Union[ValueOf, AttributeInstr, VariableBind, ForEach, If, LiteralElement]


@dataclass(frozen=True)
class Stylesheet:
    """A single-template stylesheet matching the document root."""

    body: tuple[Node, ...]

    def serialize(self) -> str:
        lines = [
            '<xsl:stylesheet version="1.0"',
            '                xmlns:xsl="http://www.w3.org/1999/XSL/Transform">',
            '  <xsl:template match="/">',
        ]
        for node in self.body:
            _write(node, lines, 2)
        lines.append("  </xsl:template>")
        lines.append("</xsl:stylesheet>")
        return "\n".join(lines)


def _write(node: Node, lines: list[str], depth: int) -> None:
    pad = "  " * depth
    if isinstance(node, LiteralElement):
        if not node.body:
            lines.append(f"{pad}<{node.tag}/>")
            return
        lines.append(f"{pad}<{node.tag}>")
        for child in node.body:
            _write(child, lines, depth + 1)
        lines.append(f"{pad}</{node.tag}>")
    elif isinstance(node, ForEach):
        lines.append(f'{pad}<xsl:for-each select="{node.select.serialize()}">')
        for child in node.body:
            _write(child, lines, depth + 1)
        lines.append(f"{pad}</xsl:for-each>")
    elif isinstance(node, If):
        lines.append(f'{pad}<xsl:if test="{node.test.serialize()}">')
        for child in node.body:
            _write(child, lines, depth + 1)
        lines.append(f"{pad}</xsl:if>")
    elif isinstance(node, VariableBind):
        lines.append(
            f'{pad}<xsl:variable name="{node.name}" '
            f'select="{node.serialize_select()}"/>'
        )
    elif isinstance(node, AttributeInstr):
        lines.append(f'{pad}<xsl:attribute name="{node.name}">')
        lines.append(
            f'{pad}  <xsl:value-of select="{node.select.serialize()}"/>'
        )
        lines.append(f"{pad}</xsl:attribute>")
    elif isinstance(node, ValueOf):
        lines.append(f'{pad}<xsl:value-of select="{node.select.serialize()}"/>')
    else:
        raise XQueryError(f"cannot serialize XSLT node {node!r}")
