"""Translate nested tgds into XSLT 1.0 (the paper's alternative target).

Supported subset: tgds **without grouping Skolems and without
distribution** — XSLT 1.0 has no grouping construct (the Muenchian-keys
workaround predates even the paper), and the document-at-once template
model has no natural place for cross-template distribution.  Grouped or
distributed mappings raise :class:`UnsupportedForXslt`; the XQuery
pipeline covers them.

Translation scheme (mirroring the XQuery emitter):

* constant tags become literal result elements wrapping the iteration;
* each source generator becomes ``xsl:for-each`` + an ``xsl:variable``
  binding its tgd variable to the current node, so every downstream
  reference is a uniform ``$var/…`` path;
* C1 conditions become one ``xsl:if``;
* assignments become ``xsl:attribute``/``xsl:value-of`` guarded by an
  existence ``xsl:if`` (so absent source values omit the attribute,
  matching the other engines);
* aggregates use XPath 1.0 ``count()``/``sum()``; ``avg`` becomes
  ``sum(…) div count(…)`` guarded by a non-empty test.
"""

from __future__ import annotations

from typing import Optional

from ..core.functions import AVG, COUNT, MAX, MIN, SUM
from ..core.tgd import (
    AggregateApp,
    Assignment,
    Constant,
    FunctionApp,
    Membership,
    NestedTgd,
    Proj,
    SchemaRoot,
    TgdComparison,
    TgdExpr,
    TgdMapping,
    Var,
    expr_labels,
    expr_root,
)
from ..errors import XQueryError
from .stylesheet import (
    Arith,
    AttributeInstr,
    BooleanAnd,
    Call,
    Compare,
    Expr,
    ForEach,
    If,
    Literal,
    LiteralElement,
    Node,
    Stylesheet,
    ValueOf,
    VariableBind,
    XPath,
)


class UnsupportedForXslt(XQueryError):
    """The tgd uses a construct outside the XSLT 1.0 subset."""


def emit_xslt(tgd: NestedTgd) -> Stylesheet:
    """Emit the XSLT stylesheet implementing a nested tgd."""
    for mapping in tgd.walk():
        if mapping.skolem is not None:
            raise UnsupportedForXslt(
                "grouping requires XSLT 2.0 (or Muenchian keys); use the "
                "XQuery pipeline for grouped mappings"
            )
        for gen in mapping.target_gens:
            if gen.distribute:
                raise UnsupportedForXslt(
                    "distributed mappings have no XSLT 1.0 rendering; use "
                    "the XQuery pipeline"
                )
    emitter = _Emitter(tgd)
    body = [LiteralElement(tgd.target_root, tuple(emitter.emit_roots()))]
    return Stylesheet(tuple(body))


def _steps(labels: list[str]) -> tuple[str, ...]:
    out = []
    for label in labels:
        if label == "value":
            out.append("text()")
        else:
            out.append(label)
    return tuple(out)


class _Emitter:
    def __init__(self, tgd: NestedTgd):
        self.tgd = tgd

    def emit_roots(self) -> list[Node]:
        out: list[Node] = []
        for mapping in self.tgd.roots:
            out.extend(self._emit_mapping(mapping))
        return out

    # -- expressions -------------------------------------------------------

    def _path(self, expr: TgdExpr) -> XPath:
        root = expr_root(expr)
        labels = expr_labels(expr)
        if isinstance(root, SchemaRoot):
            return XPath((root.name, *_steps(labels)), var="/")
        return XPath(_steps(labels), var=root.name)

    def _operand(self, operand) -> Expr:
        if isinstance(operand, Constant):
            return Literal(operand.value)
        return self._path(operand)

    def _condition(self, condition) -> Expr:
        if isinstance(condition, TgdComparison):
            return Compare(
                self._operand(condition.left),
                condition.op,
                self._operand(condition.right),
            )
        if isinstance(condition, Membership):
            # XPath 1.0 node identity via generate-id().
            return Compare(
                Call("generate-id", (self._path(condition.member),)),
                "=",
                Call("generate-id", (self._path(condition.collection),)),
            )
        raise UnsupportedForXslt(f"unsupported condition {condition!r}")

    def _term(self, term) -> tuple[Expr, Optional[Expr]]:
        """The value expression and an optional existence guard."""
        if isinstance(term, Constant):
            return Literal(term.value), None
        if isinstance(term, AggregateApp):
            arg = self._path(term.arg)
            if term.function is COUNT:
                return Call("count", (arg,)), None
            if term.function is SUM:
                return Call("sum", (arg,)), None
            if term.function is AVG:
                guard = Compare(Call("count", (arg,)), ">", Literal(0))
                return (
                    Arith(Call("sum", (arg,)), "div", Call("count", (arg,))),
                    guard,
                )
            if term.function in (MIN, MAX):
                raise UnsupportedForXslt(
                    f"{term.function.name}() needs XPath 2.0; use the XQuery "
                    "pipeline"
                )
            raise UnsupportedForXslt(f"aggregate {term.function.name} unsupported")
        if isinstance(term, FunctionApp):
            if term.function.name == "concat":
                return Call("concat", tuple(self._path(a) for a in term.args)), None
            operators = {"add": "+", "subtract": "-", "multiply": "*", "divide": "div"}
            if term.function.name in operators:
                op = operators[term.function.name]
                args = [self._path(a) for a in term.args]
                expr: Expr = args[0]
                for arg in args[1:]:
                    expr = Arith(expr, op, arg)
                return expr, None
            raise UnsupportedForXslt(
                f"scalar function {term.function.name} has no XSLT rendering"
            )
        path = self._path(term)
        # The guard must test node *existence*, not the atomized value:
        # under XPath 1.0 boolean rules a plain `path` test is false for
        # a legitimate value of 0 or "", which would drop the attribute.
        return path, Compare(Call("count", (path,)), ">", Literal(0))

    # -- mappings ----------------------------------------------------------------

    def _emit_mapping(self, mapping: TgdMapping) -> list[Node]:
        # Innermost content: the built constructors + assignments + subs.
        content = self._emit_return(mapping)
        # Conditions wrap the content.
        conditions = [self._condition(c) for c in mapping.where]
        if conditions:
            test = conditions[0] if len(conditions) == 1 else BooleanAnd(tuple(conditions))
            content = [If(test, tuple(content))]
        # Generators wrap outside-in; each binds its tgd variable.
        for gen in reversed(mapping.source_gens):
            body: list[Node] = [VariableBind(gen.var, XPath(()))]
            body.extend(content)
            content = [ForEach(self._path(gen.expr), tuple(body))]
        # Constant tags wrap the whole iteration.
        index = 0
        gens = mapping.target_gens
        while index < len(gens) and not gens[index].quantified:
            index += 1
        wrappers = gens[:index]
        for wrapper in reversed(wrappers):
            if not isinstance(wrapper.expr, Proj):
                raise UnsupportedForXslt(f"malformed target generator {wrapper}")
        # Wrapping happens tag-by-tag below (outermost first).
        for wrapper in reversed(wrappers):
            content = [LiteralElement(wrapper.expr.label, tuple(content))]
        return content

    def _emit_return(self, mapping: TgdMapping) -> list[Node]:
        built = [g for g in mapping.target_gens if g.quantified]
        assignments_by_var: dict[str, list[Assignment]] = {}
        for assignment in mapping.assignments:
            root = expr_root(assignment.target)
            if not isinstance(root, Var):
                raise UnsupportedForXslt(
                    f"assignment target {assignment.target} is not variable-rooted"
                )
            assignments_by_var.setdefault(root.name, []).append(assignment)

        sub_nodes: list[Node] = []
        for sub in mapping.submappings:
            sub_nodes.extend(self._emit_mapping(sub))

        if not built:
            if assignments_by_var:
                raise UnsupportedForXslt(
                    "assignments into constant tags are not supported in the "
                    "XSLT rendering"
                )
            return sub_nodes

        # Nest the built constructors innermost-last (chained generators).
        content: list[Node] = sub_nodes
        for index, gen in enumerate(reversed(built)):
            body = self._assignment_nodes(
                assignments_by_var.get(gen.var, []), gen.var
            )
            body.extend(content)
            if not isinstance(gen.expr, Proj):
                raise UnsupportedForXslt(f"malformed target generator {gen}")
            content = [LiteralElement(gen.expr.label, tuple(body))]
        return content

    def _assignment_nodes(self, assignments: list[Assignment], var: str) -> list[Node]:
        nodes: list[Node] = []
        for assignment in assignments:
            labels = expr_labels(assignment.target)
            leaf = labels[-1]
            value, guard = self._term(assignment.value)
            if leaf.startswith("@"):
                instr: Node = AttributeInstr(leaf[1:], value)
            elif leaf == "value":
                instr = ValueOf(value)
            else:
                instr = LiteralElement(leaf, (ValueOf(value),))
            # Intermediate singleton elements on the way down:
            for tag in reversed(labels[:-1]):
                instr = LiteralElement(tag, (instr,))
            if guard is not None:
                instr = If(guard, (instr,))
            nodes.append(instr)
        return nodes
