"""ASCII rendering of Clip mapping diagrams.

The GUI places the source schema on the left, the target schema on the
right, and draws lines between them.  This renderer is the textual
substitute: it lists the two schemas (in the paper's tree notation) and
then the "lines":

* builders as ``[$d] dept ══> department`` (thick arrows);
* context arcs as indentation of build nodes under their parents;
* group nodes with their ``group-by { … }`` label;
* conditions on the node's own line;
* value mappings as ``ename.value ──> employee/@name`` (thin arrows),
  with their scalar/aggregate tags.

It is used by the examples and by ``python -m repro show``.
"""

from __future__ import annotations

from ..xsd.render import render_element
from ..xsd.schema import ValueNode
from .mapping import BuildNode, ClipMapping, ValueMapping


def _short(node) -> str:
    """A compact path without the schema-root segment."""
    if isinstance(node, ValueNode):
        inner = "/".join(node.element.path_string().split("/")[1:])
        leaf = f"@{node.attribute}" if node.attribute is not None else "value"
        return f"{inner}/{leaf}" if inner else leaf
    return "/".join(node.path_string().split("/")[1:]) or node.name


def render_value_mapping(vm: ValueMapping) -> str:
    sources = ", ".join(_short(s) for s in vm.sources)
    tag = ""
    if vm.aggregate is not None:
        tag = f" <<{vm.aggregate.name}>>"
    elif vm.function is not None:
        tag = f" [{vm.function.name}]"
    return f"{sources} ──>{tag} {_short(vm.target)}"


def render_build_node(node: BuildNode, *, indent: int = 0) -> list[str]:
    pad = "  " * indent
    arcs = ", ".join(
        f"${arc.variable}:{_short(arc.source)}" if arc.variable else _short(arc.source)
        for arc in node.incoming
    )
    head = f"{pad}[{arcs}]"
    if node.is_group:
        head += " group-by { " + ", ".join(str(g) for g in node.grouping) + " }"
    if node.target is not None:
        head += f" ══> {_short(node.target)}"
    else:
        head += " (context only)"
    lines = [head]
    if node.condition:
        lines.append(f"{pad}  | {node.condition}")
    for child in node.children:
        lines.extend(render_build_node(child, indent=indent + 1))
    return lines


def render_mapping(clip: ClipMapping) -> str:
    """Render a whole Clip diagram as text."""
    lines: list[str] = ["SOURCE"]
    lines.extend("  " + line for line in render_element(clip.source.root))
    lines.append("TARGET")
    lines.extend("  " + line for line in render_element(clip.target.root))
    lines.append("BUILDERS (thick arrows; indentation = context arcs)")
    if clip.roots:
        for root in clip.roots:
            lines.extend("  " + line for line in render_build_node(root))
    else:
        lines.append("  (none — default minimum-cardinality generation)")
    lines.append("VALUE MAPPINGS (thin arrows)")
    if clip.value_mappings:
        lines.extend("  " + render_value_mapping(vm) for vm in clip.value_mappings)
    else:
        lines.append("  (none)")
    return "\n".join(lines)
