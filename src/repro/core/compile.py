"""Compile Clip mappings into nested tgds (Section IV semantics).

Each build node becomes one (sub)mapping level of the nested tgd:

* its incoming builders become source generators, whose expressions
  depend on the CPT context — bound ancestors yield relative chains
  (``r ∈ d.regEmp``), group ancestors yield membership iteration
  (``p2 ∈ p``) or the inversion pattern (``p2 ∈ p, d2 ∈ source.dept |
  p2 ∈ d2.Proj``, Figure 8), everything else iterates from the source
  root (``d2 ∈ source.dept, r ∈ d2.regEmp``, Figure 7);
* its condition becomes the C1 conjunction;
* its outgoing builder becomes a quantified target generator; target
  elements on the way that no builder reaches become *unquantified*
  generators — printed in the ∃ list like the paper does, but compiled
  to minimum-cardinality constant tags by the engines;
* a group node additionally binds its target variable to the grouping
  Skolem ``group-by(context, [attrs])``;
* value mappings become C2 assignments at their *driver* level.

With no builders at all, :func:`compile_clip` falls back to the
default minimum-cardinality generation the paper describes for
Figure 3: iterate each value mapping's source repeating path and build
only the deepest repeating target element per iteration.
"""

from __future__ import annotations

from typing import Optional

from ..errors import CompileError, InvalidMappingError
from ..xsd.schema import ElementDecl, ValueNode
from .expr import Comparison as ClipComparison, Literal, VarPath
from .mapping import BuilderArc, BuildNode, ClipMapping, ValueMapping
from .tgd import (
    AggregateApp,
    Assignment,
    Constant,
    FunctionApp,
    GroupByApp,
    Membership,
    NestedTgd,
    Proj,
    SchemaRoot,
    SourceGenerator,
    TargetGenerator,
    TgdComparison,
    TgdExpr,
    TgdMapping,
    Var,
    derive_distribution,
    proj_path,
)
from .validity import check as check_validity, find_driver


def compile_clip(
    clip: ClipMapping, *, require_valid: bool = True, report=None
) -> NestedTgd:
    """Compile a Clip mapping into a nested tgd.

    With ``require_valid=True`` (the default) the Section III validity
    rules are checked first and :class:`InvalidMappingError` is raised
    on violation — mirroring the paper's behaviour of letting users
    *enter* invalid mappings but refusing to ascribe semantics to them.
    Callers that already ran :func:`repro.core.validity.check` can pass
    the ``report`` to avoid re-checking — plan construction (validity +
    compilation) is the expensive, once-per-mapping half of execution,
    so the batch runtime is careful never to repeat any of it.
    """
    if require_valid:
        if report is None:
            report = check_validity(clip)
        if not report.is_valid:
            raise InvalidMappingError(report)
    return _Compiler(clip).compile()


class _SourceBinding:
    """A source variable in scope: a regular element binding or a group."""

    __slots__ = ("var", "element", "is_group")

    def __init__(self, var: str, element: ElementDecl, is_group: bool = False):
        self.var = var
        self.element = element
        self.is_group = is_group


class _Scope:
    """Compilation scope: visible source bindings and the target anchor."""

    def __init__(
        self,
        bindings: tuple[_SourceBinding, ...] = (),
        target_anchor: Optional[tuple[str, ElementDecl]] = None,
        target_context: tuple[str, ...] = (),
    ):
        self.bindings = bindings
        self.target_anchor = target_anchor  # (var, element) of nearest built target
        self.target_context = target_context  # built target vars, outermost first

    def extend(
        self,
        new_bindings: list[_SourceBinding],
        target_anchor: Optional[tuple[str, ElementDecl]],
        new_context: tuple[str, ...],
    ) -> "_Scope":
        return _Scope(
            tuple(new_bindings) + self.bindings,  # innermost first
            target_anchor if target_anchor is not None else self.target_anchor,
            self.target_context + new_context,
        )

    def binding(self, var: str) -> Optional[_SourceBinding]:
        for candidate in self.bindings:
            if candidate.var == var:
                return candidate
        return None

    def anchor_for(self, element: ElementDecl) -> Optional[_SourceBinding]:
        """Nearest (innermost, then deepest) binding whose element is an
        ancestor-or-self of ``element`` — group bindings excluded."""
        best: Optional[_SourceBinding] = None
        best_depth = -1
        for candidate in self.bindings:
            if candidate.is_group:
                continue
            anchor = candidate.element
            if anchor is element or anchor.is_ancestor_of(element):
                if anchor.depth() > best_depth:
                    best = candidate
                    best_depth = anchor.depth()
        return best

    def group_binding_over(self, element: ElementDecl) -> Optional[_SourceBinding]:
        """Innermost group binding related to ``element`` (same element,
        its ancestor, or its descendant)."""
        for candidate in self.bindings:
            if not candidate.is_group:
                continue
            grouped = candidate.element
            if (
                grouped is element
                or grouped.is_ancestor_of(element)
                or element.is_ancestor_of(grouped)
            ):
                return candidate
        return None


class _Compiler:
    def __init__(self, clip: ClipMapping):
        self.clip = clip
        self._used_vars: set[str] = set()
        self._functions: list[str] = []
        self._driver_map: dict[int, list[ValueMapping]] = {}
        self._undriven: list[ValueMapping] = []
        for arc_node in clip.build_nodes():
            for arc in arc_node.incoming:
                if arc.variable:
                    self._used_vars.add(arc.variable)

    # -- public ----------------------------------------------------------

    def compile(self) -> NestedTgd:
        if not self.clip.has_builders():
            return self._compile_default()
        for vm in self.clip.value_mappings:
            driver = find_driver(self.clip, vm)
            if driver is None:
                self._undriven.append(vm)
            else:
                self._driver_map.setdefault(id(driver), []).append(vm)
        roots = [
            self._compile_node(node, _Scope()) for node in self.clip.roots
        ]
        if self._undriven:
            roots.append(self._compile_undriven())
        return NestedTgd(
            tuple(roots),
            functions=tuple(self._functions),
            source_root=self.clip.source.root.name,
            target_root=self.clip.target.root.name,
        )

    # -- helpers -----------------------------------------------------------

    def _fresh(self, hint: str) -> str:
        base = (hint[:1] or "x").lower()
        if base not in self._used_vars:
            self._used_vars.add(base)
            return base
        index = 2
        while f"{base}{index}" in self._used_vars:
            index += 1
        name = f"{base}{index}"
        self._used_vars.add(name)
        return name

    def _fresh_target(self, hint: str) -> str:
        """Target variables live in their own primed namespace, matching
        the paper's ``d′``/``e′`` naming."""
        base = (hint[:1] or "x").lower() + "'"
        if base not in self._used_vars:
            self._used_vars.add(base)
            return base
        index = 2
        while f"{base[:-1]}{index}'" in self._used_vars:
            index += 1
        name = f"{base[:-1]}{index}'"
        self._used_vars.add(name)
        return name

    def _note_function(self, name: str) -> None:
        if name not in self._functions:
            self._functions.append(name)

    def _chain(
        self,
        base_expr: TgdExpr,
        base_element: Optional[ElementDecl],
        element: ElementDecl,
        final_var: str,
    ) -> tuple[list[SourceGenerator], list[_SourceBinding]]:
        """Generators iterating from ``base_element`` (exclusive; ``None``
        for the schema root, inclusive of the root element as a label-less
        start) down to ``element`` bound as ``final_var``.

        Repeating intermediates get fresh variables; non-repeating ones
        become projection labels, as in the paper's expressions.
        """
        path = list(element.path())
        if base_element is None:
            start = 0  # the schema-root expression already denotes path[0]
        else:
            start = path.index(base_element) + 1
        gens: list[SourceGenerator] = []
        bindings: list[_SourceBinding] = []
        expr = base_expr
        labels: list[str] = []
        remaining = path[start:] if base_element is not None else path[1:]
        for node in remaining:
            labels.append(node.name)
            is_last = node is element
            if is_last:
                gens.append(SourceGenerator(final_var, proj_path(expr, labels)))
                bindings.append(_SourceBinding(final_var, node))
            elif node.is_repeating:
                var = self._fresh(node.name)
                gens.append(SourceGenerator(var, proj_path(expr, labels)))
                bindings.append(_SourceBinding(var, node))
                expr = Var(var)
                labels = []
        if base_element is element:
            # Builder re-iterates an element already bound: alias via a
            # degenerate single-element chain from the bound variable.
            gens.append(SourceGenerator(final_var, base_expr))
            bindings.append(_SourceBinding(final_var, element))
        return gens, bindings

    # -- source side -------------------------------------------------------

    def _source_generators(
        self, node: BuildNode, scope: _Scope
    ) -> tuple[list[SourceGenerator], list[Membership], list[_SourceBinding]]:
        gens: list[SourceGenerator] = []
        extra_conditions: list[Membership] = []
        bindings: list[_SourceBinding] = []
        local = _Scope(scope.bindings, scope.target_anchor, scope.target_context)
        for arc in node.incoming:
            var = arc.variable or self._fresh(arc.source.name)
            # Anchoring resolves against the *outer* scope only: two arcs
            # of the same node are independent iterations — "the overall
            # Cartesian product of all regEmps and Projs in the whole
            # document" when no context node correlates them (Figure 6).
            # ``local`` (which also sees earlier arcs of this node) is
            # used only to reuse a member variable for group membership.
            arc_gens, arc_bindings, arc_conds = self._arc_generators(
                arc, var, scope, local
            )
            gens.extend(arc_gens)
            bindings.extend(arc_bindings)
            extra_conditions.extend(arc_conds)
            local = _Scope(
                tuple(arc_bindings) + local.bindings,
                local.target_anchor,
                local.target_context,
            )
        return gens, extra_conditions, bindings

    def _arc_generators(
        self, arc: BuilderArc, var: str, scope: _Scope, local: _Scope
    ) -> tuple[list[SourceGenerator], list[_SourceBinding], list[Membership]]:
        element = arc.source
        anchor = scope.anchor_for(element)
        if anchor is not None:
            gens, bindings = self._chain(Var(anchor.var), anchor.element, element, var)
            return gens, bindings, []
        group = scope.group_binding_over(element)
        if group is not None:
            return self._group_arc(group, element, var, local)
        group = self._related_group(scope, element)
        if group is not None:
            return self._group_arc(group, element, var, local)
        gens, bindings = self._chain(
            SchemaRoot(self.clip.source.root.name), None, element, var
        )
        return gens, bindings, []

    def _related_group(self, scope: _Scope, element: ElementDecl) -> Optional[_SourceBinding]:
        """A group binding whose grouped element shares a repeating
        common ancestor with ``element`` — the Figure 7 situation where
        regEmps must be taken from the dept that contains the group
        member (pids are only meaningful within one dept)."""
        for candidate in scope.bindings:
            if not candidate.is_group:
                continue
            if _common_repeating_ancestor(candidate.element, element) is not None:
                return candidate
        return None

    def _member_binding(self, scope: _Scope, group: _SourceBinding) -> Optional[str]:
        """An already-bound member variable over the grouped element (an
        earlier arc of the same node, e.g. Figure 7's ``p2``)."""
        for candidate in scope.bindings:
            if not candidate.is_group and candidate.element is group.element:
                return candidate.var
        return None

    def _group_arc(
        self,
        group: _SourceBinding,
        element: ElementDecl,
        var: str,
        scope: _Scope,
    ) -> tuple[list[SourceGenerator], list[_SourceBinding], list[Membership]]:
        grouped = group.element
        if element is grouped:
            # Membership iteration over the group (Figure 7: p2 ∈ p).
            gen = SourceGenerator(var, Var(group.var))
            return [gen], [_SourceBinding(var, element)], []
        if grouped.is_ancestor_of(element):
            # A descendant of the grouped element: iterate members, then
            # descend within each member.
            member_var = self._fresh(grouped.name)
            member_gen = SourceGenerator(member_var, Var(group.var))
            chain_gens, chain_bindings = self._chain(Var(member_var), grouped, element, var)
            bindings = [_SourceBinding(member_var, grouped)] + chain_bindings
            return [member_gen] + chain_gens, bindings, []
        # The element is an ancestor of the grouped element (Figure 8's
        # inversion) or shares a repeating common ancestor with it
        # (Figure 7's regEmp arc): iterate the members and the candidate
        # context elements, tied by a membership condition anchoring the
        # member inside the context instance.
        common = element if element.is_ancestor_of(grouped) else (
            _common_repeating_ancestor(grouped, element)
        )
        gens: list[SourceGenerator] = []
        bindings: list[_SourceBinding] = []
        member_var = self._member_binding(scope, group)
        if member_var is None:
            member_var = self._fresh(grouped.name)
            gens.append(SourceGenerator(member_var, Var(group.var)))
            bindings.append(_SourceBinding(member_var, grouped))
        chain_gens, chain_bindings = self._chain(
            SchemaRoot(self.clip.source.root.name), None, element, var
        )
        gens.extend(chain_gens)
        bindings.extend(chain_bindings)
        conditions: list[Membership] = []
        if common is not None:
            common_var = var if common is element else _binding_var(chain_bindings, common)
            relative = _relative_labels(common, grouped)
            conditions.append(
                Membership(Var(member_var), proj_path(Var(common_var), relative))
            )
        return gens, bindings, conditions

    # -- conditions -----------------------------------------------------------

    def _convert_condition(self, node: BuildNode, scope: _Scope) -> list[TgdComparison]:
        if node.condition is None:
            return []
        return [self._convert_comparison(c, scope) for c in node.condition.comparisons]

    def _convert_comparison(self, comparison: ClipComparison, scope: _Scope) -> TgdComparison:
        return TgdComparison(
            self._convert_operand(comparison.left, scope),
            comparison.op,
            self._convert_operand(comparison.right, scope),
        )

    def _convert_operand(self, operand, scope: _Scope):
        if isinstance(operand, Literal):
            return Constant(operand.value)
        return self._convert_varpath(operand, scope)

    def _convert_varpath(self, varpath: VarPath, scope: _Scope) -> TgdExpr:
        if scope.binding(varpath.var) is None:
            raise CompileError(
                f"expression {varpath} references ${varpath.var}, "
                "which is not bound in scope"
            )
        return proj_path(Var(varpath.var), varpath.segments)

    # -- target side ------------------------------------------------------------

    def _target_generators(
        self, node: BuildNode, scope: _Scope
    ) -> tuple[list[TargetGenerator], Optional[tuple[str, ElementDecl]]]:
        if node.target is None:
            return [], None
        if scope.target_anchor is not None:
            anchor_var, anchor_element = scope.target_anchor
            base_expr: TgdExpr = Var(anchor_var)
            path = list(node.target.path())
            start = path.index(anchor_element) + 1
        else:
            base_expr = SchemaRoot(self.clip.target.root.name)
            path = list(node.target.path())
            start = 1  # the schema root expression denotes path[0]
        gens: list[TargetGenerator] = []
        expr = base_expr
        for element in path[start:]:
            is_built = element is node.target
            var = self._builder_var(node, element) if is_built else self._fresh_target(element.name)
            # An intermediate target element that some *other* build node
            # constructs distributes this node's content over all its
            # instances (Figure 4 without the context arc).
            distribute = not is_built and any(
                other is not node and other.target is element
                for other in self.clip.build_nodes()
            )
            gens.append(
                TargetGenerator(
                    var,
                    Proj(expr, element.name),
                    quantified=is_built,
                    distribute=distribute,
                )
            )
            expr = Var(var)
        if not gens:
            raise CompileError(
                f"builder target <{node.target.path_string()}> does not lie below "
                "the enclosing built element"
            )
        return gens, (gens[-1].var, node.target)

    def _builder_var(self, node: BuildNode, element: ElementDecl) -> str:
        primary = node.incoming[0].variable
        if primary:
            name = primary + "'"
            if name not in self._used_vars:
                self._used_vars.add(name)
                return name
        return self._fresh_target(element.name)

    # -- value mappings ------------------------------------------------------------

    def _assignments(
        self, node: BuildNode, scope: _Scope, target_var: Optional[str]
    ) -> list[Assignment]:
        out: list[Assignment] = []
        for vm in self._driver_map.get(id(node), []):
            out.append(self._assignment(vm, node, scope, target_var))
        return out

    def _assignment(
        self,
        vm: ValueMapping,
        node: BuildNode,
        scope: _Scope,
        target_var: Optional[str],
    ) -> Assignment:
        if target_var is None:
            raise CompileError(
                f"value mapping {vm!r} is driven by a build node with no "
                "outgoing builder"
            )
        target_expr = self._target_value_expr(vm.target, node.target, target_var)
        value = self._value_term(vm, scope)
        return Assignment(target_expr, value)

    def _target_value_expr(
        self, target: ValueNode, built: ElementDecl, built_var: str
    ) -> TgdExpr:
        labels = _relative_labels(built, target.element)
        leaf = f"@{target.attribute}" if target.attribute is not None else "value"
        return proj_path(Var(built_var), labels + [leaf])

    def _value_term(self, vm: ValueMapping, scope: _Scope):
        if vm.is_aggregate:
            self._note_function(vm.aggregate.name)
            return AggregateApp(vm.aggregate, self._source_value_expr(vm.sources[0], scope))
        args = tuple(self._source_value_expr(s, scope) for s in vm.sources)
        if vm.function is not None:
            return FunctionApp(vm.function, args)
        return args[0]

    def _source_value_expr(self, source, scope: _Scope) -> TgdExpr:
        element = source.element if isinstance(source, ValueNode) else source
        anchor = scope.anchor_for(element)
        if anchor is not None:
            base: TgdExpr = Var(anchor.var)
            labels = _relative_labels(anchor.element, element)
        else:
            group = scope.group_binding_over(element)
            if group is not None and (
                group.element is element or group.element.is_ancestor_of(element)
            ):
                base = Var(group.var)
                labels = _relative_labels(group.element, element)
            else:
                base = SchemaRoot(self.clip.source.root.name)
                labels = [e.name for e in element.path()[1:]]
        if isinstance(source, ValueNode):
            leaf = f"@{source.attribute}" if source.attribute is not None else "value"
            labels = labels + [leaf]
        return proj_path(base, labels)

    # -- node compilation ------------------------------------------------------------

    def _compile_node(self, node: BuildNode, scope: _Scope) -> TgdMapping:
        gens, memberships, bindings = self._source_generators(node, scope)
        inner_scope = _Scope(
            tuple(bindings) + scope.bindings, scope.target_anchor, scope.target_context
        )
        where = tuple(self._convert_condition(node, inner_scope)) + tuple(memberships)
        target_gens, new_anchor = self._target_generators(node, scope)

        skolem = None
        grouped_var: Optional[str] = None
        if node.is_group:
            self._note_function("group-by")
            attrs = tuple(
                self._convert_varpath(attr, inner_scope) for attr in node.grouping
            )
            context = scope.target_context or None
            if new_anchor is None:
                raise CompileError("a group node requires an outgoing builder")
            skolem = (new_anchor[0], GroupByApp(context, attrs))
            grouped_var = node.grouping[0].var
            # Inside the group, only the grouped variables (those the
            # grouping attributes reference) remain visible, and they
            # denote *groups*; the auxiliary chain variables are
            # aggregated away.
            grouping_vars = {attr.var for attr in node.grouping}
            bindings = [
                _SourceBinding(b.var, b.element, is_group=True)
                for b in bindings
                if b.var in grouping_vars
            ]

        child_scope = scope.extend(
            bindings,
            new_anchor,
            (new_anchor[0],) if new_anchor is not None else (),
        )
        submappings = tuple(
            self._compile_node(child, child_scope) for child in node.children
        )
        assignments = tuple(
            self._assignments(node, inner_scope, new_anchor[0] if new_anchor else None)
        )
        return TgdMapping(
            source_gens=tuple(gens),
            where=where,
            target_gens=tuple(target_gens),
            assignments=assignments,
            submappings=submappings,
            skolem=skolem,
            grouped_var=grouped_var,
        )

    # -- value mappings without a driver (whole-document aggregates) ---------------

    def _compile_undriven(self) -> TgdMapping:
        assignments: list[Assignment] = []
        target_gens: list[TargetGenerator] = []
        seen: dict[int, str] = {}
        scope = _Scope()
        for vm in self._undriven:
            if not vm.is_aggregate:
                raise CompileError(
                    f"value mapping {vm!r} has no driver builder; only aggregate "
                    "value mappings may be scoped to the whole document"
                )
            holder = vm.target.element
            var = seen.get(id(holder))
            if var is None:
                expr: TgdExpr = SchemaRoot(self.clip.target.root.name)
                for element in holder.path()[1:]:
                    var = self._fresh_target(element.name)
                    target_gens.append(
                        TargetGenerator(var, Proj(expr, element.name), quantified=False)
                    )
                    expr = Var(var)
                if var is None:  # target value on the root element itself
                    var = self._fresh_target(holder.name)
                    target_gens.append(
                        TargetGenerator(var, SchemaRoot(self.clip.target.root.name), quantified=False)
                    )
                seen[id(holder)] = var
            self._note_function(vm.aggregate.name)
            leaf = f"@{vm.target.attribute}" if vm.target.attribute else "value"
            assignments.append(
                Assignment(
                    Proj(Var(var), leaf),
                    AggregateApp(vm.aggregate, self._source_value_expr(vm.sources[0], scope)),
                )
            )
        return TgdMapping((), (), tuple(target_gens), tuple(assignments))

    # -- default generation (no builders, Figure 3 discussion) ----------------------

    def _compile_default(self) -> NestedTgd:
        """Minimum-cardinality semantics for value-mappings-only input:
        iterate each mapping's source repeating path; materialize (per
        iteration) only the deepest repeating target element on the
        target path; everything above is a constant tag."""
        groups: dict[tuple, list[ValueMapping]] = {}
        for vm in self.clip.value_mappings:
            key = self._default_key(vm)
            groups.setdefault(key, []).append(vm)
        roots = [self._compile_default_group(vms) for vms in groups.values()]
        return NestedTgd(
            derive_distribution(tuple(roots)),
            functions=tuple(self._functions),
            source_root=self.clip.source.root.name,
            target_root=self.clip.target.root.name,
        )

    def _default_key(self, vm: ValueMapping) -> tuple:
        elements = vm.source_elements()
        repeating = tuple(
            e for e in self.clip.source.repeating_path(elements[0])
        ) if not vm.is_aggregate else ()
        built = self._deepest_repeating_target(vm.target.element)
        return (repeating, id(built) if built is not None else None)

    def _deepest_repeating_target(self, holder: ElementDecl) -> Optional[ElementDecl]:
        repeating = [e for e in holder.path() if e.is_repeating]
        return repeating[-1] if repeating else None

    def _compile_default_group(self, vms: list[ValueMapping]) -> TgdMapping:
        primary = vms[0]
        gens: list[SourceGenerator] = []
        bindings: list[_SourceBinding] = []
        if not primary.is_aggregate:
            anchor_element = primary.source_elements()[0]
            repeating = self.clip.source.repeating_path(anchor_element)
            base: TgdExpr = SchemaRoot(self.clip.source.root.name)
            base_element: Optional[ElementDecl] = None
            for element in repeating:
                var = self._fresh(element.name)
                chain, chain_bindings = self._chain(base, base_element, element, var)
                gens.extend(chain)
                bindings.extend(chain_bindings)
                base, base_element = Var(var), element
        scope = _Scope(tuple(reversed(bindings)))

        built = self._deepest_repeating_target(vms[0].target.element)
        target_gens: list[TargetGenerator] = []
        expr: TgdExpr = SchemaRoot(self.clip.target.root.name)
        built_var: Optional[str] = None
        anchor_holder = built if built is not None else self.clip.target.root
        for element in anchor_holder.path()[1:]:
            var = self._fresh_target(element.name)
            quantified = element is built and bool(gens)
            target_gens.append(TargetGenerator(var, Proj(expr, element.name), quantified=quantified))
            expr = Var(var)
            built_var = var
        if built_var is None:
            built_var = self._fresh_target(self.clip.target.root.name)
            target_gens.append(
                TargetGenerator(built_var, SchemaRoot(self.clip.target.root.name), quantified=False)
            )

        assignments = []
        for vm in vms:
            target_expr = self._target_value_expr(vm.target, anchor_holder, built_var)
            assignments.append(Assignment(target_expr, self._value_term(vm, scope)))
        return TgdMapping(tuple(gens), (), tuple(target_gens), tuple(assignments))


def _common_repeating_ancestor(
    left: ElementDecl, right: ElementDecl
) -> Optional[ElementDecl]:
    """The deepest *repeating* element on both root paths, or ``None``."""
    shared = None
    right_path = right.path()
    for candidate in left.path():
        if candidate in right_path and candidate.is_repeating:
            if candidate is not left and candidate is not right:
                shared = candidate
    return shared


def _binding_var(bindings: list["_SourceBinding"], element: ElementDecl) -> str:
    for binding in bindings:
        if binding.element is element:
            return binding.var
    raise CompileError(
        f"no chain variable bound for <{element.path_string()}>"
    )


def _relative_labels(ancestor: ElementDecl, descendant: ElementDecl) -> list[str]:
    """Element names on the path from ``ancestor`` (exclusive) down to
    ``descendant`` (inclusive)."""
    if ancestor is descendant:
        return []
    path = list(descendant.path())
    try:
        index = path.index(ancestor)
    except ValueError:
        raise CompileError(
            f"<{ancestor.path_string()}> is not an ancestor of "
            f"<{descendant.path_string()}>"
        ) from None
    return [e.name for e in path[index + 1 :]]
