"""Validity of Clip mappings — the syntactic rules of Section III.

"Not all combinations of value mappings and builders produce valid
target instances … Clip marks these mappings as invalid, but does not
restrict the user from entering them."  Accordingly, :func:`check`
returns a :class:`ValidityReport` rather than raising; compile/execute
entry points consult the report and raise
:class:`~repro.errors.InvalidMappingError` when asked to require
validity.

Rules implemented (ids appear in the report):

* ``SAFE_BUILDER`` — a builder must go from more-constraining to
  less-constraining elements: a repeating iteration (repeating source,
  Cartesian product, or group) cannot feed a non-repeating target.
* ``CPT_ALIGNMENT`` — the hierarchy of build nodes must reflect the
  hierarchy of the target elements reached by their outgoing builders
  (the *inverted invalid* example: CPT not aligned with the target).
* ``VM_DRIVER`` — every (non-aggregate) value mapping needs a driver:
  walking up from its target node, the first target element that is the
  target side of a builder.
* ``VM_SOURCE_SCOPE`` — for every source node of a (non-aggregate)
  value mapping there must be a driver source element whose residual
  path contains no repeating elements (otherwise Clip "does not know
  how to iterate over that set").
* ``VM_GROUPED_VALUE`` — under a group node, only grouping attributes
  (or aggregates) may be mapped to the grouped element's values.
* ``VAR_SCOPE`` / ``GROUP_ATTRS`` — structural: condition variables
  must be bound in scope; grouping attributes must use the group node's
  own incoming variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..xsd.schema import ElementDecl, ValueNode
from .expr import VarPath
from .mapping import BuilderArc, BuildNode, ClipMapping, ValueMapping


@dataclass(frozen=True)
class ValidityIssue:
    """One violated rule, with a human-readable explanation."""

    rule: str
    message: str
    severity: str = "error"  # "error" | "warning"

    def __str__(self) -> str:
        return f"[{self.rule}] {self.message}"


@dataclass
class ValidityReport:
    """The outcome of checking a Clip mapping."""

    issues: list[ValidityIssue]

    @property
    def is_valid(self) -> bool:
        return not any(issue.severity == "error" for issue in self.issues)

    def errors(self) -> list[ValidityIssue]:
        return [i for i in self.issues if i.severity == "error"]

    def by_rule(self, rule: str) -> list[ValidityIssue]:
        return [i for i in self.issues if i.rule == rule]

    def __str__(self) -> str:
        if self.is_valid:
            return "valid mapping"
        return "; ".join(str(i) for i in self.errors())


# -- driver computation (shared with the compiler) -------------------------


def find_driver(clip: ClipMapping, vm: ValueMapping) -> Optional[BuildNode]:
    """The driver of a value mapping (Section III-B).

    Starting from ``target(vm)``, search upward in
    ``path(target(vm))`` and stop at the first target element that is
    the target side of a builder; the build node owning that builder is
    the driver.  Returns ``None`` when no builder encompasses the value
    mapping.
    """
    holder = vm.target.element
    for candidate in reversed(holder.path()):
        nodes = clip.builders_to(candidate)
        if not nodes:
            continue
        if len(nodes) == 1:
            return nodes[0]
        # Several builders reach the same target element (two sibling
        # builders into G, as in Figure 10): prefer the one whose
        # in-scope sources actually cover this value mapping.
        for node in nodes:
            if _covers_sources(node, vm):
                return node
        return nodes[-1]
    return None


def _covers_sources(node: BuildNode, vm: ValueMapping) -> bool:
    for source in vm.sources:
        element = source.element if isinstance(source, ValueNode) else source
        anchor = source_anchor(node, element)
        if anchor is None:
            return False
        _, arc = anchor
        if residual_repeats(arc.source, element):
            return False
    return True


def source_anchor(
    node: BuildNode, element: ElementDecl
) -> Optional[tuple[BuildNode, BuilderArc]]:
    """The in-scope incoming arc whose source element is the nearest
    ancestor-or-self of ``element`` (how value mappings and conditions
    resolve their source side at a build node)."""
    best: Optional[tuple[BuildNode, BuilderArc]] = None
    best_depth = -1
    for owner, arc in node.arcs_in_scope():
        anchor = arc.source
        if anchor is element or anchor.is_ancestor_of(element):
            depth = anchor.depth()
            if depth > best_depth:
                best = (owner, arc)
                best_depth = depth
    return best


def residual_repeats(anchor: ElementDecl, element: ElementDecl) -> list[ElementDecl]:
    """Repeating elements on ``path(element) \\ path(anchor)`` — the
    residual the VM_SOURCE_SCOPE rule must find empty.  The element
    itself counts; the anchor does not."""
    anchor_path = set(anchor.path())
    return [
        e for e in element.path() if e not in anchor_path and e.is_repeating
    ]


# -- the checker ---------------------------------------------------------


def check(clip: ClipMapping) -> ValidityReport:
    """Check a Clip mapping against the Section III rules."""
    issues: list[ValidityIssue] = []
    for node in clip.build_nodes():
        _check_builder_safety(node, issues)
        _check_structure(clip, node, issues)
    _check_cpt_alignment(clip, issues)
    _check_distribution_scope(clip, issues)
    for vm in clip.value_mappings:
        _check_value_mapping(clip, vm, issues)
    return ValidityReport(issues)


def _iteration_is_repeating(node: BuildNode) -> bool:
    """Can this build node's iteration produce more than one tuple?"""
    if len(node.incoming) > 1:
        return True  # Cartesian product of the incoming sets
    if node.is_group:
        return True  # one element per distinct grouping value: still a set
    return node.incoming[0].source.is_repeating


def _check_builder_safety(node: BuildNode, issues: list[ValidityIssue]) -> None:
    if node.target is None:
        return
    if _iteration_is_repeating(node) and not node.target.is_repeating:
        issues.append(
            ValidityIssue(
                "SAFE_BUILDER",
                f"builder into non-repeating <{node.target.path_string()}> "
                "from a repeating iteration "
                f"({', '.join(a.source.path_string() for a in node.incoming)}); "
                "no valid target instance can accommodate the result",
            )
        )


def _check_cpt_alignment(clip: ClipMapping, issues: list[ValidityIssue]) -> None:
    for node in clip.build_nodes():
        if node.target is None:
            continue
        anchor = _nearest_output_ancestor(node)
        if anchor is None:
            continue
        if not anchor.target.is_ancestor_of(node.target):
            issues.append(
                ValidityIssue(
                    "CPT_ALIGNMENT",
                    f"CPT not aligned with the target schema: build node for "
                    f"<{node.target.path_string()}> is nested under the node for "
                    f"<{anchor.target.path_string()}>, which is not its target "
                    "ancestor",
                )
            )


def _nearest_output_ancestor(node: BuildNode) -> Optional[BuildNode]:
    for ancestor in node.ancestors():
        if ancestor.target is not None:
            return ancestor
    return None


def _cpt_root(node: BuildNode) -> BuildNode:
    while node.parent is not None:
        node = node.parent
    return node


def _check_distribution_scope(clip: ClipMapping, issues: list[ValidityIssue]) -> None:
    """A builder whose target path crosses an element built by a
    *non-ancestor* node distributes its content over that element's
    instances.  The paper defines this only for independent top-level
    trees ("omitting the context arc causes all employees … to appear,
    repeated, within all departments", Figure 4); from *inside* a CPT —
    under a context level or a group — it is ambiguous which instances
    of the shared iteration should receive the content.  Clip marks
    those drawings invalid and asks the user to attach the builder
    below the node that constructs the container."""
    for node in clip.build_nodes():
        if node.target is None:
            continue
        anchor = _nearest_output_ancestor(node)
        start = anchor.target if anchor is not None else None
        for element in node.target.path()[:-1]:
            if start is not None and (
                element is start or not start.is_ancestor_of(element)
            ):
                continue
            crossing_builders = [
                other
                for other in clip.builders_to(element)
                if other is not node and other not in node.ancestors()
            ]
            if not crossing_builders:
                continue
            if node.parent is not None:
                issues.append(
                    ValidityIssue(
                        "DISTRIBUTION_SCOPE",
                        f"builder into <{node.target.path_string()}> crosses "
                        f"<{element.path_string()}>, which another build node "
                        "constructs; from inside a context propagation tree the "
                        "containment is ambiguous — attach this builder below "
                        "the node that constructs the container, or draw it as "
                        "an independent tree",
                    )
                )
            elif any(_cpt_root(other) is _cpt_root(node) for other in crossing_builders):
                issues.append(
                    ValidityIssue(
                        "DISTRIBUTION_SCOPE",
                        f"builder into <{node.target.path_string()}> crosses "
                        f"<{element.path_string()}>, which a node of the same "
                        "CPT constructs; attach this builder below that node",
                    )
                )


def _check_structure(clip: ClipMapping, node: BuildNode, issues: list[ValidityIssue]) -> None:
    # Condition variables must be bound at this node or an ancestor.
    if node.condition is not None:
        for name in sorted(node.condition.variables()):
            try:
                node.variable_arc(name)
            except Exception:
                issues.append(
                    ValidityIssue(
                        "VAR_SCOPE",
                        f"condition {node.condition} references ${name}, which no "
                        "in-scope builder binds",
                    )
                )
    # A group node's scope is fixed by built ancestors (the skolem's
    # context parameter is a list of bound *target* variables, Section
    # IV); a context-only node between the group and its nearest built
    # ancestor provides no target context, leaving the grouping scope
    # ill-defined.
    if node.is_group:
        for ancestor in node.ancestors():
            if ancestor.target is not None:
                break
            issues.append(
                ValidityIssue(
                    "GROUP_CONTEXT",
                    "group node hangs below a context-only node; grouping "
                    "scope must be fixed by built ancestors (give the parent "
                    "an outgoing builder, or draw the group at the root)",
                )
            )
            break
    # Grouping attributes must reference the group node's own arcs.
    own = {arc.variable for arc in node.incoming if arc.variable}
    for attr in node.grouping:
        if attr.var not in own:
            issues.append(
                ValidityIssue(
                    "GROUP_ATTRS",
                    f"grouping attribute {attr} must use one of the group node's "
                    f"own variables {sorted(own) or '(none)'}",
                )
            )
    # Schema ownership.
    for arc in node.incoming:
        if not clip.source.owns(arc.source):
            issues.append(
                ValidityIssue(
                    "SCHEMA_SIDE",
                    f"builder source <{arc.source.path_string()}> is not part of "
                    "the source schema",
                )
            )
    if node.target is not None and not clip.target.owns(node.target):
        issues.append(
            ValidityIssue(
                "SCHEMA_SIDE",
                f"builder target <{node.target.path_string()}> is not part of "
                "the target schema",
            )
        )


def _check_value_mapping(
    clip: ClipMapping, vm: ValueMapping, issues: list[ValidityIssue]
) -> None:
    if vm.is_aggregate:
        # "The driver of an aggregate value mapping is always valid."
        return
    driver = find_driver(clip, vm)
    if driver is None:
        if clip.has_builders():
            issues.append(
                ValidityIssue(
                    "VM_DRIVER",
                    f"value mapping into {vm.target} has no driver: no builder "
                    "reaches any element on its target path",
                )
            )
        # With no builders at all, Clip's default minimum-cardinality
        # generation applies (Figure 3 discussion) — always valid.
        return
    grouped_elements = (
        {arc.source for arc in driver.incoming} if driver.is_group else set()
    )
    for source in vm.sources:
        element = source.element if isinstance(source, ValueNode) else source
        anchor = source_anchor(driver, element)
        if anchor is None:
            repeats = [e for e in element.path() if e.is_repeating]
            if repeats:
                issues.append(
                    ValidityIssue(
                        "VM_SOURCE_SCOPE",
                        f"value mapping source {_describe(source)} lies inside "
                        f"repeating <{repeats[-1].path_string()}> which no driver "
                        "builder bounds; Clip does not know how to iterate over "
                        "that set",
                    )
                )
            continue
        owner, arc = anchor
        leftover = residual_repeats(arc.source, element)
        if leftover:
            issues.append(
                ValidityIssue(
                    "VM_SOURCE_SCOPE",
                    f"value mapping source {_describe(source)} is separated from "
                    f"driver element <{arc.source.path_string()}> by repeating "
                    f"<{leftover[0].path_string()}> not bounded by any builder",
                )
            )
            continue
        if driver.is_group and arc.source in grouped_elements:
            if not _is_grouping_attribute(driver, arc, source):
                issues.append(
                    ValidityIssue(
                        "VM_GROUPED_VALUE",
                        f"value mapping source {_describe(source)} is a "
                        "non-grouping value of a grouped element; it has multiple "
                        "a-priori different values per group and cannot be mapped "
                        "without an aggregate function",
                    )
                )


def _describe(source) -> str:
    if isinstance(source, ValueNode):
        return str(source)
    return source.path_string()


def _is_grouping_attribute(driver: BuildNode, arc: BuilderArc, source: ValueNode) -> bool:
    """Does this value node coincide with one of the node's grouping
    attributes (``$p.pname.value`` covers ``Proj/pname/text()``)?"""
    for attr in driver.grouping:
        if attr.var != arc.variable:
            continue
        if _varpath_matches(attr, arc.source, source):
            return True
    return False


def _varpath_matches(attr: VarPath, anchor: ElementDecl, source: ValueNode) -> bool:
    """Walk ``attr``'s dotted segments down the schema from ``anchor``
    and check they land exactly on ``source``."""
    element = anchor
    segments = list(attr.segments)
    if not segments:
        return False
    leaf = segments[-1]
    for name in segments[:-1]:
        if name.startswith("@") or name == "value":
            return False
        nxt = element.child(name)
        if nxt is None:
            return False
        element = nxt
    if leaf.startswith("@"):
        return source.element is element and source.attribute == leaf[1:]
    if leaf == "value":
        return source.element is element and source.attribute is None
    nxt = element.child(leaf)
    return nxt is not None and source.element is nxt and source.attribute is None
