"""Focused views over large mappings (the paper's second future-work item).

"… adding filters highlighting some of the lines and of the source and
target structures, providing a clear rendering of the lines in the
middle; these view mechanisms allow users to concentrate on a portion
of the schemas at a time."

:func:`focus` filters a mapping's "lines" to those touching a chosen
source and/or target subtree; the resulting :class:`MappingView` keeps
enough CPT context (ancestor build nodes) to stay readable and renders
through the same diagram notation as the full mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..xsd.schema import ElementDecl
from .mapping import BuildNode, ClipMapping, ValueMapping
from .render import render_build_node, render_value_mapping


def _within(element: ElementDecl, scope: Optional[ElementDecl]) -> bool:
    if scope is None:
        return True
    return element is scope or scope.is_ancestor_of(element)


def _vm_touches(vm: ValueMapping, source_scope, target_scope) -> bool:
    source_hit = source_scope is None or any(
        _within(e, source_scope) for e in vm.source_elements()
    )
    target_hit = target_scope is None or _within(vm.target.element, target_scope)
    return source_hit and target_hit


def _node_touches(node: BuildNode, source_scope, target_scope) -> bool:
    source_hit = source_scope is None or any(
        _within(arc.source, source_scope) for arc in node.incoming
    )
    target_hit = target_scope is None or (
        node.target is not None and _within(node.target, target_scope)
    )
    if source_scope is not None and target_scope is not None:
        return source_hit and target_hit
    return source_hit and (target_scope is None or target_hit)


@dataclass
class MappingView:
    """A filtered set of a mapping's lines, with CPT context."""

    clip: ClipMapping
    value_mappings: list[ValueMapping]
    #: Matching build nodes (highlight set).
    build_nodes: list[BuildNode]
    #: Matching nodes plus their CPT ancestors (render set).
    visible_nodes: list[BuildNode]

    @property
    def is_empty(self) -> bool:
        return not self.value_mappings and not self.build_nodes

    def render(self) -> str:
        lines = ["FOCUSED VIEW"]
        lines.append("builders:")
        if self.visible_nodes:
            highlighted = {id(n) for n in self.build_nodes}
            roots = [n for n in self.visible_nodes if n.parent is None
                     or id(n.parent) not in {id(v) for v in self.visible_nodes}]
            for root in roots:
                for node, rendered in self._render_subtree(root, 0):
                    marker = "»" if id(node) in highlighted else " "
                    lines.append(f"  {marker} {rendered}")
        else:
            lines.append("    (none in focus)")
        lines.append("value mappings:")
        if self.value_mappings:
            lines.extend("    " + render_value_mapping(vm) for vm in self.value_mappings)
        else:
            lines.append("    (none in focus)")
        return "\n".join(lines)

    def _render_subtree(self, node: BuildNode, depth: int):
        visible = {id(n) for n in self.visible_nodes}
        own = render_build_node(node, indent=depth)
        # render_build_node renders the whole subtree; re-filter lines of
        # hidden children by rendering manually instead.
        yield node, own[0]
        if node.condition:
            yield node, own[1]
        for child in node.children:
            if id(child) in visible:
                yield from self._render_subtree(child, depth + 1)


def focus(
    clip: ClipMapping,
    *,
    source: Optional[Union[str, ElementDecl]] = None,
    target: Optional[Union[str, ElementDecl]] = None,
) -> MappingView:
    """Filter the mapping's lines to those touching the given subtrees.

    ``source``/``target`` are element paths (or declarations) in the
    respective schemas; passing neither yields the full view.
    """
    source_scope = clip.source.element(source) if isinstance(source, str) else source
    target_scope = clip.target.element(target) if isinstance(target, str) else target

    vms = [
        vm
        for vm in clip.value_mappings
        if _vm_touches(vm, source_scope, target_scope)
    ]
    hits = [
        node
        for node in clip.build_nodes()
        if _node_touches(node, source_scope, target_scope)
    ]
    visible: list[BuildNode] = []
    seen: set[int] = set()
    for node in hits:
        for member in [node, *node.ancestors()]:
            if id(member) not in seen:
                seen.add(id(member))
                visible.append(member)
    # Keep pre-order for stable rendering.
    order = {id(n): i for i, n in enumerate(clip.build_nodes())}
    visible.sort(key=lambda n: order[id(n)])
    return MappingView(clip, vms, hits, visible)
