"""Parser for the paper's tgd notation.

:func:`repro.core.tgd.render_tgd` prints nested tgds exactly as the
paper typesets them; this module reads that notation back::

    ∃ group-by(
      ∀ d ∈ source.dept, p ∈ d.Proj →
        ∃ p′ ∈ target.project |
          p′ = group-by(⊥, [p.pname.value]),
          p′.@name = p.pname.value,
          [∀ p2 ∈ p, d2 ∈ source.dept, r ∈ d2.regEmp | p2.@pid = r.@pid →
            ∃ e′ ∈ p′.employee | e′.@name = r.ename.value])

Besides the round-trip property (``parse_tgd(render_tgd(t))`` evaluates
identically), this lets tests and users write mappings directly in the
paper's formalism and execute them.

ASCII fallbacks are accepted everywhere: ``forall``/``∀``,
``exists``/``∃``, ``in``/``∈``, ``->``/``→``, ``_|_``/``⊥``, and a
trailing ``'`` for the prime.  Unquantified target generators cannot be
distinguished typographically (the paper prints both kinds in the ∃
list), so the parser re-derives them the way the engines need: a target
variable never *assigned through nor parent of an assigned/child
generator chain marked built* is decided by the ``built`` marker — by
default, the **last** generator of each mapping's target list is
quantified and the earlier ones are constant tags, matching the
compiler's output shape.
"""

from __future__ import annotations

import re
from typing import Optional

from ..errors import MappingError
from .functions import AGGREGATE_FUNCTIONS, SCALAR_FUNCTIONS
from .tgd import (
    AggregateApp,
    Assignment,
    Constant,
    FunctionApp,
    GroupByApp,
    Membership,
    NestedTgd,
    Proj,
    SchemaRoot,
    SourceGenerator,
    TargetGenerator,
    TgdComparison,
    TgdExpr,
    TgdMapping,
    Var,
    derive_distribution,
)

_TOKEN = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<forall>∀|\bforall\b)
    | (?P<exists>∃|\bexists\b)
    | (?P<elem>∈|\bin\b)
    | (?P<arrow>→|->)
    | (?P<bottom>⊥|_\|_)
    | (?P<top>⊤)
    | (?P<string>'[^']*')
    | (?P<number>-?\d+(?:\.\d+)?)
    | (?P<name>@?[A-Za-z_][\w\-]*(?:′|')*)
    | (?P<op><=|>=|!=|=|<|>)
    | (?P<punct>[(),.\[\]|])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str):
        self.kind = kind
        self.text = text

    def __repr__(self):
        return f"{self.kind}:{self.text!r}"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            raise MappingError(f"cannot tokenize tgd at {text[position:position+24]!r}")
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group(kind)))
    return tokens


def _canon_name(text: str) -> str:
    """Primes normalize to apostrophes (``d′`` → ``d'``)."""
    return text.replace("′", "'")





def parse_tgd(
    text: str, *, source_root: str = "source", target_root: str = "target"
) -> NestedTgd:
    """Parse a nested tgd written in the paper's notation.

    ``source_root``/``target_root`` name the two schema roots so the
    parser can tell source expressions from target expressions (the
    paper relies on the reader for this).
    """
    parser = _TgdParser(_tokenize(text), source_root, target_root)
    return parser.parse()


class _TgdParser:
    def __init__(self, tokens: list[_Token], source_root: str, target_root: str):
        self.tokens = tokens
        self.position = 0
        self.source_root = source_root
        self.target_root = target_root

    # -- token helpers --------------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[_Token]:
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise MappingError("unexpected end of tgd")
        self.position += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self.peek()
        if token is None or token.kind != kind:
            return None
        if text is not None and token.text != text:
            return None
        self.position += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.accept(kind, text)
        if token is None:
            found = self.peek()
            raise MappingError(
                f"expected {text or kind} in tgd, found "
                f"{found.text if found else 'end of input'!r}"
            )
        return token

    # -- grammar -----------------------------------------------------------------

    def parse(self) -> NestedTgd:
        functions: list[str] = []
        wrapped = False
        if (
            self.peek() is not None
            and self.peek().kind == "exists"
            and self.peek(1) is not None
            and self.peek(1).kind == "name"
            and self._is_function_name(self.peek(1).text)
        ):
            self.next()  # ∃
            functions.append(self.next().text)
            while self.accept("punct", ","):
                functions.append(self.expect("name").text)
            self.expect("punct", "(")
            wrapped = True
        roots = [self.mapping()]
        while True:
            if self.accept("punct", ","):
                roots.append(self.mapping())
            elif self.peek() is not None and self.peek().kind == "forall":
                # Root mappings are rendered one after the other.
                roots.append(self.mapping())
            else:
                break
        if wrapped:
            self.expect("punct", ")")
        if self.peek() is not None:
            raise MappingError(f"trailing content at {self.peek().text!r}")
        roots = list(derive_distribution(tuple(roots)))
        return NestedTgd(
            tuple(roots),
            functions=tuple(functions),
            source_root=self.source_root,
            target_root=self.target_root,
        )

    @staticmethod
    def _is_function_name(name: str) -> bool:
        return name in AGGREGATE_FUNCTIONS or name == "group-by"

    def mapping(self) -> TgdMapping:
        self.expect("forall")
        source_gens: list[SourceGenerator] = []
        if not self.accept("top"):
            source_gens.append(self._source_generator())
            while self.accept("punct", ","):
                source_gens.append(self._source_generator())
        where: list = []
        if self.accept("punct", "|"):
            where.append(self._condition())
            while self.accept("punct", ","):
                where.append(self._condition())
        target_gens: list[TargetGenerator] = []
        skolem = None
        grouped_var: Optional[str] = None
        assignments: list[Assignment] = []
        submappings: list[TgdMapping] = []
        if self.accept("arrow"):
            if self.peek() is not None and self.peek().kind == "exists":
                self.next()
                target_gens.append(self._target_generator())
                while self._lookahead_generator():
                    self.expect("punct", ",")
                    target_gens.append(self._target_generator())
                if self.accept("punct", "|"):
                    skolem, grouped_var, assignments = self._rhs_terms()
            while True:
                if self.accept("punct", ","):
                    continue
                if self.accept("punct", "["):
                    submappings.append(self.mapping())
                    self.expect("punct", "]")
                    continue
                break
        # The last target generator is the built one; earlier entries are
        # the minimum-cardinality constant tags (compiler convention).
        finalized = tuple(
            TargetGenerator(g.var, g.expr, quantified=(index == len(target_gens) - 1))
            for index, g in enumerate(target_gens)
        )
        return TgdMapping(
            source_gens=tuple(source_gens),
            where=tuple(where),
            target_gens=finalized,
            assignments=tuple(assignments),
            submappings=tuple(submappings),
            skolem=skolem,
            grouped_var=grouped_var,
        )

    def _lookahead_generator(self) -> bool:
        """After a target generator: is the next comma followed by
        ``name ∈ …`` (another generator) rather than a term/submapping?"""
        if self.peek() is None or not (
            self.peek().kind == "punct" and self.peek().text == ","
        ):
            return False
        one, two = self.peek(1), self.peek(2)
        return (
            one is not None
            and one.kind == "name"
            and two is not None
            and two.kind == "elem"
        )

    def _source_generator(self) -> SourceGenerator:
        var = _canon_name(self.expect("name").text)
        self.expect("elem")
        expr = self._expression()
        return SourceGenerator(var, expr)

    def _target_generator(self) -> TargetGenerator:
        var = _canon_name(self.expect("name").text)
        self.expect("elem")
        expr = self._expression()
        return TargetGenerator(var, expr)

    def _rhs_terms(self):
        """Skolem binding and assignments after the target ``|``."""
        skolem = None
        grouped_var = None
        assignments: list[Assignment] = []
        while True:
            checkpoint = self.position
            token = self.peek()
            if token is None or token.kind != "name":
                break
            target_expr = self._expression()
            if self.accept("op", "=") is None:
                self.position = checkpoint
                break
            if (
                self.peek() is not None
                and self.peek().kind == "name"
                and self.peek().text == "group-by"
            ):
                app, member_var = self._group_by_app()
                root = target_expr
                while isinstance(root, Proj):
                    root = root.base
                skolem = (root.name if isinstance(root, Var) else str(root), app)
                grouped_var = member_var
            else:
                assignments.append(Assignment(target_expr, self._term()))
            if not self.accept("punct", ","):
                break
            if self.peek() is not None and self.peek().kind == "punct" and self.peek().text == "[":
                self.position -= 1  # hand the comma back to mapping()
                break
        return skolem, grouped_var, assignments

    def _group_by_app(self):
        self.expect("name", "group-by")
        self.expect("punct", "(")
        context: Optional[tuple[str, ...]] = None
        if self.accept("bottom") is None:
            names = [_canon_name(self.expect("name").text)]
            while self.peek() is not None and self.peek().kind == "name":
                names.append(_canon_name(self.next().text))
            context = tuple(names)
        self.expect("punct", ",")
        self.expect("punct", "[")
        attrs = [self._expression()]
        while self.accept("punct", ","):
            attrs.append(self._expression())
        self.expect("punct", "]")
        self.expect("punct", ")")
        grouped = None
        if attrs:
            root = attrs[0]
            while isinstance(root, Proj):
                root = root.base
            if isinstance(root, Var):
                grouped = root.name
        return GroupByApp(context, tuple(attrs)), grouped

    def _condition(self):
        left = self._expression()
        if self.accept("elem"):
            return Membership(left, self._expression())
        op = self.expect("op").text
        right = self._operand()
        return TgdComparison(left, op, right)

    def _operand(self):
        token = self.peek()
        if token is not None and token.kind == "string":
            self.next()
            return Constant(token.text[1:-1])
        if token is not None and token.kind == "number":
            self.next()
            literal = token.text
            return Constant(float(literal) if "." in literal else int(literal))
        if token is not None and token.kind == "name" and token.text in ("true", "false"):
            self.next()
            return Constant(token.text == "true")
        return self._expression()

    def _term(self):
        token = self.peek()
        if token is not None and token.kind == "name":
            name = token.text
            nxt = self.peek(1)
            if nxt is not None and nxt.kind == "punct" and nxt.text == "(":
                if name in AGGREGATE_FUNCTIONS:
                    self.next()
                    self.next()
                    arg = self._expression()
                    self.expect("punct", ")")
                    return AggregateApp(AGGREGATE_FUNCTIONS[name], arg)
            if nxt is not None and nxt.kind == "punct" and nxt.text == "[":
                if name in SCALAR_FUNCTIONS:
                    self.next()
                    self.next()
                    args = [self._expression()]
                    while self.accept("punct", ","):
                        args.append(self._expression())
                    self.expect("punct", "]")
                    return FunctionApp(SCALAR_FUNCTIONS[name], tuple(args))
        return self._operand()

    def _expression(self) -> TgdExpr:
        head = self.expect("name").text
        name = _canon_name(head)
        if name == self.source_root:
            expr: TgdExpr = SchemaRoot(self.source_root)
        elif name == self.target_root:
            expr = SchemaRoot(self.target_root)
        else:
            expr = Var(name)
        while (
            self.peek() is not None
            and self.peek().kind == "punct"
            and self.peek().text == "."
        ):
            self.next()
            label = self.expect("name").text
            expr = Proj(expr, label)
        return expr
